"""Legacy setup shim: enables `pip install -e .` in offline environments
(no `wheel` package, so PEP 660 editable builds are unavailable).

All project metadata lives in pyproject.toml; setuptools >= 61 reads it
from there.
"""

from setuptools import setup

setup()
