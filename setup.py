"""Legacy setup shim: enables `pip install -e .` in offline environments
(no `wheel` package, so PEP 660 editable builds are unavailable)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Answering queries using views over probabilistic XML "
        "(Cautis & Kharlamov, VLDB 2012) — full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
