"""repro — Answering Queries using Views over Probabilistic XML.

A complete, exact-arithmetic implementation of Cautis & Kharlamov,
"Answering Queries using Views over Probabilistic XML: Complexity and
Tractability", VLDB 2012 (PVLDB 5(11):1148-1159):

* p-documents ``PrXML{mux, ind}`` and their possible-world semantics;
* tree-pattern queries (TP) and intersections (TP∩) with containment,
  equivalence, minimization, interleavings and extended skeletons;
* probabilistic query evaluation (PTime in data complexity) through a
  single-pass engine with pluggable numeric backends — ``exact``
  Fractions (default) or ``fast`` floats (see
  :class:`repro.prob.EvaluationEngine`);
* workload sessions (:class:`repro.prob.QuerySession`): batches of
  queries evaluated in one shared traversal with cross-query subtree
  memoization, invalidated by p-document mutation epochs;
* persistent structural memo stores (:mod:`repro.store`): subtree
  evaluations cached content-addressed — by structural digest and
  goal-table fingerprint — with cost-aware LRU eviction in memory and a
  SQLite tier that survives process restarts;
* Id-free view extensions with a provenance side table (original ↔ copy
  Ids and canonical rank paths beside the tree, no marker nodes);
* probabilistic condition-independence (c-independence);
* ``TPrewrite`` — single-view probabilistic rewritings (restricted and
  unrestricted, Theorems 1-2);
* ``TPIrewrite`` — multi-view rewritings via c-independent products
  (Theorem 3), view decompositions and the exact ``S(q, V)`` linear system
  (Theorem 5).

Quickstart::

    from repro import View, probabilistic_extension
    from repro.workloads import paper
    from repro.rewrite import probabilistic_tp_plan

    p = paper.p_per()
    view = View("v2BON", paper.v2_bon())
    plan = probabilistic_tp_plan(paper.q_bon(), view)
    answer = plan.evaluate(probabilistic_extension(p, view))
"""

from .errors import (
    ReproError,
    DocumentError,
    PDocumentError,
    PatternError,
    PatternParseError,
    CompensationError,
    IntersectionError,
    UnsatisfiableIntersectionError,
    UnknownViewError,
    RewritingError,
    NoRewritingError,
    ProbabilityError,
    LinearSystemError,
)
from .probability import (
    as_probability,
    as_fraction,
    prob_str,
    NumericBackend,
    ExactBackend,
    FastBackend,
    BACKENDS,
    get_backend,
)
from .xml import Document, DocNode, doc, node
from .pxml import (
    PDocument,
    PNode,
    PNodeKind,
    pdoc,
    ordinary,
    mux,
    ind,
    det,
    enumerate_worlds,
    sample_world,
)
from .tp import (
    TreePattern,
    PatternNode,
    Axis,
    parse_pattern,
    evaluate,
    contains,
    equivalent,
    minimize,
)
from .tpi import (
    TPIntersection,
    interleavings,
    tpi_satisfiable,
    tpi_equivalent_tp,
    is_extended_skeleton,
)
from .store import (
    MemoStore,
    InMemoryStore,
    SqliteStore,
    open_store,
)
from .prob import (
    EvaluationEngine,
    QuerySession,
    query_answer,
    node_probability,
    boolean_probability,
    intersection_answer,
)
from .views import (
    ProvenanceTable,
    View,
    probabilistic_extension,
    deterministic_extension,
    anchor_via_marker,
)
from .rewrite import (
    c_independent,
    tp_rewrite,
    probabilistic_tp_plan,
    theorem3_plan,
    tpi_rewrite,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "DocumentError", "PDocumentError", "PatternError",
    "PatternParseError", "CompensationError", "IntersectionError",
    "UnsatisfiableIntersectionError", "UnknownViewError", "RewritingError",
    "NoRewritingError", "ProbabilityError", "LinearSystemError",
    "as_probability", "as_fraction", "prob_str",
    "NumericBackend", "ExactBackend", "FastBackend", "BACKENDS", "get_backend",
    "Document", "DocNode", "doc", "node",
    "PDocument", "PNode", "PNodeKind", "pdoc", "ordinary", "mux", "ind",
    "det", "enumerate_worlds", "sample_world",
    "TreePattern", "PatternNode", "Axis", "parse_pattern", "evaluate",
    "contains", "equivalent", "minimize",
    "TPIntersection", "interleavings", "tpi_satisfiable",
    "tpi_equivalent_tp", "is_extended_skeleton",
    "MemoStore", "InMemoryStore", "SqliteStore", "open_store",
    "EvaluationEngine", "QuerySession",
    "query_answer", "node_probability", "boolean_probability",
    "intersection_answer",
    "View", "ProvenanceTable", "probabilistic_extension",
    "deterministic_extension", "anchor_via_marker",
    "c_independent", "tp_rewrite", "probabilistic_tp_plan",
    "theorem3_plan", "tpi_rewrite",
    "__version__",
]
