"""Probabilistic query evaluation over p-documents.

``engine`` is the production path: a single-pass goal-set dynamic program
that is polynomial in the size of the p-document (data complexity) for
fixed queries — matching the tractability statement of [22] that the paper
builds on — supports both TP and TP∩ queries plus node anchors, computes
*all* candidate answers in one traversal, and is parameterized by a
numeric backend (``exact`` Fractions or ``fast`` floats).  ``evaluator``
keeps the historical ``ProbEvaluator`` surface as a shim over the engine.
``session`` is the workload layer on top of the engine: a
:class:`QuerySession` evaluates *batches* of queries in one shared
post-order pass with a cross-query memo of per-subtree distributions,
invalidated by the p-document's mutation epoch.  ``bruteforce``
enumerates the px-space and is the reference semantics used by tests;
``approximate`` is the sampling estimator.
"""

from .engine import (
    EvaluationEngine,
    normalize_anchors,
    query_answer,
    boolean_probability,
    node_probability,
    conditional_node_probability,
    intersection_answer,
    intersection_node_probability,
)
from .evaluator import ProbEvaluator
from .session import QuerySession, SessionStats
from .bruteforce import (
    brute_force_query_answer,
    brute_force_node_probability,
    brute_force_boolean_probability,
)

__all__ = [
    "EvaluationEngine",
    "normalize_anchors",
    "ProbEvaluator",
    "QuerySession",
    "SessionStats",
    "query_answer",
    "boolean_probability",
    "node_probability",
    "conditional_node_probability",
    "intersection_answer",
    "intersection_node_probability",
    "brute_force_query_answer",
    "brute_force_node_probability",
    "brute_force_boolean_probability",
]
