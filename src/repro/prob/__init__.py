"""Exact probabilistic query evaluation over p-documents.

``evaluator`` is the production path: a dynamic program that is polynomial in
the size of the p-document (data complexity) for fixed queries — matching the
tractability statement of [22] that the paper builds on — and supports both
TP and TP∩ queries, plus node anchors.  ``bruteforce`` enumerates the
px-space and is the reference semantics used by tests.
"""

from .evaluator import (
    ProbEvaluator,
    query_answer,
    boolean_probability,
    node_probability,
    conditional_node_probability,
    intersection_answer,
    intersection_node_probability,
)
from .bruteforce import (
    brute_force_query_answer,
    brute_force_node_probability,
    brute_force_boolean_probability,
)

__all__ = [
    "ProbEvaluator",
    "query_answer",
    "boolean_probability",
    "node_probability",
    "conditional_node_probability",
    "intersection_answer",
    "intersection_node_probability",
    "brute_force_query_answer",
    "brute_force_node_probability",
    "brute_force_boolean_probability",
]
