"""Monte-Carlo approximation of query probabilities.

The paper's §6 points to approximate processors for probabilistic XML
([22]'s additive approximation, ProApproX [33]).  This module provides the
standard sampling estimator with Hoeffding-style additive guarantees: with
``samples ≥ ln(2/δ) / (2 ε²)`` draws, each estimate is within ``ε`` of
``Pr(n ∈ q(P))`` with probability at least ``1 − δ``.

Useful when exact evaluation is too expensive (the DP is exponential in
query size in the worst case) and in tests as an independent oracle.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from ..pxml.pdocument import PDocument
from ..pxml.worlds import sample_world
from ..tp.embedding import evaluate as evaluate_deterministic, has_embedding
from ..tp.pattern import TreePattern
from .engine import AnchorsLike, normalize_anchors

__all__ = [
    "samples_for_guarantee",
    "approximate_node_probability",
    "approximate_query_answer",
]


def samples_for_guarantee(epsilon: float, delta: float) -> int:
    """Hoeffding sample size for additive error ``ε`` at confidence ``1−δ``."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie strictly between 0 and 1")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def approximate_node_probability(
    p: PDocument,
    q: TreePattern,
    node_id: int,
    samples: int = 1000,
    rng: Optional[random.Random] = None,
    anchors: Optional[AnchorsLike] = None,
) -> float:
    """Estimate ``Pr(n ∈ q(P))`` by sampling possible worlds.

    ``anchors`` optionally pins further pattern nodes (engine key forms,
    see :data:`repro.prob.engine.AnchorsLike`) on top of ``out(q) ↦ n``.
    """
    rng = rng or random.Random()
    # Merge the output pin as a PatternNode key (the stable anchor form;
    # a later entry wins, so an explicit out(q) anchor is overridden) and
    # normalize everything in one step.
    anchors = normalize_anchors([q], {**dict(anchors or {}), q.out: node_id})
    hits = 0
    for _ in range(samples):
        world = sample_world(p, rng)
        if has_embedding(q, world, anchors):
            hits += 1
    return hits / samples


def approximate_query_answer(
    p: PDocument,
    q: TreePattern,
    samples: int = 1000,
    rng: Optional[random.Random] = None,
    queries: Optional[Sequence[TreePattern]] = None,
) -> dict[int, float]:
    """Estimate ``q(P̂)`` (or an intersection) with one world per sample.

    Sharing worlds across candidate nodes keeps the cost at one evaluation
    per sample rather than one per (sample, node) pair.
    """
    rng = rng or random.Random()
    patterns = list(queries) if queries is not None else [q]
    counts: dict[int, int] = {}
    for _ in range(samples):
        world = sample_world(p, rng)
        selected: Optional[set[int]] = None
        for pattern in patterns:
            result = evaluate_deterministic(pattern, world)
            selected = result if selected is None else selected & result
        for node_id in selected or ():
            counts[node_id] = counts.get(node_id, 0) + 1
    return {node_id: hits / samples for node_id, hits in counts.items()}
