"""Stacked session passes: a whole query batch as one numpy array axis.

The classic shared pass (:func:`repro.prob.traversal.stored_postorder`)
walks the p-document once per batch but still runs one combine, one
store token and one probe *per lane* (query) at every node.  With the
``array`` backend the lane dimension can instead become a **batch
axis**: every subtree's blocked/unpinned distributions for all ``L``
lanes are one :class:`~repro.probability_array.StackedDistribution` —
aligned ``(L × W)`` mask/value matrices — and a single vectorized
kernel advances the entire batch through a node:

* *convolution* is a per-row outer product followed by one row-wise
  dedup (masks are offset by ``row_index << B`` so a single
  ``np.unique``/``bincount`` pass compacts all rows at once);
* *fan-in* over many children runs as a log-depth pairwise reduction —
  a node with 64 children costs 6 stacked convolutions, not 63 × L
  scalar ones;
* the *ordinary-node rewrite* pads each lane's goal-table entries into
  ``(L × E)`` need/bit matrices and applies them with E masked bit-or
  sweeps (anchored entries, which depend on the concrete node, take a
  rare per-lane path);
* ``mux``/``ind`` mixtures are scaled column concatenations (document
  edge probabilities are lane-independent).

**Split nodes.**  For ``answer_many`` the ancestors of candidate nodes
(the union of all lanes' live sets) still need per-lane ``(blocked,
pinned)`` pairs; at these nodes the pass *splits* into the engine's
per-lane :meth:`~repro.prob.engine.EvaluationEngine.combine_pinned`,
viewing each stacked child through memoized per-lane dict rows
(:meth:`StackedDistribution.row_dict` caches on the instance, so the
conversions at the batch frontier amortize across warm passes — the
store serves the *same object* every pass).

**Combined store keys.**  A stacked subtree is memoized under ONE key
instead of L: ``(structural digest, digest of the per-lane (fingerprint,
anchors, gate) parts, None, None, backend)``.  The per-lane gate is
folded *inside* the parts (collapsing to ``None`` for gate-insensitive
lanes), so a blocked pinned-pass entry and an unpinned Boolean-pass
entry share whenever every lane is insensitive.  Warm passes resolve
the whole key with one dict lookup per node (:class:`StackedKeyer`
caches per node id, and the session caches the keyer per batch
signature).  Against a bulk-preferring store (a live
:class:`~repro.store.SqliteStore`, or ``QuerySession(bulk_store=True)``)
the pass prefetches every combined key with one uncounted ``get_many``
and lands its saves as one ``put_many`` — the probe-plan protocol of
:mod:`repro.prob.traversal`, with identical hit/miss/put accounting.

**Exact fallback.**  When a stacked width exceeds the backend's
``width_threshold`` — or a row-offset would not fit int64 — the node
drops to per-lane scalar form (``Fraction`` dicts via the same exact
fallback as :mod:`repro.probability_array`), and ancestors follow
suit: any scalar-form child makes the parent combine per-lane through
the engine's ops dispatch, which keeps vectorized and fallen-back
regions composable.

Per-lane stats are necessarily approximate here (one combined probe
covers L lanes); hits/misses/skips are counted ``× L`` so cumulative
session counters stay comparable with the classic pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..obs.trace import span as trace_span
from ..probability_array import (
    ArrayDistribution,
    ArrayOps,
    StackedDistribution,
)
from ..pxml.pdocument import PNodeKind
from ..store import (
    GATE_BLOCKED,
    GATE_UNPINNED,
    SubtreeKeyer,
    fingerprint_digest,
)
from .engine import _GRANT_ALL, _GRANT_NONE, EvaluationEngine
from .traversal import _ProbePlan

__all__ = ["StackedKeyer", "stacked_answer_many", "stacked_boolean_many"]

#: Entry tag for an all-lanes-neutral subtree (the stacked unit).
_UNIT_ENTRY = ("u",)
#: Shared empty pinned map (never mutated by the engine's combines).
_EMPTY: dict = {}
#: Unsatisfiable ``need`` padding for the stacked rewrite (masks use at
#: most 48 goal bits, see probability_array._MAX_VECTOR_GOAL_BITS).
_SENTINEL_NEED = 1 << 61

_UNCACHED = object()


class _ScalarFallback(Exception):
    """A stacked kernel overflowed its row-offset budget; the node (and
    its ancestors) continue in per-lane scalar form."""


def _rows_to_exact(masks, values) -> list:
    """Padded row matrices -> per-lane exact ``{mask: Fraction}`` dicts."""
    out = []
    for row_masks, row_values in zip(masks.tolist(), values.tolist()):
        out.append(
            {
                int(mask): Fraction(value)
                for mask, value in zip(row_masks, row_values)
                if value
            }
        )
    return out


class StackedOps:
    """Row-batched distribution kernels shared by one stacked pass.

    All kernels operate on aligned ``(R × W)`` mask/value matrices,
    right-padded with ``(0, 0.0)`` entries; padding is self-cleaning —
    it contributes zero mass and every compaction drops it.
    """

    __slots__ = (
        "np", "lanes", "bits", "low_mask", "max_rows",
        "unit_masks", "unit_values", "_zero_col",
    )

    def __init__(self, np, lanes: int, bits: int) -> None:
        self.np = np
        self.lanes = lanes
        self.bits = bits
        self.low_mask = (1 << bits) - 1
        # Row offsets borrow the bits above the goal space; int64 keeps
        # 62 safely usable.
        self.max_rows = 1 << max(1, 62 - bits)
        self.unit_masks = np.zeros((lanes, 1), dtype=np.int64)
        self.unit_values = np.ones((lanes, 1), dtype=np.float64)
        self._zero_col = np.zeros((lanes, 1), dtype=np.int64)

    def compact_rows(self, masks, values):
        """Merge equal masks per row, drop zero mass, re-pad minimally."""
        np = self.np
        rows, width = masks.shape
        if rows > self.max_rows:
            raise _ScalarFallback
        if width == 1:
            return masks, values
        offsets = (np.arange(rows, dtype=np.int64) << self.bits)[:, None]
        flat = (masks | offsets).ravel()
        uniq, inverse = np.unique(flat, return_inverse=True)
        sums = np.bincount(inverse, weights=values.ravel())
        keep = sums != 0.0
        uniq = uniq[keep]
        sums = sums[keep]
        row_ids = (uniq >> self.bits).astype(np.intp)
        kept_masks = uniq & self.low_mask
        counts = np.bincount(row_ids, minlength=rows)
        new_width = max(int(counts.max()) if counts.size else 0, 1)
        starts = np.zeros(rows, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        cols = np.arange(uniq.shape[0], dtype=np.intp) - starts[row_ids]
        out_masks = np.zeros((rows, new_width), dtype=np.int64)
        out_values = np.zeros((rows, new_width), dtype=np.float64)
        out_masks[row_ids, cols] = kept_masks
        out_values[row_ids, cols] = sums
        return out_masks, out_values

    def convolve_rows(self, m1, v1, m2, v2):
        """Row-aligned convolution: per-row outer ``|``/product + compact."""
        rows = m1.shape[0]
        masks = (m1[:, :, None] | m2[:, None, :]).reshape(rows, -1)
        values = (v1[:, :, None] * v2[:, None, :]).reshape(rows, -1)
        return self.compact_rows(masks, values)

    def reduce_convolve(self, parts: list):
        """Log-depth pairwise convolution of ``(L × Wi)`` parts.

        Each round stacks all pairs into one ``(pairs·L × W)`` matrix and
        performs a single batched convolution — a node with ``C``
        children costs ``ceil(log2 C)`` kernel invocations total.
        """
        np = self.np
        lanes = self.lanes
        if not parts:
            return self.unit_masks, self.unit_values
        while len(parts) > 1:
            pair_count = len(parts) // 2
            lefts = parts[0 : 2 * pair_count : 2]
            rights = parts[1 : 2 * pair_count : 2]
            width_l = max(m.shape[1] for m, _ in lefts)
            width_r = max(m.shape[1] for m, _ in rights)
            rows = pair_count * lanes
            if rows > self.max_rows:
                raise _ScalarFallback
            lm = np.zeros((pair_count, lanes, width_l), dtype=np.int64)
            lv = np.zeros((pair_count, lanes, width_l), dtype=np.float64)
            rm = np.zeros((pair_count, lanes, width_r), dtype=np.int64)
            rv = np.zeros((pair_count, lanes, width_r), dtype=np.float64)
            for k, (m, v) in enumerate(lefts):
                lm[k, :, : m.shape[1]] = m
                lv[k, :, : m.shape[1]] = v
            for k, (m, v) in enumerate(rights):
                rm[k, :, : m.shape[1]] = m
                rv[k, :, : m.shape[1]] = v
            cm, cv = self.convolve_rows(
                lm.reshape(rows, width_l),
                lv.reshape(rows, width_l),
                rm.reshape(rows, width_r),
                rv.reshape(rows, width_r),
            )
            merged = [
                (cm[k * lanes : (k + 1) * lanes], cv[k * lanes : (k + 1) * lanes])
                for k in range(pair_count)
            ]
            if len(parts) & 1:
                merged.append(parts[-1])
            parts = merged
        return parts[0]

    def mux(self, parts: list, probabilities: list):
        """Stacked mux mixture: scaled column concat + deficit column."""
        np = self.np
        mask_cols = []
        value_cols = []
        chosen = 0.0
        for (masks, values), probability in zip(parts, probabilities):
            if not probability:
                continue
            chosen += probability
            mask_cols.append(masks)
            value_cols.append(values * probability)
        deficit = 1.0 - chosen
        if deficit or not mask_cols:
            mask_cols.append(self._zero_col)
            value_cols.append(
                np.full((self.lanes, 1), deficit, dtype=np.float64)
            )
        return self.compact_rows(
            np.concatenate(mask_cols, axis=1),
            np.concatenate(value_cols, axis=1),
        )

    def mixture_part(self, masks, values, probability: float):
        """``(1-p)·unit + p·d`` as columns (compacted by the consumer)."""
        if probability == 1.0:
            return masks, values
        np = self.np
        return (
            np.concatenate((self._zero_col, masks), axis=1),
            np.concatenate(
                (
                    np.full((self.lanes, 1), 1.0 - probability),
                    values * probability,
                ),
                axis=1,
            ),
        )

    def mass_rows(self, masks, values, targets):
        """Per-lane target mass: one boolean reduction over the batch."""
        covered = (masks & targets[:, None]) == targets[:, None]
        return (values * covered).sum(axis=1)


class StackedKeyer:
    """Combined content-addressed store keys for a stacked pass.

    Wraps one :class:`~repro.store.SubtreeKeyer` per lane and merges
    their per-subtree tokens into a single 5-part key whose fingerprint
    digests the ordered per-lane ``(fingerprint, anchors, effective
    gate)`` parts (``None`` for lanes neutral below the subtree).  Keys
    are cached per node id, so a warm pass resolves each node with one
    dict lookup; the session caches whole keyers per batch signature,
    making the cache effective across passes within a document epoch.
    """

    __slots__ = ("digests", "sizes", "keyers", "labels", "gate", "_cache")

    def __init__(self, p, keyers: list, gate: str) -> None:
        self.digests, self.sizes = p.structural_index()
        self.keyers = keyers
        self.labels = [keyer.table_labels for keyer in keyers]
        self.gate = gate
        # node_id -> (key | None, anchored)
        self._cache: dict[int, tuple] = {}

    def key(self, node_id: int, label_set) -> tuple:
        """``(combined key | None, is_anchored)`` for the subtree."""
        entry = self._cache.get(node_id, _UNCACHED)
        if entry is not _UNCACHED:
            return entry
        parts = []
        anchored = False
        backend_name = None
        for keyer, labels in zip(self.keyers, self.labels):
            if not (labels & label_set):
                parts.append(None)
                continue
            token, is_local, is_anchored = keyer.token(
                node_id, label_set, self.gate
            )
            if is_local:
                # Node-keyed baseline tokens have no canonical form; the
                # whole combined entry becomes uncacheable.
                entry = (None, True)
                self._cache[node_id] = entry
                return entry
            parts.append((token[1], token[2], token[3]))
            backend_name = token[4]
            anchored |= is_anchored
        if backend_name is None:
            # All lanes neutral: no key needed (callers shortcut first).
            entry = (None, False)
        else:
            entry = (
                (
                    self.digests[node_id],
                    fingerprint_digest(("stacked", tuple(parts))),
                    None,
                    None,
                    backend_name,
                ),
                anchored,
            )
        self._cache[node_id] = entry
        return entry

    def weight(self, node_id: int, distribution) -> int:
        """Recomputation-cost estimate (matches SubtreeKeyer.weight)."""
        return len(distribution) * self.sizes[node_id]


class _StackedLane:
    """One query's slice of a stacked pass."""

    __slots__ = ("engine", "keyer", "table_labels", "live", "candidates")

    def __init__(
        self,
        engine: EvaluationEngine,
        keyer: Optional[SubtreeKeyer],
        live=frozenset(),
        candidates=frozenset(),
    ) -> None:
        self.engine = engine
        self.keyer = keyer
        self.table_labels = engine.table_labels
        self.live = live
        self.candidates = candidates


class _StackedPass:
    """One stacked post-order traversal (see the module docstring).

    Per-node entries take one of four forms:

    * ``("u",)`` — all lanes neutral below: the stacked unit.
    * ``("s", StackedDistribution)`` — the vectorized stacked form.
    * ``("d", [dict, ...])`` — per-lane scalar fallback (exact dicts
      after a width-threshold escape, float dicts after a row-budget
      one); ancestors combine per-lane through the engines' ops.
    * ``("p", [(blocked, pinned), ...])`` — per-lane split form at
      live-spine nodes of an answer pass.
    """

    __slots__ = (
        "p", "lanes", "ops", "store", "stats", "backend", "grant",
        "union_live", "all_labels", "keyer", "width_threshold",
        "unit_dict", "bulk", "_rewrite_plans", "_a_mask_col",
    )

    def __init__(
        self,
        session,
        lanes: list,
        gate: str,
        keyer: Optional[StackedKeyer],
        union_live=frozenset(),
    ) -> None:
        backend = session.backend
        np = backend.np
        self.p = session.p
        self.lanes = lanes
        self.store = session.store
        self.stats = session.stats
        self.backend = backend
        self.grant = _GRANT_NONE if gate == GATE_BLOCKED else _GRANT_ALL
        self.union_live = union_live
        self.keyer = keyer
        self.bulk = getattr(session, "bulk_store", None)
        self.width_threshold = backend.width_threshold
        self.unit_dict = {0: 1.0}
        all_labels: frozenset = frozenset()
        bits = 1
        for lane in lanes:
            all_labels |= lane.table_labels
            bits = max(bits, 2 * len(lane.engine._pattern_nodes))
        self.all_labels = all_labels
        self.ops = StackedOps(np, len(lanes), bits)
        self._rewrite_plans: dict = {}
        self._a_mask_col = np.array(
            [[lane.engine._a_mask] for lane in lanes], dtype=np.int64
        )

    # -- traversal ------------------------------------------------------
    def run(self):
        p = self.p
        labels = p.label_index()
        lane_count = len(self.lanes)
        union_live = self.union_live
        all_labels = self.all_labels
        store = self.store
        keyer = self.keyer
        use_memo = store is not None and keyer is not None
        plan = (
            self._build_plan(labels)
            if use_memo
            and (
                self.bulk
                if self.bulk is not None
                else getattr(store, "prefers_bulk", False)
            )
            else None
        )
        stats = self.stats
        entries: dict = {}
        stack = [(p.root, False)]
        while stack:
            node, expanded = stack.pop()
            node_id = node.node_id
            if not expanded:
                label_set = labels[node_id]
                if node_id not in union_live:
                    if not (all_labels & label_set):
                        entries[node_id] = _UNIT_ENTRY
                        stats.neutral_skips += lane_count
                        stats.subtree_skips += 1
                        continue
                    if use_memo:
                        key, anchored = keyer.key(node_id, label_set)
                        if key is not None:
                            cached = (
                                plan.probe(key)
                                if plan is not None
                                else store.get(key)
                            )
                            if (
                                cached is not None
                                and getattr(cached, "lanes", -1) == lane_count
                            ):
                                entries[node_id] = ("s", cached)
                                stats.memo_hits += lane_count
                                stats.subtree_skips += 1
                                if anchored:
                                    stats.anchored_hits += lane_count
                                continue
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            stats.node_visits += 1
            label_set = labels[node_id]
            if node_id in union_live:
                entries[node_id] = self._split_combine(node, entries, label_set)
            else:
                entry = self._stacked_combine(node, entries, label_set)
                entries[node_id] = entry
                anchored = False
                if use_memo:
                    key, anchored = keyer.key(node_id, label_set)
                    if key is not None and entry[0] == "s":
                        stacked = entry[1]
                        if plan is not None:
                            plan.save(
                                key, stacked, keyer.weight(node_id, stacked)
                            )
                        elif not store.contains(key):
                            store.put(
                                key, stacked, keyer.weight(node_id, stacked)
                            )
                stats.memo_misses += lane_count
                if anchored:
                    stats.anchored_misses += lane_count
            for child in node.children:
                entries.pop(child.node_id, None)
        if plan is not None:
            plan.flush()  # the pass's saves land as one put_many
        return entries.pop(p.root.node_id)

    def _build_plan(self, labels: dict) -> _ProbePlan:
        """Enumerate every combined key the pass may probe and answer
        them with one uncounted ``get_many`` (live-spine nodes never
        probe or save here, so no ``contains_many`` guard set)."""
        keyer = self.keyer
        union_live = self.union_live
        all_labels = self.all_labels
        keys = set()
        for node_id, label_set in labels.items():
            if node_id in union_live or not (all_labels & label_set):
                continue
            key, _ = keyer.key(node_id, label_set)
            if key is not None:
                keys.add(key)
        with trace_span("store.bulk_prefetch", probe_keys=len(keys)):
            snapshot = self.store.get_many(keys, record=False) if keys else {}
        return _ProbePlan(self.store, snapshot, set())

    # -- per-lane views of child entries --------------------------------
    def _pinned_view(self, entry, lane_index: int):
        tag = entry[0]
        if tag == "u":
            return (self.unit_dict, _EMPTY)
        if tag == "s":
            return (entry[1].row_dict(lane_index), _EMPTY)
        if tag == "d":
            return (entry[1][lane_index], _EMPTY)
        return entry[1][lane_index]

    def _blocked_view(self, entry, lane_index: int):
        tag = entry[0]
        if tag == "u":
            return self.unit_dict
        if tag == "s":
            return entry[1].row_dict(lane_index)
        if tag == "d":
            return entry[1][lane_index]
        return entry[1][lane_index][0]

    # -- combines -------------------------------------------------------
    def _split_combine(self, node, entries, label_set):
        children = node.children
        views = [entries[child.node_id] for child in children]
        results = []
        for i, lane in enumerate(self.lanes):
            if node.node_id in lane.live:
                child_map = {
                    child.node_id: self._pinned_view(view, i)
                    for child, view in zip(children, views)
                }
                results.append(
                    lane.engine.combine_pinned(node, child_map, lane.candidates)
                )
            elif not (lane.table_labels & label_set):
                results.append((self.unit_dict, _EMPTY))
            else:
                child_map = {
                    child.node_id: self._blocked_view(view, i)
                    for child, view in zip(children, views)
                }
                results.append(
                    (
                        lane.engine._combine_single_gated(
                            node, child_map, self.grant
                        ),
                        _EMPTY,
                    )
                )
        return ("p", results)

    def _scalar_rows(self, node, forms) -> list:
        """Per-lane scalar combine (fallback regions)."""
        children = node.children
        rows = []
        for i, lane in enumerate(self.lanes):
            child_map = {
                child.node_id: self._blocked_view(form, i)
                for child, form in zip(children, forms)
            }
            rows.append(
                lane.engine._combine_single_gated(node, child_map, self.grant)
            )
        return rows

    def _stacked_combine(self, node, entries, label_set):
        children = node.children
        forms = [entries[child.node_id] for child in children]
        if any(form[0] == "d" for form in forms):
            return ("d", self._scalar_rows(node, forms))
        ops = self.ops
        parts = []
        for form in forms:
            if form[0] == "u":
                parts.append((ops.unit_masks, ops.unit_values))
            else:
                stacked = form[1]
                parts.append((stacked.masks, stacked.values))
        try:
            kind = node.kind
            if kind is PNodeKind.ORDINARY:
                masks, values = ops.reduce_convolve(parts)
                masks, values = self._rewrite_rows(node, masks, values)
            elif kind is PNodeKind.MUX:
                probabilities = [
                    float(self.backend.convert(node.probabilities[c.node_id]))
                    for c in children
                ]
                masks, values = ops.mux(parts, probabilities)
            else:  # IND
                mixed = [
                    ops.mixture_part(
                        part_masks,
                        part_values,
                        float(self.backend.convert(node.probabilities[c.node_id])),
                    )
                    for (part_masks, part_values), c in zip(parts, children)
                ]
                if len(mixed) == 1:
                    # A lone mixture reaches no convolution, so its
                    # duplicate-mask columns must be merged here.
                    masks, values = ops.compact_rows(*mixed[0])
                else:
                    masks, values = ops.reduce_convolve(mixed)
        except _ScalarFallback:
            return ("d", self._scalar_rows(node, forms))
        if masks.shape[1] > self.width_threshold:
            self.backend.fallbacks += 1
            return ("d", _rows_to_exact(masks, values))
        return ("s", StackedDistribution(masks, values))

    # -- the stacked ordinary-node rewrite ------------------------------
    def _rewrite_plan(self, label: str):
        plan = self._rewrite_plans.get(label)
        if plan is None:
            np = self.ops.np
            lanes = self.lanes
            grant_out = self.grant is _GRANT_ALL
            static: list[list] = []
            anchored: list[list] = []
            max_entries = 0
            any_anchored = False
            for lane in lanes:
                lane_static: list = []
                lane_anchored: list = []
                for d_bit, a_bit, need, anchor, is_out in (
                    lane.engine._by_label.get(label) or ()
                ):
                    if is_out and not grant_out:
                        continue
                    if anchor is not None:
                        lane_anchored.append((d_bit | a_bit, need, anchor))
                        any_anchored = True
                        continue
                    lane_static.append((need, d_bit | a_bit))
                static.append(lane_static)
                anchored.append(lane_anchored)
                max_entries = max(max_entries, len(lane_static))
            needs = np.full(
                (len(lanes), max_entries), _SENTINEL_NEED, dtype=np.int64
            )
            bits = np.zeros((len(lanes), max_entries), dtype=np.int64)
            for i, lane_static in enumerate(static):
                for e, (need, bit) in enumerate(lane_static):
                    needs[i, e] = need
                    bits[i, e] = bit
            plan = (needs, bits, anchored if any_anchored else None)
            self._rewrite_plans[label] = plan
        return plan

    def _rewrite_rows(self, node, masks, values):
        needs, bits, anchored = self._rewrite_plan(node.label)
        np = self.ops.np
        emitted = masks & self._a_mask_col
        for e in range(needs.shape[1]):
            need_col = needs[:, e : e + 1]
            bit_col = bits[:, e : e + 1]
            selected = (masks & need_col) == need_col
            emitted = emitted | np.where(selected, bit_col, 0)
        if anchored is not None:
            node_id = node.node_id
            grant_out = self.grant is _GRANT_ALL
            for i, lane_entries in enumerate(anchored):
                for bit, need, anchor in lane_entries:
                    if node_id not in anchor:
                        continue
                    row = masks[i]
                    selected = (row & need) == need
                    out_row = emitted[i]
                    out_row[selected] = out_row[selected] | bit
        return self.ops.compact_rows(emitted, values)


# ----------------------------------------------------------------------
# Session entry points
# ----------------------------------------------------------------------
def _vector_engines(engines: Sequence[EvaluationEngine]) -> bool:
    """Every lane must run the vectorized ops (goal space fits int64)."""
    return all(isinstance(engine._ops, ArrayOps) for engine in engines)


def _mask_bits(engines: Sequence[EvaluationEngine]) -> int:
    return max(2 * len(engine._pattern_nodes) for engine in engines)


def _supported(session, engines: Sequence[EvaluationEngine]) -> bool:
    if len(engines) < 2:
        return False
    if session.store is not None and not session.anchored_store:
        # Node-keyed baseline: per-lane local tokens have no canonical
        # combined form — keep the classic pass.
        return False
    if not _vector_engines(engines):
        return False
    # Row offsets (lane index, pair index) must share int64 with the
    # goal masks; leave 12 bits of headroom for reduction rows.
    return _mask_bits(engines) + (len(engines)).bit_length() + 12 <= 62


def stacked_answer_many(session, queries: list) -> Optional[list]:
    """Vectorized ``answer_many``; ``None`` when the batch must take the
    classic per-lane pass.  Caches the batch plan (engines, candidate
    and live sets, combined keyer) on the session per document epoch.

    The plan also memoizes its *answers*: within a document epoch a
    cached plan's candidate spine — the one region the content-addressed
    store can never serve, because pinned maps name document node ids —
    always recombines to the same per-candidate masses, so a repeated
    batch is a pure plan hit.  This is the session-local, identity-keyed
    completion of the store's structural memoization; ``invalidate()``
    and epoch changes drop it with the rest of ``session._stacked``.
    """
    cache = session._stacked
    key = ("answer", tuple(map(id, queries)))
    plan = cache.get(key)
    if plan is None:
        with trace_span("stacked.plan_build", queries=len(queries)):
            plan = _build_answer_plan(session, queries, cache, key)
    if plan[1] is None:
        return None
    lanes, keyer, union_live, targets, memo = plan[1]
    if memo:
        # Warm plan: the spine result is epoch-invariant — serve fresh
        # copies without a traversal.
        stats = session.stats
        stats.memo_hits += len(lanes)
        stats.subtree_skips += 1
        if sp := trace_span("stacked.replay", queries=len(queries)):
            with sp:
                sp.set("answers", sum(len(a) for a in memo[0]))
        return [dict(answer) for answer in memo[0]]
    if not union_live:
        # No candidates anywhere: every answer is empty, no pass needed.
        return [{} for _ in queries]
    sp = trace_span("stacked.pass", lanes=len(lanes), gate="blocked")
    if sp:
        fallbacks_before = getattr(session.backend, "fallbacks", 0)
    with sp:
        root = _StackedPass(
            session, lanes, GATE_BLOCKED, keyer, union_live
        ).run()
    if sp:
        sp.set(
            "fallbacks",
            getattr(session.backend, "fallbacks", 0) - fallbacks_before,
        )
    session.stats.traversals += 1
    zero = session.backend.zero
    # Root is a split entry ("p", per-lane (blocked, pinned)).
    answers: list[dict] = []
    for i, (lane, target) in enumerate(zip(lanes, targets)):
        _, pinned = root[1][i]
        engine = lane.engine
        answer: dict = {}
        for node_id in sorted(lane.candidates):
            distribution = pinned.get(node_id)
            if distribution is None:
                continue
            probability = engine.mass(distribution, target)
            if probability > zero:
                answer[node_id] = probability
        answers.append(answer)
    memo.append(answers)
    return [dict(answer) for answer in answers]


def _build_answer_plan(session, queries: list, cache: dict, key: tuple):
    """Build (and cache) the stacked batch plan entry for ``queries``.

    Returns the cache entry ``(strong query refs, plan-or-None)``; a
    ``None`` plan records that this batch must take the classic pass.
    """
    engines = [
        EvaluationEngine(session.p, [q], backend=session.backend)
        for q in queries
    ]
    if not _supported(session, engines):
        entry = cache[key] = (tuple(queries), None)
        return entry
    # The candidate spine combines per-lane on dict views; plain
    # float kernels beat the vector ops' domain dispatch on those
    # tiny dicts.  Rebind after the _supported probe (which checks
    # for the vector ops) — the stacked region never consults the
    # engines' kernels.
    scalar = session.backend.scalar_ops()
    for engine in engines:
        engine._ops = scalar
        engine._unit = scalar.unit
        engine._convolve = scalar.convolve
        engine._mixture = scalar.mixture
    candidate_sets = session._candidate_sets(engines, queries)
    live_sets = [session.p.ancestral_closure(cs) for cs in candidate_sets]
    union_live = frozenset().union(*live_sets) if live_sets else frozenset()
    use_memo = session.store is not None
    lanes = [
        _StackedLane(
            engine,
            session._keyer(engine) if use_memo else None,
            live=live,
            candidates=candidates,
        )
        for engine, candidates, live in zip(
            engines, candidate_sets, live_sets
        )
    ]
    keyer = (
        StackedKeyer(
            session.p, [lane.keyer for lane in lanes], GATE_BLOCKED
        )
        if use_memo
        else None
    )
    targets = [
        engine.pattern_target(q) for engine, q in zip(engines, queries)
    ]
    if len(cache) > 4096:
        cache.clear()
    entry = cache[key] = (
        tuple(queries), (lanes, keyer, union_live, targets, []),
    )
    return entry


def stacked_boolean_key(normalized: list) -> Optional[tuple]:
    """Identity-based memo key for a Boolean batch, ``None`` when the
    anchors cannot be frozen.

    Patterns key by identity (like the ``answer_many`` plan cache) and
    anchors by ``(id(pattern node), document node id)`` pairs — anchor
    *values* are plain ints, so content-equal bindings built fresh per
    call still match.  The caller stores the normalized batch alongside
    the masses, keeping every id in the key alive for as long as the
    entry exists.
    """
    try:
        return (
            "bool",
            tuple(
                (
                    tuple(map(id, patterns)),
                    None
                    if anchors is None
                    else tuple(
                        sorted(
                            (id(node), int(target))
                            for node, target in anchors.items()
                        )
                    ),
                )
                for patterns, anchors in normalized
            ),
        )
    except (TypeError, AttributeError, ValueError):
        return None


def stacked_boolean_many(
    session, engines: list, normalized: list
) -> Optional[list]:
    """Vectorized ``boolean_many`` over already-built engines; ``None``
    when the batch must take the classic per-lane pass."""
    if not _supported(session, engines):
        return None
    use_memo = session.store is not None
    lanes = [
        _StackedLane(engine, session._keyer(engine) if use_memo else None)
        for engine in engines
    ]
    keyer = (
        StackedKeyer(session.p, [lane.keyer for lane in lanes], GATE_UNPINNED)
        if use_memo
        else None
    )
    sp = trace_span("stacked.pass", lanes=len(lanes), gate="unpinned")
    if sp:
        fallbacks_before = getattr(session.backend, "fallbacks", 0)
    with sp:
        root = _StackedPass(session, lanes, GATE_UNPINNED, keyer).run()
    if sp:
        sp.set(
            "fallbacks",
            getattr(session.backend, "fallbacks", 0) - fallbacks_before,
        )
    session.stats.traversals += 1
    tag = root[0]
    if tag == "s":
        stacked = root[1]
        np = session.backend.np
        targets = np.array(
            [lane.engine._targets for lane in lanes], dtype=np.int64
        )
        ops = StackedOps(np, len(lanes), 1)
        masses = ops.mass_rows(stacked.masks, stacked.values, targets)
        return [float(m) for m in masses.tolist()]
    if tag == "u":
        return [0.0 for _ in lanes]
    # Per-lane scalar root (fallback form).
    return [
        float(lane.engine.mass(row)) for lane, row in zip(lanes, root[1])
    ]
