"""Workload sessions: batched multi-query evaluation with cross-query
subtree memoization.

Real view-cache workloads ask *many* TP queries against the same
p-document — exactly the regime where the goal-set DP's per-subtree work
is shared across queries (compare the treelike-instance lineage reuse of
Amarilli et al. and the combined-complexity analysis of
Amarilli–Monet–Senellart on probabilistic graphs).  A
:class:`QuerySession` exploits that in three ways:

**One post-order pass per batch.**  :meth:`QuerySession.answer_many`
walks the p-document once for the whole batch.  Each query owns its own
goal-bit range in the joint goal table (a private
:class:`~repro.prob.engine.EvaluationEngine` numbering); the session
calls every query's blocked/pinned combine step per p-document node, so
the traversal (stack management, node dispatch, per-node bookkeeping) is
paid once regardless of the batch size.  Distributions are kept as
*per-query projections* of the joint mask space — ranges are disjoint,
so projections lose nothing, and the supports of independent queries add
instead of multiplying (a literal joint distribution over ``k``
independent queries' goals has support ``∏ sᵢ``; the projections have
``Σ sᵢ``).

**Cross-query subtree memoization.**  Per-subtree *blocked* distributions
(the candidate-free evaluations of the single-pass answer DP) are cached
under ``(PNode.node_id, goal-table fingerprint)``, where the fingerprint
is the query's goal table restricted to the labels occurring in the
subtree (:meth:`EvaluationEngine.goal_table_fingerprint`).  Restriction
makes the key *semantic*: two structurally identical queries that differ
only in labels absent from a subtree fingerprint equally there and share
one evaluation — in a batch of per-project queries, a person subtree
holding ``project3`` is evaluated once for ``project3``'s query and once
for all the others together.  The memo persists across
``answer_many``/``answer`` calls of the same session, so repeated
workloads skip every subtree that holds no candidate.

**Mutation epochs.**  The memo is invalidated automatically when
:attr:`repro.pxml.pdocument.PDocument.mutation_epoch` changes (code that
mutates a p-document in place calls ``mark_mutated()``), and manually via
:meth:`QuerySession.invalidate`.

The session also backs the rewrite layer: plans route their numerator /
denominator / α-pattern evaluations through
:meth:`QuerySession.boolean_many`, which batches anchored Boolean
(TP / TP∩) probabilities through the same shared pass and memo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..probability import BackendLike, NumericBackend, get_backend
from ..pxml.pdocument import PDocument, PNode
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import TreePattern
from .engine import AnchorsLike, EvaluationEngine

__all__ = ["QuerySession", "SessionStats", "BooleanItem"]

#: One item of a Boolean batch: a pattern, or ``(patterns, anchors)`` for
#: anchored / TP∩ probabilities (``patterns`` may be a single pattern).
BooleanItem = Union[
    TreePattern,
    tuple,
]

# Gate tags for the memo: blocked (output D-goals suppressed) vs unpinned
# (output D-goals granted).  A subtree whose label set contains no output
# label is gate-insensitive and shares one entry (tag None).
_BLOCKED = "blocked"
_UNPINNED = "unpinned"


@dataclass
class SessionStats:
    """Cumulative instrumentation of one session.

    Attributes:
        traversals: shared post-order passes performed (one per batch).
        queries: queries / Boolean items evaluated through the session.
        node_visits: p-document nodes touched by the shared passes; a cold
            ``answer_many`` touches each node exactly once no matter how
            many queries the batch holds.
        memo_hits: per-query subtree evaluations answered from the
            cross-query memo.
        memo_misses: per-query subtree evaluations computed and stored.
        neutral_skips: per-query subtree evaluations short-circuited to
            the unit distribution because the subtree holds no goal-table
            label (no memo involved).
        subtree_skips: whole subtrees skipped without traversal because
            every query of the batch was neutral or hit the memo at their
            root.
        invalidations: memo resets (mutation epochs and manual calls).
    """

    traversals: int = 0
    queries: int = 0
    node_visits: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    neutral_skips: int = 0
    subtree_skips: int = 0
    invalidations: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class QuerySession:
    """A batched-evaluation session over one p-document.

    Args:
        p: the p-document all queries are evaluated against.
        backend: numeric backend name or instance (default ``"exact"``).
        memoize: keep the cross-query subtree memo (default true).
        memo_limit: entry cap of the memo; reaching it clears the memo
            (coarse, but bounds memory on unbounded workloads).

    Attributes:
        stats: cumulative :class:`SessionStats`.
    """

    def __init__(
        self,
        p: PDocument,
        backend: BackendLike = "exact",
        memoize: bool = True,
        memo_limit: int = 1 << 18,
    ) -> None:
        self.p = p
        self.backend: NumericBackend = get_backend(backend)
        self.memoize = memoize
        self.memo_limit = memo_limit
        self.stats = SessionStats()
        self._memo: dict = {}
        self._table_ids: dict[tuple, int] = {}
        self._epoch = getattr(p, "mutation_epoch", 0)
        self._labels_below: Optional[dict[int, frozenset]] = None
        self._world = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer_many(self, queries: Sequence[TreePattern]) -> list[dict]:
        """``[q(P̂) for q in queries]`` from one shared post-order pass.

        Per-query candidates are read off the shared maximal world; all
        queries' blocked/pinned distributions are then carried through a
        single traversal of the p-document, consulting and filling the
        cross-query subtree memo.  Equals per-query
        :meth:`EvaluationEngine.answer` exactly (``exact`` backend) /
        within floating-point error (``fast``).
        """
        queries = list(queries)
        if not queries:
            return []
        self._refresh()
        engines = [
            EvaluationEngine(self.p, [q], backend=self.backend) for q in queries
        ]
        world = self._max_world()
        candidate_sets = [
            frozenset(evaluate_deterministic(q, world)) for q in queries
        ]
        live_sets = [self._live_ancestors(cs) for cs in candidate_sets]
        pinned_maps = self._pinned_batch_pass(engines, candidate_sets, live_sets)
        zero = self.backend.zero
        answers: list[dict] = []
        for engine, query, candidates, pinned in zip(
            engines, queries, candidate_sets, pinned_maps
        ):
            target = engine.pattern_target(query)
            answer: dict = {}
            for node_id in sorted(candidates):
                distribution = pinned.get(node_id)
                if distribution is None:
                    continue
                probability = engine.mass(distribution, target)
                if probability > zero:
                    answer[node_id] = probability
            answers.append(answer)
        self.stats.queries += len(queries)
        return answers

    def answer(self, q: TreePattern) -> dict:
        """``q(P̂)`` — one query, still through the session memo."""
        return self.answer_many([q])[0]

    def boolean_many(self, items: Sequence[BooleanItem]) -> list:
        """Batched Boolean probabilities from one shared pass.

        Each item is a pattern, or ``(patterns, anchors)`` where
        ``patterns`` is a pattern or a sequence of patterns (evaluated
        jointly, TP∩ semantics) and ``anchors`` an optional
        :data:`~repro.prob.engine.AnchorsLike` mapping.  Returns one
        backend probability per item.
        """
        normalized: list[tuple[list[TreePattern], Optional[AnchorsLike]]] = []
        for item in items:
            if isinstance(item, TreePattern):
                normalized.append(([item], None))
                continue
            patterns, anchors = item
            if isinstance(patterns, TreePattern):
                patterns = [patterns]
            normalized.append((list(patterns), anchors))
        if not normalized:
            return []
        self._refresh()
        engines = [
            EvaluationEngine(self.p, patterns, anchors, self.backend)
            for patterns, anchors in normalized
        ]
        distributions = self._unpinned_batch_pass(engines)
        self.stats.queries += len(engines)
        return [
            engine.mass(distribution)
            for engine, distribution in zip(engines, distributions)
        ]

    def boolean_probability(
        self, q: TreePattern, anchors: Optional[AnchorsLike] = None
    ):
        """``Pr(q matches P)``, optionally anchored."""
        return self.boolean_many([(q, anchors)])[0]

    def node_probability(self, q: TreePattern, node_id: int):
        """``Pr(n ∈ q(P))`` for one node (anchored Boolean run)."""
        return self.boolean_probability(q, {q.out: node_id})

    def invalidate(self) -> None:
        """Drop every cached per-subtree distribution (and derived maps)."""
        self._memo.clear()
        self._table_ids.clear()
        self._labels_below = None
        self._world = None
        self.stats.invalidations += 1

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    # ------------------------------------------------------------------
    # Shared-pass machinery
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        epoch = getattr(self.p, "mutation_epoch", 0)
        if epoch != self._epoch:
            self._epoch = epoch
            self.invalidate()
        elif len(self._table_ids) >= self.memo_limit:
            # Anchored workloads mint a fresh fingerprint per anchor value;
            # bound the interning table alongside the memo.  Only safe
            # between passes — mid-pass fp caches hold interned ids.
            self.invalidate()

    def _max_world(self):
        if self._world is None:
            self._world = self.p.max_world()
        return self._world

    def _label_sets(self) -> dict[int, frozenset]:
        """``node_id -> frozenset(ordinary labels in the subtree)``."""
        if self._labels_below is None:
            interned: dict[frozenset, frozenset] = {}
            sets: dict[int, frozenset] = {}
            stack: list[tuple[PNode, bool]] = [(self.p.root, False)]
            while stack:
                node, expanded = stack.pop()
                if not expanded:
                    stack.append((node, True))
                    stack.extend((child, False) for child in node.children)
                    continue
                accumulated: set = set()
                if node.label is not None:
                    accumulated.add(node.label)
                for child in node.children:
                    accumulated |= sets[child.node_id]
                frozen = frozenset(accumulated)
                sets[node.node_id] = interned.setdefault(frozen, frozen)
            self._labels_below = sets
        return self._labels_below

    def _live_ancestors(self, candidates: frozenset) -> frozenset:
        """Node Ids whose subtree contains a candidate (ancestor closure)."""
        live: set[int] = set()
        for node_id in candidates:
            node: Optional[PNode] = self.p.node(node_id)
            while node is not None and node.node_id not in live:
                live.add(node.node_id)
                node = node.parent
        return frozenset(live)

    def _memo_key(
        self,
        engine: EvaluationEngine,
        fp_cache: dict,
        node_id: int,
        labels: dict[int, frozenset],
        gate: str,
    ) -> tuple:
        """``(node_id, goal-table fingerprint id, effective gate)``.

        The fingerprint is interned to a small integer per session so memo
        keys hash cheaply; gate-insensitive subtrees (no output label
        below) share one entry across blocked and unpinned evaluations.
        The fingerprint cache is keyed by the *relevant* label set — the
        subtree's labels restricted to the engine's goal-table support —
        which repeats across structurally similar subtrees even when their
        full label sets differ.
        """
        relevant = engine.table_labels & labels[node_id]
        cached = fp_cache.get(relevant)
        if cached is None:
            table, out_sensitive = engine.goal_table_fingerprint(relevant)
            table_id = self._table_ids.setdefault(table, len(self._table_ids))
            cached = (table_id, out_sensitive)
            fp_cache[relevant] = cached
        table_id, out_sensitive = cached
        return (node_id, table_id, gate if out_sensitive else None)

    def _memo_store(self, key: tuple, distribution: dict) -> None:
        if len(self._memo) >= self.memo_limit:
            self._memo.clear()
            self.stats.invalidations += 1
        self._memo[key] = distribution

    def _pinned_batch_pass(
        self,
        engines: list[EvaluationEngine],
        candidate_sets: list[frozenset],
        live_sets: list[frozenset],
    ) -> list[dict]:
        """One shared post-order pass computing every query's pinned map.

        Per query and node the pass either short-circuits a *neutral*
        subtree (no goal-table label below ⇒ the distribution is the unit
        ``{∅: 1}``), reuses a memoized blocked distribution (counted as a
        hit), or calls the query's
        :meth:`EvaluationEngine.combine_pinned`.  When *every* query of
        the batch is neutral or hits the memo at a subtree root, the
        subtree is not traversed at all.
        """
        memo = self._memo if self.memoize else None
        labels = self._label_sets()
        unit = {0: self.backend.one}
        count = len(engines)
        indices = range(count)
        table_labels = [engine.table_labels for engine in engines]
        combines = [engine.combine_pinned for engine in engines]
        fp_caches: list[dict] = [{} for _ in indices]
        entries: list[dict] = [{} for _ in indices]
        stats = self.stats
        stack: list[tuple[PNode, bool]] = [(self.p.root, False)]
        while stack:
            node, expanded = stack.pop()
            node_id = node.node_id
            if not expanded:
                label_set = labels[node_id]
                neutral = 0
                cached_all: Optional[list] = []
                for i in indices:
                    if node_id in live_sets[i]:
                        cached_all = None
                        break
                    if not (table_labels[i] & label_set):
                        cached_all.append(unit)
                        neutral += 1
                        continue
                    if memo is None:
                        cached_all = None
                        break
                    key = self._memo_key(
                        engines[i], fp_caches[i], node_id, labels, _BLOCKED
                    )
                    cached = memo.get(key)
                    if cached is None:
                        cached_all = None
                        break
                    cached_all.append(cached)
                if cached_all is not None:
                    for i in indices:
                        entries[i][node_id] = (cached_all[i], {})
                    stats.memo_hits += count - neutral
                    stats.neutral_skips += neutral
                    stats.subtree_skips += 1
                    continue
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            stats.node_visits += 1
            label_set = labels[node_id]
            children = node.children
            for i in indices:
                entry_map = entries[i]
                if node_id not in live_sets[i]:
                    if not (table_labels[i] & label_set):
                        entry_map[node_id] = (unit, {})
                        stats.neutral_skips += 1
                    elif memo is not None:
                        key = self._memo_key(
                            engines[i], fp_caches[i], node_id, labels, _BLOCKED
                        )
                        blocked = memo.get(key)
                        if blocked is not None:
                            entry_map[node_id] = (blocked, {})
                            stats.memo_hits += 1
                        else:
                            blocked, _ = combines[i](
                                node, entry_map, candidate_sets[i]
                            )
                            entry_map[node_id] = (blocked, {})
                            self._memo_store(key, blocked)
                            stats.memo_misses += 1
                    else:
                        entry_map[node_id] = (
                            combines[i](node, entry_map, candidate_sets[i])[0],
                            {},
                        )
                else:
                    entry = combines[i](node, entry_map, candidate_sets[i])
                    entry_map[node_id] = entry
                    if memo is not None:
                        key = self._memo_key(
                            engines[i], fp_caches[i], node_id, labels, _BLOCKED
                        )
                        self._memo_store(key, entry[0])
                for child in children:
                    entry_map.pop(child.node_id, None)
        stats.traversals += 1
        root_id = self.p.root.node_id
        return [entries[i].pop(root_id)[1] for i in indices]

    def _unpinned_batch_pass(
        self, engines: list[EvaluationEngine]
    ) -> list[dict]:
        """Shared pass for Boolean batches (unpinned distributions).

        Same structure as :meth:`_pinned_batch_pass` — neutral-subtree
        short-circuit, memo consult/fill, subtree skips — without the
        pinned (per-candidate) machinery.
        """
        memo = self._memo if self.memoize else None
        labels = self._label_sets()
        unit = {0: self.backend.one}
        count = len(engines)
        indices = range(count)
        fp_caches: list[dict] = [{} for _ in indices]
        entries: list[dict] = [{} for _ in indices]
        stats = self.stats
        stack: list[tuple[PNode, bool]] = [(self.p.root, False)]
        while stack:
            node, expanded = stack.pop()
            node_id = node.node_id
            if not expanded:
                label_set = labels[node_id]
                neutral = 0
                cached_all: Optional[list] = []
                for i in indices:
                    if not (engines[i].table_labels & label_set):
                        cached_all.append(unit)
                        neutral += 1
                        continue
                    if memo is None:
                        cached_all = None
                        break
                    key = self._memo_key(
                        engines[i], fp_caches[i], node_id, labels, _UNPINNED
                    )
                    cached = memo.get(key)
                    if cached is None:
                        cached_all = None
                        break
                    cached_all.append(cached)
                if cached_all is not None:
                    for i in indices:
                        entries[i][node_id] = cached_all[i]
                    stats.memo_hits += count - neutral
                    stats.neutral_skips += neutral
                    stats.subtree_skips += 1
                    continue
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            stats.node_visits += 1
            label_set = labels[node_id]
            for i in indices:
                entry_map = entries[i]
                if not (engines[i].table_labels & label_set):
                    entry_map[node_id] = unit
                    stats.neutral_skips += 1
                elif memo is not None:
                    key = self._memo_key(
                        engines[i], fp_caches[i], node_id, labels, _UNPINNED
                    )
                    distribution = memo.get(key)
                    if distribution is not None:
                        entry_map[node_id] = distribution
                        stats.memo_hits += 1
                    else:
                        distribution = engines[i].combine_unpinned(
                            node, entry_map
                        )
                        entry_map[node_id] = distribution
                        self._memo_store(key, distribution)
                        stats.memo_misses += 1
                else:
                    entry_map[node_id] = engines[i].combine_unpinned(
                        node, entry_map
                    )
                for child in node.children:
                    entry_map.pop(child.node_id, None)
        stats.traversals += 1
        root_id = self.p.root.node_id
        return [entries[i].pop(root_id) for i in indices]
