"""Workload sessions: batched multi-query evaluation with structural,
store-backed subtree memoization.

Real view-cache workloads ask *many* TP queries against the same
p-document — exactly the regime where the goal-set DP's per-subtree work
is shared across queries (compare the treelike-instance lineage reuse of
Amarilli et al. and the combined-complexity analysis of
Amarilli–Monet–Senellart on probabilistic graphs).  A
:class:`QuerySession` exploits that in three ways:

**One post-order pass per batch.**  :meth:`QuerySession.answer_many`
walks the p-document once for the whole batch.  Each query owns its own
goal-bit range in the joint goal table (a private
:class:`~repro.prob.engine.EvaluationEngine` numbering); the session
calls every query's blocked/pinned combine step per p-document node, so
the traversal (stack management, node dispatch, per-node bookkeeping) is
paid once regardless of the batch size.  Distributions are kept as
*per-query projections* of the joint mask space — ranges are disjoint,
so projections lose nothing, and the supports of independent queries add
instead of multiplying (a literal joint distribution over ``k``
independent queries' goals has support ``∏ sᵢ``; the projections have
``Σ sᵢ``).

**Structural cross-query memoization.**  Per-subtree *blocked*
distributions (the candidate-free evaluations of the single-pass answer
DP) are cached in a :class:`repro.store.MemoStore` under the canonical
``(structural digest, goal-table fingerprint, gate, backend)`` key (see
:mod:`repro.store.api`): the digest identifies the subtree by *shape*
(kind, labels, distribution parameters — not node Ids), the fingerprint
is the query's goal table restricted to the labels occurring in the
subtree (:meth:`EvaluationEngine.goal_table_fingerprint`).  Both
components are semantic, so one entry serves (i) two structurally
identical queries that differ only in labels absent from the subtree,
(ii) two *isomorphic subtrees* — of one document, or of a document and
its probabilistic extensions — already within a single cold pass, and
(iii) with a shared or persistent store
(:class:`repro.store.SqliteStore`), other sessions and restarted
processes.  The default store is a private
:class:`repro.store.InMemoryStore` whose cost-aware LRU eviction
(weight = support size × subtree size) keeps expensive hot entries under
memory pressure instead of the old clear-at-capacity purge.  *Anchored*
restrictions are content-addressed too: anchor values are abstracted out
of the fingerprint and re-bound to canonical anchor *positions*
(digest-sorted rank paths, :meth:`repro.pxml.pdocument.PDocument.
anchor_index`), so the rewrite layer's Theorem-1/2 anchored traffic
shares entries across extensions, subdocuments, restarts and isomorphic
twin documents.  With ``anchored_store=False`` the historical node-keyed
behaviour returns: anchored entries then live in a session-local memo
(itself an :class:`~repro.store.InMemoryStore`, so the same
GreedyDual-Size eviction replaces the old clear-at-capacity purge).

All four store-consulting loops that used to live here and in the
engine are now one shared skeleton —
:func:`repro.prob.traversal.stored_postorder`; the session's passes are
multi-lane instances of it.

**Mutation epochs and spine-only refreshes.**  When :attr:`repro.pxml.
pdocument.PDocument.mutation_epoch` changes (code that mutates a
p-document in place calls ``mark_mutated(node)``), the session consults
:meth:`PDocument.dirty_since`.  For node-scoped mutations it performs a
*spine refresh*: only local-memo entries keyed on dirty node Ids are
discarded, stacked batch plans survive (their per-node key caches are
pruned of dirty Ids and their answer memos cleared), and — when the
mutation was probability-only, so the maximal world is unchanged —
cached candidate sets and the world itself stay warm too.  Only a
whole-document :meth:`PDocument.mark_all_mutated` (or the deprecated
argument-less ``mark_mutated()``) still triggers the historical full
reset.  The structural store needs no purge either way: mutated
subtrees change their digests and simply stop matching, while untouched
sibling subtrees keep hitting — content addressing makes invalidation
automatic and minimal, and the session records each spine refresh on
the store (:meth:`repro.store.MemoStore.record_spine_recompute`).

The session also backs the rewrite layer: plans route their numerator /
denominator / α-pattern evaluations through
:meth:`QuerySession.boolean_many`, which batches anchored Boolean
(TP / TP∩) probabilities through the same shared pass and memo.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence, Union

from ..obs.registry import Sample, get_registry
from ..obs.trace import capture as trace_capture, span as trace_span
from ..probability import BackendLike, NumericBackend, get_backend
from ..pxml.pdocument import PDocument
from ..store import (
    GATE_BLOCKED,
    GATE_UNPINNED,
    InMemoryStore,
    MemoStore,
    SubtreeKeyer,
    fingerprint_digest,
)
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import TreePattern
from .engine import AnchorsLike, EvaluationEngine
from .traversal import Lane, stored_postorder

__all__ = ["QuerySession", "SessionStats", "BooleanItem"]

#: One item of a Boolean batch: a pattern, or ``(patterns, anchors)`` for
#: anchored / TP∩ probabilities (``patterns`` may be a single pattern).
BooleanItem = Union[
    TreePattern,
    tuple,
]

# Gate tags for memo keys: blocked (output D-goals suppressed) vs unpinned
# (output D-goals granted).  A subtree whose label set contains no output
# label is gate-insensitive and shares one entry (gate None).
_BLOCKED = GATE_BLOCKED
_UNPINNED = GATE_UNPINNED


@dataclass
class SessionStats:
    """Cumulative instrumentation of one session.

    Attributes:
        traversals: shared post-order passes performed (one per batch).
        queries: queries / Boolean items evaluated through the session.
        node_visits: p-document nodes touched by the shared passes; a cold
            ``answer_many`` touches each node exactly once no matter how
            many queries the batch holds.
        memo_hits: per-query subtree evaluations answered from the
            structural store or the local anchored memo.
        memo_misses: per-query subtree evaluations computed and stored.
        anchored_hits: the subset of ``memo_hits`` whose restriction was
            anchored (store anchor-position keys, or the node-keyed local
            memo when ``anchored_store=False``).
        anchored_misses: the subset of ``memo_misses`` that was anchored.
        neutral_skips: per-query subtree evaluations short-circuited to
            the unit distribution because the subtree holds no goal-table
            label (no memo involved).
        subtree_skips: whole subtrees skipped without traversal because
            every query of the batch was neutral or hit the memo at their
            root.
        invalidations: full session cache resets (whole-document
            mutation epochs, manual ``invalidate()`` calls).
        spine_refreshes: node-scoped mutation epochs absorbed without a
            full reset — only state keyed on dirty node Ids was dropped.
        survived_local: cumulative local-memo entries kept live across
            spine refreshes (node-keyed baseline sessions only).
        survived_plans: cumulative stacked batch plans kept live across
            spine refreshes (array backend).
    """

    traversals: int = 0
    queries: int = 0
    node_visits: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    anchored_hits: int = 0
    anchored_misses: int = 0
    neutral_skips: int = 0
    subtree_skips: int = 0
    invalidations: int = 0
    spine_refreshes: int = 0
    survived_local: int = 0
    survived_plans: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


#: Live sessions feeding the process registry (pull collector): the
#: plain-int SessionStats fields stay the hot-path shards; the registry
#: aggregates them at read time as ``repro_session_*`` series.  Stats of
#: garbage-collected sessions are retired into a process total first
#: (a finalizer holds the stats bag, never the session), keeping the
#: series monotone across instance lifetimes.
_LIVE_SESSIONS: "weakref.WeakSet[QuerySession]" = weakref.WeakSet()

_RETIRED_TOTALS: dict = {}


def _retire_session_stats(stats: SessionStats) -> None:
    for field, value in stats.__dict__.items():
        _RETIRED_TOTALS[field] = _RETIRED_TOTALS.get(field, 0) + value


def _collect_session_samples():
    totals: dict[str, int] = dict(_RETIRED_TOTALS)
    sessions = 0
    for session in list(_LIVE_SESSIONS):
        sessions += 1
        for field, value in session.stats.__dict__.items():
            totals[field] = totals.get(field, 0) + value
    yield Sample(
        "repro_sessions_live", "gauge", (), sessions,
        "QuerySession instances currently alive",
    )
    for field in sorted(totals):
        yield Sample(
            f"repro_session_{field}_total", "counter", (), totals[field],
            f"SessionStats.{field} summed over the process's sessions",
        )


get_registry().register_collector(_collect_session_samples)


class QuerySession:
    """A batched-evaluation session over one p-document.

    Args:
        p: the p-document all queries are evaluated against.
        backend: numeric backend name or instance (default ``"exact"``).
        memoize: keep the cross-query subtree memo (default true).
        memo_limit: entry cap.  For the session-owned default store this
            is its ``max_entries`` (evicted cost-aware, entry by entry);
            it also caps the local anchored memo of the node-keyed
            baseline, which now shares the same GreedyDual-Size eviction
            (an :class:`~repro.store.InMemoryStore`) instead of the old
            clear-at-capacity purge.
        store: a :class:`repro.store.MemoStore` to consult and fill —
            share one store between sessions (or pass a
            :class:`repro.store.SqliteStore`) for cross-document and
            cross-restart reuse.  Default: a private
            :class:`repro.store.InMemoryStore`.
        anchored_store: content-address anchored restrictions under
            canonical anchor-position keys in the structural store (the
            default).  ``False`` restores the node-keyed behaviour:
            anchored entries live in the session-local memo and die with
            the session — kept as the baseline of
            ``benchmarks/bench_anchored.py``.
        bulk_store: probe-plan prefetch for the session's store passes —
            ``None`` (default) follows ``store.prefers_bulk`` (on for a
            live :class:`~repro.store.SqliteStore`), ``True``/``False``
            force it.  Answers and store accounting are identical either
            way; only the round-trip shape changes (one ``get_many`` /
            ``contains_many`` / ``put_many`` per pass instead of
            per-node calls).

    Attributes:
        stats: cumulative :class:`SessionStats`.
        store: the structural memo store in use (``None`` iff
            ``memoize=False``).
    """

    def __init__(
        self,
        p: PDocument,
        backend: BackendLike = "exact",
        memoize: bool = True,
        memo_limit: int = 1 << 18,
        store: Optional[MemoStore] = None,
        anchored_store: bool = True,
        bulk_store: Optional[bool] = None,
    ) -> None:
        self.p = p
        self.backend: NumericBackend = get_backend(backend)
        self.memoize = memoize
        self.memo_limit = memo_limit
        self.anchored_store = anchored_store
        self.bulk_store = bulk_store
        if not memoize and store is not None:
            raise ValueError(
                "memoize=False is contradictory with an explicit store: "
                "the store would never be consulted or filled"
            )
        self._owns_store = store is None
        if not memoize:
            store = None
        elif store is None:
            store = InMemoryStore(max_entries=memo_limit)
        self.store = store
        self.stats = SessionStats()
        # Node-keyed side memo for anchored entries when anchored_store
        # is off; shares InMemoryStore's cost-aware GDS eviction.
        self._local: Optional[InMemoryStore] = (
            InMemoryStore(max_entries=memo_limit)
            if memoize and not anchored_store
            else None
        )
        self._epoch = getattr(p, "mutation_epoch", 0)
        self._world = None
        # Stacked-pass plan cache (array backend): batch id-signature ->
        # (strong query refs, prepared lanes/keyer).  Scoped to the
        # document's maximal world: spine refreshes keep it unless the
        # mutation changed the world; see repro.prob.stacked.
        self._stacked: dict = {}
        # Candidate-set cache for the classic pass: id(query) -> (query,
        # frozenset).  Candidates depend only on the maximal world and
        # the query, so probability-only mutations keep them warm.
        self._candidates: dict = {}
        _LIVE_SESSIONS.add(self)
        weakref.finalize(self, _retire_session_stats, self.stats)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def answer_many(
        self, queries: Sequence[TreePattern], profile: bool = False
    ):
        """``[q(P̂) for q in queries]`` from one shared post-order pass.

        Per-query candidates are read off the shared maximal world; all
        queries' blocked/pinned distributions are then carried through a
        single traversal of the p-document, consulting and filling the
        structural memo store.  Equals per-query
        :meth:`EvaluationEngine.answer` exactly (``exact`` backend) /
        within floating-point error (``fast``).

        With ``profile=True`` the call is traced (tracing is enabled for
        its duration if it was off) and returns ``(answers, profiles)``
        — one :class:`repro.obs.CostProfile` per query, whose attributed
        wall times sum to the traced wall time of the call.
        """
        queries = list(queries)
        if profile:
            from ..obs.profile import build_profiles

            with trace_capture() as captured:
                answers = self.answer_many(queries)
            return answers, build_profiles(
                captured.spans, [q.xpath() for q in queries]
            )
        if not queries:
            return []
        sp = trace_span(
            "session.answer_many",
            queries=len(queries),
            backend=self.backend.name,
        )
        with sp:
            self._refresh()
            if getattr(self.backend, "vectorized_sessions", False):
                from .stacked import stacked_answer_many

                answers = stacked_answer_many(self, queries)
                if answers is not None:
                    self.stats.queries += len(queries)
                    if sp:
                        sp.set("answers", sum(len(a) for a in answers))
                    return answers
            engines = [
                EvaluationEngine(self.p, [q], backend=self.backend)
                for q in queries
            ]
            candidate_sets = self._candidate_sets(engines, queries)
            live_sets = [
                self.p.ancestral_closure(cs) for cs in candidate_sets
            ]
            pinned_maps = self._pinned_batch_pass(
                engines, candidate_sets, live_sets
            )
            zero = self.backend.zero
            answers: list[dict] = []
            for engine, query, candidates, pinned in zip(
                engines, queries, candidate_sets, pinned_maps
            ):
                target = engine.pattern_target(query)
                answer: dict = {}
                for node_id in sorted(candidates):
                    distribution = pinned.get(node_id)
                    if distribution is None:
                        continue
                    probability = engine.mass(distribution, target)
                    if probability > zero:
                        answer[node_id] = probability
                answers.append(answer)
            self.stats.queries += len(queries)
            if sp:
                sp.set("candidates", sum(len(cs) for cs in candidate_sets))
                sp.set("answers", sum(len(a) for a in answers))
            return answers

    def answer(self, q: TreePattern) -> dict:
        """``q(P̂)`` — one query, still through the session memo."""
        return self.answer_many([q])[0]

    def boolean_many(self, items: Sequence[BooleanItem]) -> list:
        """Batched Boolean probabilities from one shared pass.

        Each item is a pattern, or ``(patterns, anchors)`` where
        ``patterns`` is a pattern or a sequence of patterns (evaluated
        jointly, TP∩ semantics) and ``anchors`` an optional
        :data:`~repro.prob.engine.AnchorsLike` mapping.  Returns one
        backend probability per item.
        """
        normalized: list[tuple[list[TreePattern], Optional[AnchorsLike]]] = []
        for item in items:
            if isinstance(item, TreePattern):
                normalized.append(([item], None))
                continue
            patterns, anchors = item
            if isinstance(patterns, TreePattern):
                patterns = [patterns]
            normalized.append((list(patterns), anchors))
        if not normalized:
            return []
        sp = trace_span(
            "session.boolean_many",
            items=len(normalized),
            backend=self.backend.name,
        )
        with sp:
            return self._boolean_many(normalized, sp)

    def _boolean_many(self, normalized, sp) -> list:
        self._refresh()
        vectorized = getattr(self.backend, "vectorized_sessions", False)
        key = None
        if vectorized:
            from .stacked import stacked_boolean_key

            # Boolean masses depend only on the document, the patterns
            # and the anchor bindings — never on store state — so within
            # an epoch a repeated batch is a pure memo hit, served before
            # the engines are even built.  ``_refresh``/``invalidate``
            # drop the memo with the rest of ``_stacked``.
            key = stacked_boolean_key(normalized)
            if key is not None:
                hit = self._stacked.get(key)
                if hit is not None:
                    self.stats.memo_hits += len(normalized)
                    self.stats.subtree_skips += 1
                    self.stats.queries += len(normalized)
                    if sp:
                        sp.set("stacked_memo_hit", True)
                    return list(hit[1])
        engines = [
            EvaluationEngine(self.p, patterns, anchors, self.backend)
            for patterns, anchors in normalized
        ]
        if vectorized:
            from .stacked import stacked_boolean_many

            masses = stacked_boolean_many(self, engines, normalized)
            if masses is not None:
                if key is not None:
                    if len(self._stacked) > 4096:
                        self._stacked.clear()
                    # ``normalized`` rides along to pin the ids the key
                    # was built from (patterns and anchor pattern-nodes),
                    # so a recycled id can never alias a stored key.
                    self._stacked[key] = (normalized, masses)
                self.stats.queries += len(engines)
                return masses
        distributions = self._unpinned_batch_pass(engines)
        self.stats.queries += len(engines)
        return [
            engine.mass(distribution)
            for engine, distribution in zip(engines, distributions)
        ]

    def boolean_probability(
        self, q: TreePattern, anchors: Optional[AnchorsLike] = None
    ):
        """``Pr(q matches P)``, optionally anchored."""
        return self.boolean_many([(q, anchors)])[0]

    def node_probability(self, q: TreePattern, node_id: int):
        """``Pr(n ∈ q(P))`` for one node (anchored Boolean run)."""
        return self.boolean_probability(q, {q.out: node_id})

    def invalidate(self) -> None:
        """Reset the session's caches and every derived document map.

        Drops the local (anchored, node-keyed) memo and bumps the
        document's mutation epoch so all epoch-tagged derived state
        (label index, structural digests, identity digest) is re-derived
        — ``invalidate()`` therefore restores correctness even after an
        in-place mutation that forgot :meth:`PDocument.mark_mutated`.
        When the session *owns* its store (none was passed in) the store
        is cleared too.  A shared store is left intact — its
        content-addressed entries are valid beyond this session; clear it
        explicitly via ``session.store.clear()``.
        """
        mark_all = getattr(self.p, "mark_all_mutated", None)
        if mark_all is not None:
            mark_all()
        else:
            self.p.mark_mutated()
        self._epoch = self.p.mutation_epoch
        if self._local is not None:
            self._local.clear()
        self._world = None
        self._stacked.clear()
        self._candidates.clear()
        if self._owns_store and self.store is not None:
            self.store.clear()
        self.stats.invalidations += 1

    @property
    def memo_size(self) -> int:
        """Cached subtree entries visible to this session (store + local)."""
        store_size = len(self.store) if self.store is not None else 0
        local_size = len(self._local) if self._local is not None else 0
        return store_size + local_size

    # ------------------------------------------------------------------
    # Shared-pass machinery
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        epoch = getattr(self.p, "mutation_epoch", 0)
        if epoch == self._epoch:
            return
        # Structural store entries need no purge either way: mutated
        # subtrees change their digests and stop matching, untouched
        # ones keep hitting.  Only identity-keyed session state is at
        # stake here — and for node-scoped mutations (dirty_since) just
        # the slice of it keyed on dirty node Ids.
        dirty_since = getattr(self.p, "dirty_since", None)
        dirty = dirty_since(self._epoch) if dirty_since is not None else None
        self._epoch = epoch
        with trace_span(
            "session.refresh", spine=dirty is not None
        ) as sp:
            self._apply_refresh(dirty, sp)

    def _apply_refresh(self, dirty, sp) -> None:
        if dirty is None:
            if self._local is not None:
                self._local.clear()
            self._world = None
            self._stacked.clear()
            self._candidates.clear()
            self.stats.invalidations += 1
            return
        changed, world_changed = dirty
        stats = self.stats
        stats.spine_refreshes += 1
        if sp:
            sp.set("dirty_nodes", len(changed))
            sp.set("world_changed", world_changed)
        if self._local is not None:
            # Local keys are (node_id, fingerprint, targets, gate):
            # entries for untouched subtrees stay correct and warm.
            self._local.discard(lambda key: key[0] in changed)
            stats.survived_local += len(self._local)
        if world_changed:
            # Labels or the node set moved: candidate sets, the maximal
            # world and every stacked plan (whose lanes bake candidate /
            # live sets in) are all suspect.
            self._world = None
            self._candidates.clear()
            self._stacked.clear()
        else:
            # Probability-only mutation: candidates and plans survive.
            # Plan answer memos still reflect the old masses and per-node
            # key caches may hold dirty digests — drop just those.
            survived = 0
            for key in [k for k in self._stacked if k[0] == "bool"]:
                del self._stacked[key]
            for entry in self._stacked.values():
                plan = entry[1]
                if plan is None:
                    continue
                plan[4].clear()
                keyer = plan[1]
                if keyer is not None:
                    for node_id in changed:
                        keyer._cache.pop(node_id, None)
                survived += 1
            stats.survived_plans += survived
        if self.store is not None:
            self.store.record_spine_recompute(len(self.store))

    def _max_world(self):
        if self._world is None:
            self._world = self.p.max_world()
        return self._world

    def _candidate_sets(
        self, engines: list[EvaluationEngine], queries: list[TreePattern]
    ) -> list[frozenset]:
        """Per-query candidate Ids, cached in the store per document + table.

        Candidates are ``q(max_world)`` — a function of the document and
        the query's goal table alone — but they *name node Ids*, so the
        cache key uses :meth:`PDocument.identity_digest` (Id-aware; two
        isomorphic documents with different Id assignments must not
        share) plus the full goal-table fingerprint.  A warm store lets a
        restarted worker skip building the maximal world entirely.
        """
        with trace_span(
            "session.candidates", queries=len(queries)
        ) as sp:
            sets = self._candidate_sets_inner(engines, queries)
            if sp:
                sp.set("candidates", sum(len(s) for s in sets))
            return sets

    def _candidate_sets_inner(
        self, engines: list[EvaluationEngine], queries: list[TreePattern]
    ) -> list[frozenset]:
        store = self.store
        session_cache = self._candidates
        if store is None:
            sets = []
            for query in queries:
                hit = session_cache.get(id(query))
                if hit is not None and hit[0] is query:
                    sets.append(hit[1])
                    continue
                candidates = frozenset(
                    evaluate_deterministic(query, self._max_world())
                )
                if len(session_cache) > 4096:
                    session_cache.clear()
                session_cache[id(query)] = (query, candidates)
                sets.append(candidates)
            return sets
        document_key = self.p.identity_digest()
        bulk = (
            self.bulk_store
            if self.bulk_store is not None
            else getattr(store, "prefers_bulk", False)
        )
        # Resolve per-query store keys first: the bulk path prefetches
        # every cache-missing key in one round trip instead of one point
        # read per query.  ``key is None`` marks a session-cache hit.
        plan = []
        for engine, query in zip(engines, queries):
            # World-scoped session cache first: spine refreshes keep it
            # across probability-only mutations, where the identity
            # digest (and so the store key) changes but candidates
            # cannot.  The stored query ref pins id(query) against reuse.
            hit = session_cache.get(id(query))
            if hit is not None and hit[0] is query:
                plan.append((query, None, hit[1]))
                continue
            table, _, _ = engine.goal_table_fingerprint(engine.table_labels)
            key = (
                document_key,
                fingerprint_digest(table),
                None,
                "candidates",
                "node-ids",
            )
            plan.append((query, key, None))
        prefetched: dict = {}
        if bulk:
            wanted = [key for _, key, _ in plan if key is not None]
            if wanted:
                prefetched = store.get_many(wanted, record=False)
        # Misses save into ``pending`` and flush as one put_many; probes
        # consult it too, so two queries sharing a key count miss-then-hit
        # and put once — exactly as the per-key loop would.
        pending: dict = {}
        sets = []
        for query, key, known in plan:
            if key is None:
                sets.append(known)
                continue
            if bulk:
                cached = prefetched.get(key)
                if cached is None:
                    entry = pending.get(key)
                    if entry is not None:
                        cached = entry[0]
                store.record_probe(key, cached is not None)
            else:
                cached = store.get(key)
            if cached is not None:
                candidates = frozenset(cached)
            else:
                candidates = frozenset(
                    evaluate_deterministic(query, self._max_world())
                )
                # Recomputation means rebuilding the maximal world and
                # running the deterministic embedding — O(document) — so
                # weight by document size, not by the (often tiny)
                # candidate count.
                payload = {node_id: 1.0 for node_id in candidates}
                if bulk:
                    pending[key] = (payload, self.p.size())
                else:
                    store.put(key, payload, weight=self.p.size())
            if len(session_cache) > 4096:
                session_cache.clear()
            session_cache[id(query)] = (query, candidates)
            sets.append(candidates)
        if pending:
            store.put_many(
                (key, payload, weight)
                for key, (payload, weight) in pending.items()
            )
        return sets

    # ------------------------------------------------------------------
    # Shared passes: lanes over the one store-consulting skeleton
    # ------------------------------------------------------------------
    def _keyer(self, engine: EvaluationEngine) -> SubtreeKeyer:
        return SubtreeKeyer(
            self.p, engine, self.backend, anchored=self.anchored_store
        )

    def _pinned_batch_pass(
        self,
        engines: list[EvaluationEngine],
        candidate_sets: list[frozenset],
        live_sets: list[frozenset],
    ) -> list[dict]:
        """One shared post-order pass computing every query's pinned map.

        Each query is one pinned :class:`~repro.prob.traversal.Lane` of
        :func:`~repro.prob.traversal.stored_postorder`: per query and
        node the pass either short-circuits a *neutral* subtree (no
        goal-table label below ⇒ the distribution is the unit ``{∅: 1}``),
        reuses a memoized blocked distribution (counted as a hit), or
        calls the query's :meth:`EvaluationEngine.combine_pinned`.  When
        *every* query of the batch is neutral or hits the memo at a
        subtree root, the subtree is not traversed at all.
        """
        use_memo = self.store is not None
        lanes = [
            Lane(
                table_labels=engine.table_labels,
                combine=partial(engine.combine_pinned, candidate_set=candidates),
                unit=engine._unit(),
                keyer=self._keyer(engine) if use_memo else None,
                live=live,
                gate=_BLOCKED,
                pinned=True,
            )
            for engine, candidates, live in zip(
                engines, candidate_sets, live_sets
            )
        ]
        roots = self._traced_postorder(lanes, pinned=True)
        self.stats.traversals += 1
        return [root[1] for root in roots]

    def _unpinned_batch_pass(
        self, engines: list[EvaluationEngine]
    ) -> list[dict]:
        """Shared pass for Boolean batches (unpinned distributions).

        Same skeleton as :meth:`_pinned_batch_pass` — one unpinned lane
        per item, without the pinned (per-candidate) machinery.
        """
        use_memo = self.store is not None
        lanes = [
            Lane(
                table_labels=engine.table_labels,
                combine=engine.combine_unpinned,
                unit=engine._unit(),
                keyer=self._keyer(engine) if use_memo else None,
                gate=_UNPINNED,
            )
            for engine in engines
        ]
        roots = self._traced_postorder(lanes, pinned=False)
        self.stats.traversals += 1
        return roots

    def _traced_postorder(self, lanes: list, pinned: bool) -> list:
        """Run :func:`stored_postorder`, under a traversal span if tracing.

        The span records per-pass deltas of the session counters (node
        visits, memo and store hit/miss traffic) — cheap because the
        snapshots happen once per pass, never per node.
        """
        sp = trace_span(
            "session.traversal", lanes=len(lanes), pinned=pinned
        )
        if sp:
            stats_before = self.stats.snapshot()
            store = self.store
            store_before = (
                (store.hits, store.misses) if store is not None else (0, 0)
            )
        with sp:
            roots = stored_postorder(
                self.p, lanes, self.store, self._local, self.stats,
                bulk=self.bulk_store,
            )
        if sp:
            after = self.stats
            sp.set(
                "node_visits", after.node_visits - stats_before["node_visits"]
            )
            sp.set("memo_hits", after.memo_hits - stats_before["memo_hits"])
            sp.set(
                "memo_misses", after.memo_misses - stats_before["memo_misses"]
            )
            sp.set(
                "subtree_skips",
                after.subtree_skips - stats_before["subtree_skips"],
            )
            if self.store is not None:
                sp.set("store_hits", self.store.hits - store_before[0])
                sp.set("store_misses", self.store.misses - store_before[1])
        return roots
