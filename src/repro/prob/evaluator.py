"""Exact evaluation of TP / TP∩ queries over p-documents.

The algorithm is a bottom-up dynamic program over the p-document that tracks,
for every node, the exact joint distribution over *goal sets*.  For every
pattern node ``u`` of every query there are two goals:

* ``D(u)`` — the pattern subtree rooted at ``u`` embeds with ``u`` mapped to
  *this* document node;
* ``A(u)`` — same, but ``u`` mapped to this node *or a proper descendant*.

Given a p-document node ``x`` (conditional on ``x`` being present, so all the
randomness considered lies strictly below ``x``):

* an **ordinary** node combines the distributions of its children by
  union-convolution (children subtrees are probabilistically independent),
  then rewrites the combined goal set: ``D(u)`` holds at ``x`` iff labels and
  anchors match and every ``/``-child goal ``D(u')`` and every ``//``-child
  goal ``A(u'')`` is present in the combined set; ``A(u)`` holds iff ``D(u)``
  holds at ``x`` or ``A(u)`` was contributed by some child;
* a **mux** node yields the probability mixture of its children's
  distributions (plus the "no choice" deficit on the empty set);
* an **ind** node union-convolves the mixtures ``p_i · dist(child_i) +
  (1 − p_i) · δ_∅``.

Distributional nodes are transparent for goals — exactly matching the run
semantics in which ordinary children of deleted distributional nodes attach
to the closest ordinary ancestor.

Because the DP carries the *joint* distribution of all goals, it evaluates
intersections of several patterns in one pass: the events "pattern ``q_i``
matches" are read off the same root distribution, with all correlations
accounted for.  Anchors (pattern node ↦ required document node Id) pin
``out(q) ↦ n`` and implement the ``Id(n)``-marker technique of §3.1.

Complexity: ``O(|P̂| · s²)`` where ``s`` bounds the number of distinct goal
sets — polynomial in the document for fixed queries, worst-case exponential
in the query sizes, as the paper (and [22]) state.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional, Sequence

from ..probability import ONE, ZERO
from ..pxml.pdocument import PDocument, PNode, PNodeKind
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern

__all__ = [
    "ProbEvaluator",
    "boolean_probability",
    "node_probability",
    "conditional_node_probability",
    "query_answer",
    "intersection_answer",
    "intersection_node_probability",
]

Anchors = Mapping[int, int]
GoalSet = frozenset[int]
Distribution = dict[GoalSet, Fraction]

_EMPTY: GoalSet = frozenset()


class ProbEvaluator:
    """One joint evaluation of several anchored patterns over a p-document.

    Args:
        p: the p-document.
        patterns: the tree patterns evaluated jointly (one for TP; several
            for TP∩).
        anchors: optional map ``id(pattern_node) -> document node Id``.
    """

    def __init__(
        self,
        p: PDocument,
        patterns: Sequence[TreePattern],
        anchors: Optional[Anchors] = None,
    ) -> None:
        self.p = p
        self.patterns = list(patterns)
        self.anchors = dict(anchors or {})
        # Goal numbering: 2 * index for D(u), 2 * index + 1 for A(u).
        self._goal_index: dict[int, int] = {}
        self._pattern_nodes: list[PatternNode] = []
        for pattern in self.patterns:
            for u in pattern.root.iter_subtree():
                self._goal_index[id(u)] = len(self._pattern_nodes)
                self._pattern_nodes.append(u)
        # Group pattern nodes by label for quick goal recomputation.
        self._by_label: dict[str, list[PatternNode]] = {}
        for u in self._pattern_nodes:
            self._by_label.setdefault(u.label, []).append(u)

    # -- goal ids -------------------------------------------------------
    def d_goal(self, u: PatternNode) -> int:
        return 2 * self._goal_index[id(u)]

    def a_goal(self, u: PatternNode) -> int:
        return 2 * self._goal_index[id(u)] + 1

    # -- public API -----------------------------------------------------
    def all_match_probability(self) -> Fraction:
        """``Pr(every pattern has an embedding respecting the anchors)``."""
        distribution = self._distribution(self.p.root)
        targets = [self.d_goal(pattern.root) for pattern in self.patterns]
        return sum(
            (
                probability
                for goals, probability in distribution.items()
                if all(t in goals for t in targets)
            ),
            ZERO,
        )

    # -- the DP ---------------------------------------------------------
    def _distribution(self, x: PNode) -> Distribution:
        """Iterative post-order DP (documents may be deep)."""
        memo: dict[int, Distribution] = {}
        stack: list[tuple[PNode, bool]] = [(x, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                memo[node.node_id] = self._combine(node, memo)
                continue
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
        return memo[x.node_id]

    def _combine(self, node: PNode, memo: dict[int, Distribution]) -> Distribution:
        if node.kind is PNodeKind.ORDINARY:
            combined: Distribution = {_EMPTY: ONE}
            for child in node.children:
                combined = _union_convolve(combined, memo[child.node_id])
            return self._rewrite_at_ordinary(node, combined)
        assert node.probabilities is not None
        if node.kind is PNodeKind.MUX:
            result: Distribution = {}
            chosen_mass = ZERO
            for child in node.children:
                p_child = node.probabilities[child.node_id]
                if p_child == ZERO:
                    continue
                chosen_mass += p_child
                for goals, probability in memo[child.node_id].items():
                    weighted = p_child * probability
                    if weighted:
                        result[goals] = result.get(goals, ZERO) + weighted
            deficit = ONE - chosen_mass
            if deficit:
                result[_EMPTY] = result.get(_EMPTY, ZERO) + deficit
            return result
        # ind
        result = {_EMPTY: ONE}
        for child in node.children:
            p_child = node.probabilities[child.node_id]
            mixture: Distribution = {}
            if p_child < ONE:
                mixture[_EMPTY] = ONE - p_child
            if p_child > ZERO:
                for goals, probability in memo[child.node_id].items():
                    weighted = p_child * probability
                    if weighted:
                        mixture[goals] = mixture.get(goals, ZERO) + weighted
            result = _union_convolve(result, mixture)
        return result

    def _rewrite_at_ordinary(self, node: PNode, combined: Distribution) -> Distribution:
        """Map each combined child goal set to the goal set emitted by ``node``."""
        result: Distribution = {}
        for goals, probability in combined.items():
            emitted = self._goals_at(node, goals)
            result[emitted] = result.get(emitted, ZERO) + probability
        return result

    def _goals_at(self, node: PNode, below: GoalSet) -> GoalSet:
        emitted: set[int] = set()
        label = node.label
        assert label is not None
        for u in self._by_label.get(label, ()):  # D goals: match exactly here
            if not self._anchor_ok(u, node):
                continue
            if self._children_satisfied(u, below):
                emitted.add(self.d_goal(u))
        for u in self._pattern_nodes:  # A goals: here or strictly below
            a = self.a_goal(u)
            if a in below or self.d_goal(u) in emitted:
                emitted.add(a)
        return frozenset(emitted)

    def _children_satisfied(self, u: PatternNode, below: GoalSet) -> bool:
        for child in u.children:
            needed = (
                self.d_goal(child)
                if child.axis is Axis.CHILD
                else self.a_goal(child)
            )
            if needed not in below:
                return False
        return True

    def _anchor_ok(self, u: PatternNode, node: PNode) -> bool:
        required = self.anchors.get(id(u))
        return required is None or required == node.node_id


def _union_convolve(d1: Distribution, d2: Distribution) -> Distribution:
    """Distribution of ``S1 ∪ S2`` for independent ``S1 ~ d1``, ``S2 ~ d2``."""
    if len(d1) == 1 and _EMPTY in d1 and d1[_EMPTY] == ONE:
        return dict(d2)
    result: Distribution = {}
    for goals1, p1 in d1.items():
        for goals2, p2 in d2.items():
            weighted = p1 * p2
            if not weighted:
                continue
            union = goals1 | goals2
            result[union] = result.get(union, ZERO) + weighted
    return result


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def boolean_probability(
    p: PDocument,
    q: TreePattern,
    anchors: Optional[Anchors] = None,
) -> Fraction:
    """``Pr(q matches P)`` — the Boolean-query probability."""
    return ProbEvaluator(p, [q], anchors).all_match_probability()


def node_probability(p: PDocument, q: TreePattern, node_id: int) -> Fraction:
    """``Pr(n ∈ q(P))`` for a specific ordinary node ``n``."""
    return ProbEvaluator(
        p, [q], {id(q.out): node_id}
    ).all_match_probability()


def conditional_node_probability(
    p: PDocument, q: TreePattern, node_id: int
) -> Fraction:
    """``Pr(n ∈ q(P) | n ∈ P)`` (§5.2)."""
    appearance = p.appearance_probability(node_id)
    if appearance == ZERO:
        return ZERO
    return node_probability(p, q, node_id) / appearance


def query_answer(p: PDocument, q: TreePattern) -> dict[int, Fraction]:
    """``q(P̂)``: node Id ↦ probability, for all nodes with probability > 0.

    Candidates are read off the maximal world (a superset of every world),
    then each candidate's probability is computed by an anchored DP run.
    """
    candidates = evaluate_deterministic(q, p.max_world())
    answer: dict[int, Fraction] = {}
    for node_id in sorted(candidates):
        probability = node_probability(p, q, node_id)
        if probability > ZERO:
            answer[node_id] = probability
    return answer


def intersection_node_probability(
    p: PDocument, patterns: Sequence[TreePattern], node_id: int
) -> Fraction:
    """``Pr(n ∈ (q1 ∩ ... ∩ qk)(P))`` — joint, correlation-aware."""
    anchors = {id(q.out): node_id for q in patterns}
    return ProbEvaluator(p, patterns, anchors).all_match_probability()


def intersection_answer(
    p: PDocument, patterns: Sequence[TreePattern]
) -> dict[int, Fraction]:
    """``(q1 ∩ ... ∩ qk)(P̂)`` as node Id ↦ probability."""
    world = p.max_world()
    candidate_sets = [evaluate_deterministic(q, world) for q in patterns]
    candidates = set.intersection(*candidate_sets) if candidate_sets else set()
    answer: dict[int, Fraction] = {}
    for node_id in sorted(candidates):
        probability = intersection_node_probability(p, patterns, node_id)
        if probability > ZERO:
            answer[node_id] = probability
    return answer
