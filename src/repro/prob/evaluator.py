"""Compatibility layer over the single-pass evaluation engine.

The goal-set dynamic program documented here historically lived in this
module as ``ProbEvaluator``, which re-ran the full bottom-up DP once per
anchored candidate and computed in :class:`fractions.Fraction` only.  The
production path is now :mod:`repro.prob.engine`, which evaluates all
candidate anchors in a single traversal, interns goal sets as integer
bitmasks, and computes through a pluggable numeric backend.  This module
keeps the original surface:

* :class:`ProbEvaluator` — a thin shim delegating to
  :class:`repro.prob.engine.EvaluationEngine`;
* the convenience wrappers (``query_answer``, ``node_probability``, ...)
  re-exported from the engine, now accepting an optional ``backend``.

The DP itself (goals ``D(u)``/``A(u)``, union-convolution at ordinary and
``ind`` nodes, probability mixtures at ``mux`` nodes, anchors as the
§3.1 identity device — provenance anchor sets over Id-free extensions)
is documented in :mod:`repro.prob.engine`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..pxml.pdocument import PDocument
from ..tp.pattern import PatternNode, TreePattern
from .engine import (
    AnchorsLike,
    EvaluationEngine,
    boolean_probability,
    conditional_node_probability,
    intersection_answer,
    intersection_node_probability,
    node_probability,
    query_answer,
)

__all__ = [
    "ProbEvaluator",
    "boolean_probability",
    "node_probability",
    "conditional_node_probability",
    "query_answer",
    "intersection_answer",
    "intersection_node_probability",
]

#: Legacy alias; see :data:`repro.prob.engine.AnchorsLike` for the accepted
#: key forms (the historical ``{id(pattern_node): doc_id}`` form included).
Anchors = AnchorsLike


class ProbEvaluator:
    """One joint evaluation of several anchored patterns over a p-document.

    A compatibility shim over :class:`repro.prob.engine.EvaluationEngine`
    (exact backend, per-call DP).  New code should use the engine
    directly — in particular, its :meth:`~EvaluationEngine.answer` method
    computes all candidates in one traversal instead of one
    ``all_match_probability`` run per anchored candidate.

    Args:
        p: the p-document.
        patterns: the tree patterns evaluated jointly (one for TP; several
            for TP∩).
        anchors: optional anchors; ``PatternNode`` keys, structural paths,
            or the deprecated ``id(pattern_node)`` ints (see
            :data:`repro.prob.engine.AnchorsLike`).
    """

    def __init__(
        self,
        p: PDocument,
        patterns: Sequence[TreePattern],
        anchors: Optional[AnchorsLike] = None,
    ) -> None:
        self.p = p
        self.patterns = list(patterns)
        self._engine = EvaluationEngine(p, self.patterns, anchors)
        self.anchors = dict(self._engine.anchors)

    def d_goal(self, u: PatternNode) -> int:
        return self._engine.d_goal(u)

    def a_goal(self, u: PatternNode) -> int:
        return self._engine.a_goal(u)

    def all_match_probability(self):
        """``Pr(every pattern has an embedding respecting the anchors)``."""
        return self._engine.match_probability()
