"""THE store-consulting post-order traversal.

Before this module existed, four hand-rolled copies of the same loop
lived in the engine and session layers —
``EvaluationEngine._single_pass_stored`` / ``_pinned_pass_stored`` and
``QuerySession._pinned_batch_pass`` / ``_unpinned_batch_pass`` — each
re-implementing the probe / neutral-skip / second-chance-reprobe /
contains-guarded-save choreography with slightly different memo
routing.  :func:`stored_postorder` is the one remaining skeleton; the
engine passes are single-lane instances of it and inherit the session's
reprobe semantics for free.

**Lanes.**  A :class:`Lane` is one query's view of a shared pass: its
goal-table label support (for the neutral short-circuit), its *live* set
(ancestors of candidate nodes, which must always be combined so pinned
maps can be assembled), its gate, its keyer, and its combine callback.
A batched session pass runs many lanes over one stack walk; a plain
engine pass runs one.

**Per node, per lane** the skeleton either

* short-circuits a *neutral* subtree (no goal-table label below ⇒ the
  distribution is the unit ``{∅: 1}``) without touching any memo,
* reuses a memoized blocked/unpinned distribution (a *hit*), or
* calls the lane's combine and saves the cacheable half of the result
  under the lane's token (a *miss*).

When *every* lane of the pass is neutral or hits at a subtree root
(pre-check probe), the subtree is not traversed at all.  A counted
pre-check miss is stashed as :data:`_MISS`; the expanded visit then uses
a *second-chance* probe — it can still hit when an earlier lane of the
same pass filled the identical key at this very node (same-pass
cross-lane sharing), but a repeated miss is answered from
:meth:`~repro.store.MemoStore.contains` and not re-counted.

**Memo routing.**  A lane token (:meth:`repro.store.keys.SubtreeKeyer.
token`) is either a canonical content-addressed store key — unanchored,
or anchored with canonical position encoding — or, when anchored keying
is disabled (node-keyed baseline), a node-identity key served by a
session-``local`` store.  Live-spine entries are recombined every pass
without a prior probe; equal keys mean equal distributions, so saves are
``contains``-guarded to skip the redundant re-store (a disk write per
node on :class:`~repro.store.SqliteStore`).

**Probe plans (bulk I/O).**  Against a store that prefers bulk probing
(``store.prefers_bulk``, e.g. a live :class:`~repro.store.SqliteStore`;
forceable via ``bulk=``), the pass front-loads its store traffic: every
lane's candidate keys are enumerated from the epoch-cached digest
indexes (:meth:`~repro.store.SubtreeKeyer.plan_keys`) and answered by
ONE :meth:`~repro.store.MemoStore.get_many` plus one
:meth:`~repro.store.MemoStore.contains_many` for the live-spine
save-guard set, and all saves collect into one
:meth:`~repro.store.MemoStore.put_many` at pass end — per-node store
calls disappear from the hot loop.  The prefetch is *uncounted*
(``record=False``): it probes keys under subtrees the walk may skip, so
hit/miss accounting happens per *use* through
:meth:`~repro.store.MemoStore.record_probe`, keeping ``stats()``
byte-identical to the per-key path.  Deferred saves live in the plan's
``pending`` map, which probes and reprobes consult — same-pass
cross-lane sharing survives the deferral.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..obs.trace import span
from ..store import MemoStore, SubtreeKeyer

__all__ = ["Lane", "stored_postorder"]

#: Sentinel recording a counted pre-check probe miss (see module docs).
_MISS = object()

_EMPTY = frozenset()


class Lane:
    """One query's view of a shared store-consulting pass.

    Args:
        table_labels: the lane's goal-table label support; a subtree
            whose label set is disjoint from it is *neutral*.
        combine: ``(node, entries) -> entry`` — the lane's DP combine
            step over the child entries.
        unit: the lane's unit distribution ``{0: one}``.
        keyer: the lane's :class:`~repro.store.SubtreeKeyer` (``None``
            when the pass runs memo-less).
        live: node Ids whose subtree holds a candidate — always combined.
        gate: gate tag for the lane's cacheable (blocked / unpinned)
            distributions.
        pinned: entries are ``(blocked, pinned)`` pairs; only the blocked
            half is content-addressable (pinned maps name node Ids).
    """

    __slots__ = (
        "table_labels", "combine", "keyer", "live", "gate", "pinned",
        "unit_entry",
    )

    def __init__(
        self,
        table_labels: frozenset,
        combine: Callable,
        unit: dict,
        keyer: Optional[SubtreeKeyer] = None,
        live: frozenset = _EMPTY,
        gate: Optional[str] = None,
        pinned: bool = False,
    ) -> None:
        self.table_labels = table_labels
        self.combine = combine
        self.keyer = keyer
        self.live = live
        self.gate = gate
        self.pinned = pinned
        self.unit_entry = (unit, {}) if pinned else unit


def _probe(key, is_local: bool, store, local) -> Optional[dict]:
    target = local if is_local else store
    if target is None:
        return None
    return target.get(key)


def _reprobe(key, is_local: bool, store, local) -> Optional[dict]:
    """Second-chance probe: one store call, a hit counts, a miss does not."""
    target = local if is_local else store
    if target is None:
        return None
    return target.reprobe(key)


def _save(key, is_local: bool, store, local, distribution, weight) -> None:
    target = local if is_local else store
    if target is not None and not target.contains(key):
        target.put(key, distribution, weight)


class _ProbePlan:
    """One pass's bulk store I/O, front-loaded.

    ``snapshot`` holds the answers of one *uncounted* ``get_many`` over
    every key the pass may probe; ``present`` the ``contains_many``
    answer for the live-spine save-guard keys; ``pending`` the deferred
    saves, consulted by :meth:`probe`/:meth:`reprobe` so same-pass
    cross-lane sharing works exactly as with eager per-key puts, and
    landed as one ``put_many`` by :meth:`flush`.  Hit/miss accounting
    happens per use (:meth:`~repro.store.MemoStore.record_probe`), so
    store counters match the per-key path even though the prefetch
    touched keys under skipped subtrees.
    """

    __slots__ = ("store", "snapshot", "present", "pending")

    def __init__(self, store, snapshot: dict, present: set) -> None:
        self.store = store
        self.snapshot = snapshot
        self.present = present
        self.pending: dict = {}

    def probe(self, key) -> Optional[dict]:
        value = self.snapshot.get(key)
        if value is None:
            entry = self.pending.get(key)
            if entry is not None:
                value = entry[0]
        self.store.record_probe(key, value is not None)
        return value

    def reprobe(self, key) -> Optional[dict]:
        # A stashed pre-check miss was absent from the snapshot; only a
        # same-pass save can have filled the key since.  Hit counts,
        # miss does not — mirroring MemoStore.reprobe.
        entry = self.pending.get(key)
        if entry is None:
            return None
        self.store.record_probe(key, True)
        return entry[0]

    def save(self, key, distribution, weight) -> None:
        if key in self.snapshot or key in self.present or key in self.pending:
            return  # presence-guarded, like the per-key _save
        self.pending[key] = (distribution, weight)

    def flush(self) -> None:
        if self.pending:
            self.store.put_many(
                (key, distribution, weight)
                for key, (distribution, weight) in self.pending.items()
            )


def _build_plan(lanes, store, labels) -> _ProbePlan:
    """Enumerate every lane's candidate keys and issue the bulk probes."""
    probe_keys: set = set()
    guard_keys: set = set()
    for lane in lanes:
        lane_probe, lane_guard = lane.keyer.plan_keys(
            labels, lane.live, lane.gate
        )
        probe_keys |= lane_probe
        guard_keys |= lane_guard
    with span(
        "store.bulk_prefetch",
        probe_keys=len(probe_keys),
        guard_keys=len(guard_keys),
    ):
        snapshot = store.get_many(probe_keys, record=False) if probe_keys else {}
        present = store.contains_many(guard_keys) if guard_keys else set()
    return _ProbePlan(store, snapshot, present)


def stored_postorder(
    p,
    lanes: Sequence[Lane],
    store: Optional[MemoStore],
    local: Optional[MemoStore] = None,
    stats=None,
    bulk: Optional[bool] = None,
) -> list:
    """Run all ``lanes`` through one shared post-order pass over ``p``.

    Returns the root entry of every lane (a distribution for unpinned
    lanes, a ``(blocked, pinned)`` pair for pinned ones).

    Args:
        p: the p-document.
        lanes: the evaluation lanes sharing this walk.
        store: the content-addressed memo store (``None`` = memo-less
            pass: neutral subtrees still short-circuit, everything else
            is combined).
        local: node-identity store for tokens the keyer marks local
            (anchored restrictions in node-keyed baseline mode); ``None``
            means such restrictions are simply not cached.
        stats: optional :class:`repro.prob.session.SessionStats`-shaped
            sink (``node_visits`` / ``memo_hits`` / ``memo_misses`` /
            ``anchored_hits`` / ``anchored_misses`` / ``neutral_skips`` /
            ``subtree_skips`` are updated; ``traversals`` is the
            caller's).
        bulk: probe-plan prefetch — ``None`` (default) follows
            ``store.prefers_bulk``, ``True``/``False`` force it on/off.
            Answers and store hit/miss/put accounting are identical
            either way; only the store-call shape changes (a handful of
            bulk calls instead of per-node round trips).
    """
    labels = p.label_index()
    use_memo = store is not None
    if use_memo and (
        bulk if bulk is not None else getattr(store, "prefers_bulk", False)
    ):
        plan = _build_plan(lanes, store, labels)
    else:
        plan = None
    count = len(lanes)
    # A stashed pre-check miss can only turn into a hit when ANOTHER lane
    # fills the identical key before the expanded visit — between the two
    # only the node's strict descendants run, and a proper subtree can
    # never share its ancestor's digest.  Single-lane passes therefore
    # skip the second-chance reprobe entirely (it would be one
    # guaranteed-miss ``contains`` probe per cold node).
    reprobe_possible = count > 1
    indices = range(count)
    entries: list[dict] = [{} for _ in indices]
    # Pre-check probe results (distribution, unit entry, or _MISS, per
    # lane index) stashed per node so the expanded visit never probes
    # twice.
    probes: dict[int, list] = {}
    stack = [(p.root, False)]
    while stack:
        node, expanded = stack.pop()
        node_id = node.node_id
        if not expanded:
            label_set = labels[node_id]
            neutral = 0
            probed: list = []
            skip = True
            for i in indices:
                lane = lanes[i]
                if node_id in lane.live:
                    skip = False
                    break
                if not (lane.table_labels & label_set):
                    probed.append(lane.unit_entry)
                    neutral += 1
                    continue
                if not use_memo:
                    skip = False
                    break
                key, is_local, anchored = lane.keyer.token(
                    node_id, label_set, lane.gate
                )
                if plan is not None and not is_local:
                    cached = plan.probe(key)
                else:
                    cached = _probe(key, is_local, store, local)
                if cached is None:
                    probed.append(_MISS)
                    skip = False
                    break
                if anchored and stats is not None:
                    stats.anchored_hits += 1
                probed.append((cached, {}) if lane.pinned else cached)
            if skip:
                for i in indices:
                    entries[i][node_id] = probed[i]
                if stats is not None:
                    stats.memo_hits += count - neutral
                    stats.neutral_skips += neutral
                    stats.subtree_skips += 1
                continue
            if probed:
                probes[node_id] = probed
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        if stats is not None:
            stats.node_visits += 1
        label_set = labels[node_id]
        children = node.children
        probed = probes.pop(node_id, ())
        for i in indices:
            lane = lanes[i]
            entry_map = entries[i]
            if node_id in lane.live:
                entry = lane.combine(node, entry_map)
                entry_map[node_id] = entry
                if use_memo:
                    key, is_local, _ = lane.keyer.token(
                        node_id, label_set, lane.gate
                    )
                    blocked = entry[0] if lane.pinned else entry
                    if plan is not None and not is_local:
                        plan.save(
                            key, blocked, lane.keyer.weight(node_id, blocked)
                        )
                    else:
                        _save(
                            key, is_local, store, local, blocked,
                            lane.keyer.weight(node_id, blocked),
                        )
            elif not (lane.table_labels & label_set):
                entry_map[node_id] = lane.unit_entry
                if stats is not None:
                    stats.neutral_skips += 1
            elif not use_memo:
                entry_map[node_id] = lane.combine(node, entry_map)
            else:
                key, is_local, anchored = lane.keyer.token(
                    node_id, label_set, lane.gate
                )
                stashed = probed[i] if i < len(probed) else None
                bulk_key = plan is not None and not is_local
                if stashed is None:
                    cached = (
                        plan.probe(key)
                        if bulk_key
                        else _probe(key, is_local, store, local)
                    )
                elif stashed is _MISS:
                    if not reprobe_possible:
                        cached = None
                    elif bulk_key:
                        cached = plan.reprobe(key)
                    else:
                        cached = _reprobe(key, is_local, store, local)
                else:
                    # Pre-check hit, stashed in entry form already.
                    entry_map[node_id] = stashed
                    if stats is not None:
                        stats.memo_hits += 1
                    continue
                if cached is not None:
                    entry_map[node_id] = (
                        (cached, {}) if lane.pinned else cached
                    )
                    if stats is not None:
                        stats.memo_hits += 1
                        if anchored:
                            stats.anchored_hits += 1
                else:
                    entry = lane.combine(node, entry_map)
                    entry_map[node_id] = entry
                    blocked = entry[0] if lane.pinned else entry
                    if bulk_key:
                        plan.save(
                            key, blocked, lane.keyer.weight(node_id, blocked)
                        )
                    else:
                        _save(
                            key, is_local, store, local, blocked,
                            lane.keyer.weight(node_id, blocked),
                        )
                    if stats is not None:
                        stats.memo_misses += 1
                        if anchored:
                            stats.anchored_misses += 1
            for child in children:
                entry_map.pop(child.node_id, None)
    if plan is not None:
        plan.flush()  # the pass's saves land as one put_many
    root_id = p.root.node_id
    return [entries[i].pop(root_id) for i in indices]
