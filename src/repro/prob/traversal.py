"""THE store-consulting post-order traversal.

Before this module existed, four hand-rolled copies of the same loop
lived in the engine and session layers —
``EvaluationEngine._single_pass_stored`` / ``_pinned_pass_stored`` and
``QuerySession._pinned_batch_pass`` / ``_unpinned_batch_pass`` — each
re-implementing the probe / neutral-skip / second-chance-reprobe /
contains-guarded-save choreography with slightly different memo
routing.  :func:`stored_postorder` is the one remaining skeleton; the
engine passes are single-lane instances of it and inherit the session's
reprobe semantics for free.

**Lanes.**  A :class:`Lane` is one query's view of a shared pass: its
goal-table label support (for the neutral short-circuit), its *live* set
(ancestors of candidate nodes, which must always be combined so pinned
maps can be assembled), its gate, its keyer, and its combine callback.
A batched session pass runs many lanes over one stack walk; a plain
engine pass runs one.

**Per node, per lane** the skeleton either

* short-circuits a *neutral* subtree (no goal-table label below ⇒ the
  distribution is the unit ``{∅: 1}``) without touching any memo,
* reuses a memoized blocked/unpinned distribution (a *hit*), or
* calls the lane's combine and saves the cacheable half of the result
  under the lane's token (a *miss*).

When *every* lane of the pass is neutral or hits at a subtree root
(pre-check probe), the subtree is not traversed at all.  A counted
pre-check miss is stashed as :data:`_MISS`; the expanded visit then uses
a *second-chance* probe — it can still hit when an earlier lane of the
same pass filled the identical key at this very node (same-pass
cross-lane sharing), but a repeated miss is answered from
:meth:`~repro.store.MemoStore.contains` and not re-counted.

**Memo routing.**  A lane token (:meth:`repro.store.keys.SubtreeKeyer.
token`) is either a canonical content-addressed store key — unanchored,
or anchored with canonical position encoding — or, when anchored keying
is disabled (node-keyed baseline), a node-identity key served by a
session-``local`` store.  Live-spine entries are recombined every pass
without a prior probe; equal keys mean equal distributions, so saves are
``contains``-guarded to skip the redundant re-store (a disk write per
node on :class:`~repro.store.SqliteStore`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..store import MemoStore, SubtreeKeyer

__all__ = ["Lane", "stored_postorder"]

#: Sentinel recording a counted pre-check probe miss (see module docs).
_MISS = object()

_EMPTY = frozenset()


class Lane:
    """One query's view of a shared store-consulting pass.

    Args:
        table_labels: the lane's goal-table label support; a subtree
            whose label set is disjoint from it is *neutral*.
        combine: ``(node, entries) -> entry`` — the lane's DP combine
            step over the child entries.
        unit: the lane's unit distribution ``{0: one}``.
        keyer: the lane's :class:`~repro.store.SubtreeKeyer` (``None``
            when the pass runs memo-less).
        live: node Ids whose subtree holds a candidate — always combined.
        gate: gate tag for the lane's cacheable (blocked / unpinned)
            distributions.
        pinned: entries are ``(blocked, pinned)`` pairs; only the blocked
            half is content-addressable (pinned maps name node Ids).
    """

    __slots__ = (
        "table_labels", "combine", "keyer", "live", "gate", "pinned",
        "unit_entry",
    )

    def __init__(
        self,
        table_labels: frozenset,
        combine: Callable,
        unit: dict,
        keyer: Optional[SubtreeKeyer] = None,
        live: frozenset = _EMPTY,
        gate: Optional[str] = None,
        pinned: bool = False,
    ) -> None:
        self.table_labels = table_labels
        self.combine = combine
        self.keyer = keyer
        self.live = live
        self.gate = gate
        self.pinned = pinned
        self.unit_entry = (unit, {}) if pinned else unit


def _probe(key, is_local: bool, store, local) -> Optional[dict]:
    target = local if is_local else store
    if target is None:
        return None
    return target.get(key)


def _reprobe(key, is_local: bool, store, local) -> Optional[dict]:
    """Second-chance probe: hit only via ``contains`` (no re-counted miss)."""
    target = local if is_local else store
    if target is None or not target.contains(key):
        return None
    return target.get(key)


def _save(key, is_local: bool, store, local, distribution, weight) -> None:
    target = local if is_local else store
    if target is not None and not target.contains(key):
        target.put(key, distribution, weight)


def stored_postorder(
    p,
    lanes: Sequence[Lane],
    store: Optional[MemoStore],
    local: Optional[MemoStore] = None,
    stats=None,
) -> list:
    """Run all ``lanes`` through one shared post-order pass over ``p``.

    Returns the root entry of every lane (a distribution for unpinned
    lanes, a ``(blocked, pinned)`` pair for pinned ones).

    Args:
        p: the p-document.
        lanes: the evaluation lanes sharing this walk.
        store: the content-addressed memo store (``None`` = memo-less
            pass: neutral subtrees still short-circuit, everything else
            is combined).
        local: node-identity store for tokens the keyer marks local
            (anchored restrictions in node-keyed baseline mode); ``None``
            means such restrictions are simply not cached.
        stats: optional :class:`repro.prob.session.SessionStats`-shaped
            sink (``node_visits`` / ``memo_hits`` / ``memo_misses`` /
            ``anchored_hits`` / ``anchored_misses`` / ``neutral_skips`` /
            ``subtree_skips`` are updated; ``traversals`` is the
            caller's).
    """
    labels = p.label_index()
    use_memo = store is not None
    count = len(lanes)
    # A stashed pre-check miss can only turn into a hit when ANOTHER lane
    # fills the identical key before the expanded visit — between the two
    # only the node's strict descendants run, and a proper subtree can
    # never share its ancestor's digest.  Single-lane passes therefore
    # skip the second-chance reprobe entirely (it would be one
    # guaranteed-miss ``contains`` probe per cold node).
    reprobe_possible = count > 1
    indices = range(count)
    entries: list[dict] = [{} for _ in indices]
    # Pre-check probe results (distribution, unit entry, or _MISS, per
    # lane index) stashed per node so the expanded visit never probes
    # twice.
    probes: dict[int, list] = {}
    stack = [(p.root, False)]
    while stack:
        node, expanded = stack.pop()
        node_id = node.node_id
        if not expanded:
            label_set = labels[node_id]
            neutral = 0
            probed: list = []
            skip = True
            for i in indices:
                lane = lanes[i]
                if node_id in lane.live:
                    skip = False
                    break
                if not (lane.table_labels & label_set):
                    probed.append(lane.unit_entry)
                    neutral += 1
                    continue
                if not use_memo:
                    skip = False
                    break
                key, is_local, anchored = lane.keyer.token(
                    node_id, label_set, lane.gate
                )
                cached = _probe(key, is_local, store, local)
                if cached is None:
                    probed.append(_MISS)
                    skip = False
                    break
                if anchored and stats is not None:
                    stats.anchored_hits += 1
                probed.append((cached, {}) if lane.pinned else cached)
            if skip:
                for i in indices:
                    entries[i][node_id] = probed[i]
                if stats is not None:
                    stats.memo_hits += count - neutral
                    stats.neutral_skips += neutral
                    stats.subtree_skips += 1
                continue
            if probed:
                probes[node_id] = probed
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        if stats is not None:
            stats.node_visits += 1
        label_set = labels[node_id]
        children = node.children
        probed = probes.pop(node_id, ())
        for i in indices:
            lane = lanes[i]
            entry_map = entries[i]
            if node_id in lane.live:
                entry = lane.combine(node, entry_map)
                entry_map[node_id] = entry
                if use_memo:
                    key, is_local, _ = lane.keyer.token(
                        node_id, label_set, lane.gate
                    )
                    blocked = entry[0] if lane.pinned else entry
                    _save(
                        key, is_local, store, local, blocked,
                        lane.keyer.weight(node_id, blocked),
                    )
            elif not (lane.table_labels & label_set):
                entry_map[node_id] = lane.unit_entry
                if stats is not None:
                    stats.neutral_skips += 1
            elif not use_memo:
                entry_map[node_id] = lane.combine(node, entry_map)
            else:
                key, is_local, anchored = lane.keyer.token(
                    node_id, label_set, lane.gate
                )
                stashed = probed[i] if i < len(probed) else None
                if stashed is None:
                    cached = _probe(key, is_local, store, local)
                elif stashed is _MISS:
                    cached = (
                        _reprobe(key, is_local, store, local)
                        if reprobe_possible
                        else None
                    )
                else:
                    # Pre-check hit, stashed in entry form already.
                    entry_map[node_id] = stashed
                    if stats is not None:
                        stats.memo_hits += 1
                    continue
                if cached is not None:
                    entry_map[node_id] = (
                        (cached, {}) if lane.pinned else cached
                    )
                    if stats is not None:
                        stats.memo_hits += 1
                        if anchored:
                            stats.anchored_hits += 1
                else:
                    entry = lane.combine(node, entry_map)
                    entry_map[node_id] = entry
                    blocked = entry[0] if lane.pinned else entry
                    _save(
                        key, is_local, store, local, blocked,
                        lane.keyer.weight(node_id, blocked),
                    )
                    if stats is not None:
                        stats.memo_misses += 1
                        if anchored:
                            stats.anchored_misses += 1
            for child in children:
                entry_map.pop(child.node_id, None)
    root_id = p.root.node_id
    return [entries[i].pop(root_id) for i in indices]
