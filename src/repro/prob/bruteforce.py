"""Reference semantics: query probabilities by possible-world enumeration.

Exponential in the number of distributional choices; used by the test suite
to validate the exact dynamic program of :mod:`repro.prob.evaluator` and by
the empirical c-independence checker.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..probability import ZERO
from ..pxml.pdocument import PDocument
from ..pxml.worlds import enumerate_worlds
from ..tp.embedding import evaluate, has_embedding
from ..tp.pattern import TreePattern
from .engine import AnchorsLike, normalize_anchors

__all__ = [
    "brute_force_boolean_probability",
    "brute_force_node_probability",
    "brute_force_query_answer",
    "brute_force_intersection_node_probability",
]


def brute_force_boolean_probability(
    p: PDocument, q: TreePattern, anchors: Optional[AnchorsLike] = None
) -> Fraction:
    """``Pr(q matches P)`` by summing over all possible worlds.

    ``anchors`` accepts the same key forms as the engine
    (:data:`repro.prob.engine.AnchorsLike`).
    """
    resolved = normalize_anchors([q], anchors)
    total = ZERO
    for world, probability in enumerate_worlds(p):
        if has_embedding(q, world, resolved):
            total += probability
    return total


def brute_force_node_probability(
    p: PDocument, q: TreePattern, node_id: int
) -> Fraction:
    """``Pr(n ∈ q(P))`` by possible-world enumeration."""
    return brute_force_boolean_probability(p, q, {id(q.out): node_id})


def brute_force_intersection_node_probability(
    p: PDocument, patterns: Sequence[TreePattern], node_id: int
) -> Fraction:
    """``Pr(n ∈ (q1 ∩ ... ∩ qk)(P))`` by possible-world enumeration."""
    total = ZERO
    for world, probability in enumerate_worlds(p):
        if all(
            has_embedding(q, world, {id(q.out): node_id}) for q in patterns
        ):
            total += probability
    return total


def brute_force_query_answer(p: PDocument, q: TreePattern) -> dict[int, Fraction]:
    """``q(P̂)`` by possible-world enumeration."""
    answer: dict[int, Fraction] = {}
    for world, probability in enumerate_worlds(p):
        for node_id in evaluate(q, world):
            answer[node_id] = answer.get(node_id, ZERO) + probability
    return answer
