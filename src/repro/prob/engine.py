"""Single-pass evaluation engine for TP / TP∩ queries over p-documents.

This module is the production probability path.  It keeps the goal-set
dynamic program documented in :mod:`repro.prob.evaluator` — for every
pattern node ``u`` a goal ``D(u)`` ("the pattern subtree at ``u`` embeds
with ``u`` mapped to *this* document node") and a goal ``A(u)`` ("... to
this node or a proper descendant") — but changes the machinery in three
ways:

**Interned goal-set bitmasks.**  Goal sets are machine integers instead of
``frozenset[int]``: goal ``i`` owns bit ``1 << i``, union-convolution is
``int | int``, the subset tests of the ordinary-node rewrite are
``mask & need == need``, and distribution keys hash as small ints.

**Pluggable numeric backends.**  All arithmetic goes through a
:class:`repro.probability.NumericBackend` — ``exact`` (:class:`Fraction`,
default, keeps the paper's worked examples bit-exact) or ``fast``
(``float``, for throughput).  Backend values only ever meet ``+``, ``-``,
``*`` and truthiness, so further backends (intervals, log-space) drop in.

**One DP traversal for *all* candidate anchors.**  The per-candidate
formulation (``Pr(n ∈ q(P̂))`` = one anchored bottom-up pass per candidate
``n``) multiplies the document-size factor by the answer size.  Instead,
:meth:`EvaluationEngine.answer` carries, for every p-document node ``x``,

* ``blocked(x)`` — the goal-set distribution of ``x``'s subtree where the
  output nodes' ``D`` goals are never granted (equivalently: the anchored
  run restricted to a subtree that does not contain the anchor), and
* ``pinned(x)[n]`` — for each candidate ``n`` in ``x``'s subtree, the
  distribution where output ``D`` goals are granted *only* at ``n``
  (exactly the distribution of the classic anchored run),

and combines them in a single post-order traversal: a node's ``pinned``
entry for ``n`` reuses the ``blocked`` distributions of every child
subtree not containing ``n`` (via prefix/suffix convolutions for ``ind``
and ordinary nodes, and an O(1)-per-candidate mixture update for ``mux``),
so each p-document node is visited exactly once no matter how many
candidates there are.  The instrumented :attr:`EvaluationEngine.visits`
counter asserts this in the test suite.

Complexity: ``O(|P̂| · s²)`` shared work plus ``O(depth(n) · s²)`` per
candidate ``n`` for the path recombinations — versus ``O(|answer| · |P̂| ·
s²)`` for the per-candidate loop, where ``s`` bounds the number of
distinct goal sets.

The engine is also the building block of the *workload session* layer
(:mod:`repro.prob.session`): :class:`QuerySession` drives one shared
post-order traversal for a whole batch of queries, calling back into
:meth:`EvaluationEngine.combine_pinned` / :meth:`combine_unpinned` per
query and per p-document node, and reuses per-subtree distributions
across queries through :meth:`goal_table_fingerprint`.
"""

from __future__ import annotations

from fractions import Fraction
from functools import partial
from typing import Mapping, Optional, Sequence, Union

from ..errors import PatternError
from ..obs.trace import span as trace_span
from ..probability import (
    BackendLike,
    NumericBackend,
    distribution_ops,
    get_backend,
)
from ..pxml.pdocument import PDocument, PNode, PNodeKind
from ..store import GATE_BLOCKED, GATE_UNPINNED, MemoStore, SubtreeKeyer
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern
from .traversal import Lane, stored_postorder

__all__ = [
    "EvaluationEngine",
    "AnchorsLike",
    "normalize_anchors",
    "boolean_probability",
    "node_probability",
    "conditional_node_probability",
    "query_answer",
    "intersection_answer",
    "intersection_node_probability",
]

#: A goal-set distribution: interned bitmask -> backend probability value.
Distribution = dict

AnchorKey = Union[PatternNode, tuple, int]
AnchorTarget = Union[int, "Sequence[int]"]
AnchorsLike = Mapping[AnchorKey, AnchorTarget]
"""Maps a pattern node to the document node Id(s) it must be mapped to.

A target is a single node Id, or an iterable of Ids when several document
nodes are admissible images (e.g. the occurrence copies of one original
node inside a view extension, read off its provenance table — the
engine-level form of the paper's ``Id(n)``-marker device, which Id-free
extensions realize without marker nodes).  An empty iterable pins the
node to nothing: the pattern cannot match.

Keys may be, in order of preference:

* the :class:`PatternNode` object itself (stable across the evaluation);
* a structural path as returned by :meth:`TreePattern.path_to` — valid
  when a single pattern is evaluated; anchors can then be persisted and
  re-applied to copies of the pattern;
* ``(pattern_index, path)`` — a pattern index paired with such a path,
  for multi-pattern (TP∩) evaluation, e.g. ``(1, q2.path_to(node))``;
* ``id(pattern_node)`` (a bare ``int``).  **Deprecated**: object ids are
  recycled by the interpreter and break on copied patterns; pass the
  ``PatternNode`` or its path instead.  Accepted for backward
  compatibility with the pre-engine ``Mapping[int, int]`` form.
"""

# Output-goal gates for the ordinary-node rewrite (identity-compared).
_GRANT_ALL = object()   # unpinned evaluation: out D-goals behave normally
_GRANT_NONE = object()  # blocked evaluation: out D-goals never granted


def normalize_anchors(
    patterns: Sequence[TreePattern], anchors: Optional[AnchorsLike]
) -> dict[int, frozenset]:
    """Normalize any accepted anchor form to ``{id(pattern_node): ids}``.

    See :data:`AnchorsLike` for the accepted key forms; each target
    becomes a ``frozenset`` of admissible document node Ids (a singleton
    for the common scalar form).

    Raises:
        PatternError: when a key does not resolve to a node of ``patterns``
            or a target is neither an Id nor an iterable of Ids.
    """
    if not anchors:
        return {}
    known = {id(u) for q in patterns for u in q.root.iter_subtree()}
    normalized: dict[int, frozenset] = {}
    for key, target in anchors.items():
        if isinstance(key, PatternNode):
            uid = id(key)
            if uid not in known:
                raise PatternError(
                    f"anchored node {key!r} is not part of any evaluated pattern"
                )
        elif isinstance(key, tuple):
            uid = id(_resolve_path_key(patterns, key))
        elif isinstance(key, int) and not isinstance(key, bool):
            if key not in known:
                raise PatternError(
                    f"legacy anchor key {key} is not the id() of any "
                    "evaluated pattern node"
                )
            uid = key
        else:
            raise PatternError(f"unsupported anchor key {key!r}")
        normalized[uid] = _normalize_anchor_target(key, target)
    return normalized


def _normalize_anchor_target(key, target) -> frozenset:
    if isinstance(target, int) and not isinstance(target, bool):
        return frozenset((target,))
    if isinstance(target, str):
        # A numeric string is the legacy scalar form (int(target) before
        # Id sets existed) — it must NOT fall into the iterable branch,
        # which would silently anchor to its digit characters.
        try:
            return frozenset((int(target),))
        except ValueError:
            raise PatternError(
                f"anchor target {target!r} for {key!r} is not a document "
                "node Id"
            ) from None
    try:
        members = frozenset(int(doc_id) for doc_id in target)
    except (TypeError, ValueError):
        raise PatternError(
            f"anchor target {target!r} for {key!r} is neither a document "
            "node Id nor an iterable of Ids"
        ) from None
    return members


def _resolve_path_key(
    patterns: Sequence[TreePattern], key: tuple
) -> PatternNode:
    """Resolve a tuple anchor key to a pattern node.

    The two accepted shapes are structurally distinct: ``(index, path)``
    has exactly one tuple element, a bare :meth:`TreePattern.path_to`
    result is all ints — so a bare path can never be misread as an
    indexed one.
    """
    if len(key) == 2 and isinstance(key[0], int) and isinstance(key[1], tuple):
        index, path = key
        try:
            pattern = patterns[index]
        except IndexError:
            raise PatternError(
                f"anchor key {key!r}: no pattern with index {index}"
            ) from None
        return pattern.node_at(path)
    if not all(isinstance(step, int) for step in key):
        raise PatternError(f"malformed anchor path {key!r}")
    if len(patterns) != 1:
        raise PatternError(
            f"bare anchor path {key!r} is ambiguous over {len(patterns)} "
            "patterns; use (pattern_index, path) or a PatternNode key"
        )
    return patterns[0].node_at(key)


class EvaluationEngine:
    """One joint evaluation of several patterns over a p-document.

    Args:
        p: the p-document.
        patterns: the tree patterns evaluated jointly (one for TP; several
            for TP∩).
        anchors: optional static anchors, see :data:`AnchorsLike`.
        backend: numeric backend name or instance (default ``"exact"``).
        store: optional :class:`repro.store.MemoStore` — subtree
            distributions are then consulted/filled under the canonical
            structural keys (:mod:`repro.store.api`), skipping whole
            subtrees whose evaluation a previous engine, session, or
            process already performed.  Anchored restrictions are keyed
            by canonical anchor *positions* (digest-sorted rank paths),
            so they share entries across isomorphic subtrees too.
        anchored_store: give anchored restrictions canonical store keys
            (default).  ``False`` restores the node-keyed behaviour where
            anchored evaluations bypass the store entirely — kept as the
            baseline for ``benchmarks/bench_anchored.py``.
        bulk_store: probe-plan prefetch for store-consulting passes —
            ``None`` (default) follows ``store.prefers_bulk`` (on for a
            live :class:`~repro.store.SqliteStore`), ``True``/``False``
            force it.  Answers and store accounting are identical either
            way; only the round-trip shape changes.

    Attributes:
        visits: cumulative count of p-document nodes combined by the DP —
            one increment per node per traversal.  :meth:`answer` performs
            exactly one traversal regardless of the candidate count, so
            after a fresh engine's ``answer()`` call this equals
            ``p.size()`` (store-less engines; a store additionally skips
            memoized or query-neutral subtrees).
    """

    def __init__(
        self,
        p: PDocument,
        patterns: Sequence[TreePattern],
        anchors: Optional[AnchorsLike] = None,
        backend: BackendLike = "exact",
        store: Optional[MemoStore] = None,
        anchored_store: bool = True,
        bulk_store: Optional[bool] = None,
    ) -> None:
        self.p = p
        self.patterns = list(patterns)
        self.backend: NumericBackend = get_backend(backend)
        self.anchors = normalize_anchors(self.patterns, anchors)
        self.store = store
        self.anchored_store = anchored_store
        self.bulk_store = bulk_store
        self.visits = 0
        self._zero = self.backend.zero
        self._one = self.backend.one
        self._convert = self.backend.convert
        # Goal numbering: index i gets D-bit 1 << 2i and A-bit 1 << (2i+1).
        self._goal_index: dict[int, int] = {}
        self._pattern_nodes: list[PatternNode] = []
        for pattern in self.patterns:
            for u in pattern.root.iter_subtree():
                self._goal_index[id(u)] = len(self._pattern_nodes)
                self._pattern_nodes.append(u)
        out_ids = {id(pattern.out) for pattern in self.patterns}
        a_mask = 0
        # label -> [(d_bit, a_bit, needed-below mask, anchor, is_out), ...]
        self._by_label: dict[str, list[tuple[int, int, int, Optional[int], bool]]] = {}
        for u in self._pattern_nodes:
            index = self._goal_index[id(u)]
            d_bit, a_bit = 1 << (2 * index), 1 << (2 * index + 1)
            a_mask |= a_bit
            need = 0
            for child in u.children:
                child_index = self._goal_index[id(child)]
                need |= (
                    1 << (2 * child_index)
                    if child.axis is Axis.CHILD
                    else 1 << (2 * child_index + 1)
                )
            self._by_label.setdefault(u.label, []).append(
                (d_bit, a_bit, need, self.anchors.get(id(u)), id(u) in out_ids)
            )
        self._a_mask = a_mask
        self._table_labels = frozenset(self._by_label)
        self._targets = 0
        for pattern in self.patterns:
            self._targets |= 1 << (2 * self._goal_index[id(pattern.root)])
        # Distribution kernels: the backend's ops object (ScalarOps for
        # plain scalar backends, vectorized kernels for "array").  The
        # hot per-entry kernels are re-exported as engine methods so the
        # combine steps below read as before.
        self._ops = distribution_ops(self.backend, 2 * len(self._pattern_nodes))
        self._unit = self._ops.unit
        self._convolve = self._ops.convolve
        self._mixture = self._ops.mixture

    # ------------------------------------------------------------------
    # Goal ids (kept for compatibility with the pre-engine evaluator)
    # ------------------------------------------------------------------
    def d_goal(self, u: PatternNode) -> int:
        return 2 * self._goal_index[id(u)]

    def a_goal(self, u: PatternNode) -> int:
        return 2 * self._goal_index[id(u)] + 1

    # ------------------------------------------------------------------
    # Batch-evaluation surface (used by repro.prob.session)
    # ------------------------------------------------------------------
    def pattern_target(self, pattern: TreePattern) -> int:
        """The root ``D``-goal bitmask of one evaluated pattern.

        A goal-set distribution's mass over this target (see :meth:`mass`)
        is ``Pr(pattern matches)`` — the per-query marginal when several
        queries are evaluated in one session pass.
        """
        index = self._goal_index.get(id(pattern.root))
        if index is None:
            raise PatternError(
                f"{pattern!r} is not one of this engine's evaluated patterns"
            )
        return 1 << (2 * index)

    def mass(self, distribution: Distribution, targets: Optional[int] = None):
        """Total probability of goal sets covering ``targets``.

        ``targets`` defaults to the joint root ``D``-goals of all evaluated
        patterns (the TP∩ semantics of :meth:`match_probability`).
        """
        if targets is None:
            targets = self._targets
        return self._ops.mass(distribution, targets)

    def goal_table_fingerprint(
        self, labels: frozenset
    ) -> tuple[tuple, bool, tuple]:
        """Canonical form of the goal table restricted to ``labels``.

        Two engines whose fingerprints agree on a p-subtree's label set
        compute bit-identical distributions on that subtree — provided
        their anchors pin corresponding nodes: every combine step depends
        only on the subtree's structure, on the table entries of labels
        occurring in it (``need`` masks referencing absent-label goals can
        never be satisfied below, and absent goals' bits never enter the
        masks, so the surrounding table is inert), and on which concrete
        subtree nodes the anchored entries admit.  This is the cross-query
        memo key of :class:`repro.prob.session.QuerySession`.

        Anchor *values* are abstracted out of the fingerprint: an anchored
        entry carries a slot index instead of its document node Ids, and
        the Ids are returned separately, in slot order.  The store layer
        re-binds the slots to canonical anchor positions
        (:meth:`repro.store.keys.SubtreeKeyer.store_key`), which is what
        makes anchored evaluations shareable across isomorphic subtrees.

        Returns ``(fingerprint, out_sensitive, anchor_targets)`` —
        ``out_sensitive`` is true when the restriction contains an
        output-node entry, i.e. when the blocked (``_GRANT_NONE``) and
        unpinned (``_GRANT_ALL``) evaluations of the subtree may differ;
        ``anchor_targets`` holds one sorted Id tuple per anchored entry
        of the restriction (empty for unanchored restrictions).
        """
        items = []
        targets: list[tuple] = []
        out_sensitive = False
        for label in sorted(self._table_labels & labels):
            entries = []
            for d_bit, a_bit, need, anchor, is_out in self._by_label[label]:
                if is_out:
                    out_sensitive = True
                if anchor is None:
                    slot = None
                else:
                    slot = len(targets)
                    targets.append(tuple(sorted(anchor)))
                entries.append((d_bit, a_bit, need, slot, is_out))
            items.append((label, tuple(entries)))
        return tuple(items), out_sensitive, tuple(targets)

    @property
    def table_labels(self) -> frozenset:
        """The labels carrying goal-table entries (fingerprint support)."""
        return self._table_labels

    def combine_pinned(
        self, node: PNode, entries: Mapping, candidate_set: frozenset
    ) -> tuple[Distribution, dict]:
        """One pinned-DP combine step: ``(blocked, pinned)`` for ``node``.

        ``entries`` maps each child's ``node_id`` to its own
        ``(blocked, pinned)`` pair.  Counts one node visit.
        """
        self.visits += 1
        if node.kind is PNodeKind.ORDINARY:
            return self._combine_ordinary_pinned(node, entries, candidate_set)
        if node.kind is PNodeKind.MUX:
            return self._combine_mux_pinned(node, entries)
        return self._combine_ind_pinned(node, entries)

    def combine_unpinned(self, node: PNode, entries: Mapping) -> Distribution:
        """One unpinned-DP combine step (anchored / Boolean evaluation).

        ``entries`` maps each child's ``node_id`` to its distribution.
        Counts one node visit.
        """
        self.visits += 1
        return self._combine_single(node, entries)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def match_probability(self):
        """``Pr(every pattern has an embedding respecting the anchors)``.

        One unpinned DP traversal; returns a backend value.
        """
        sp = trace_span(
            "engine.match",
            patterns=len(self.patterns),
            backend=self.backend.name,
            anchored=bool(self.anchors),
        )
        if sp:
            visits_before = self.visits
        with sp:
            mass = self.mass(self._single_pass())
        if sp:
            sp.set("node_visits", self.visits - visits_before)
        return mass

    def candidate_ids(self) -> set[int]:
        """Node Ids that *some* world may select for every pattern jointly.

        Read off the maximal world, a superset of every possible world.
        """
        world = self.p.max_world()
        sets = [evaluate_deterministic(q, world) for q in self.patterns]
        return set.intersection(*sets) if sets else set()

    def answer(
        self, candidates: Optional[Sequence[int]] = None
    ) -> dict:
        """``(q1 ∩ ... ∩ qk)(P̂)`` as ``{node_id: probability}``.

        Every output node is pinned to each candidate in turn — but all
        candidates are processed by **one** bottom-up traversal of the
        p-document (see the module docstring), so the document-size factor
        of the complexity does not multiply with the answer size.

        Args:
            candidates: optional candidate node Ids; defaults to
                :meth:`candidate_ids`.
        """
        if candidates is None:
            candidates = self.candidate_ids()
        candidate_set = frozenset(candidates)
        if not candidate_set:
            return {}
        sp = trace_span(
            "engine.answer",
            patterns=len(self.patterns),
            backend=self.backend.name,
            candidates=len(candidate_set),
        )
        if sp:
            visits_before = self.visits
        with sp:
            zero = self._zero
            _, pinned = self._pinned_pass(candidate_set)
            answer: dict = {}
            for node_id in sorted(candidate_set):
                distribution = pinned.get(node_id)
                if distribution is None:
                    continue
                probability = self.mass(distribution)
                if probability > zero:
                    answer[node_id] = probability
        if sp:
            sp.set("node_visits", self.visits - visits_before)
            sp.set("answers", len(answer))
        return answer

    # ------------------------------------------------------------------
    # Shared distribution machinery
    # ------------------------------------------------------------------
    # Distributions are immutable by convention: every kernel builds a
    # fresh distribution or returns an existing one unmodified, so they
    # may be shared freely between memo entries (including the cross-query
    # subtree memo of repro.prob.session).  The per-entry kernels
    # (_unit / _convolve / _mixture) are bound from the backend's ops
    # object in __init__; the gate translation to the ops layer lives
    # here.
    def _rewrite(self, node: PNode, distribution: Distribution, gate) -> Distribution:
        """Apply ``node``'s goal rewrite under ``gate`` (see _GRANT_*)."""
        return self._ops.rewrite(
            distribution,
            self._by_label.get(node.label),
            node.node_id,
            gate is not _GRANT_NONE,
            self._a_mask,
        )

    # ------------------------------------------------------------------
    # Unpinned single-distribution DP (anchored / Boolean evaluation)
    # ------------------------------------------------------------------
    def _single_pass(self) -> Distribution:
        if self.store is not None:
            return self._single_pass_stored()
        memo: dict[int, Distribution] = {}
        stack: list[tuple[PNode, bool]] = [(self.p.root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            memo[node.node_id] = self.combine_unpinned(node, memo)
            for child in node.children:
                del memo[child.node_id]
        return memo[self.p.root.node_id]

    def _single_pass_stored(self) -> Distribution:
        """Unpinned DP as a single lane of the shared stored traversal.

        Neutral subtrees (no goal-table label below) short-circuit to the
        unit distribution; subtrees whose canonical key is cached are not
        traversed at all.  With ``anchored_store`` (the default) anchored
        restrictions probe the store under canonical anchor-position keys;
        disabled, they are simply recomputed (the engine keeps no local
        memo).
        """
        lane = Lane(
            table_labels=self._table_labels,
            combine=self.combine_unpinned,
            unit=self._unit(),
            keyer=SubtreeKeyer(
                self.p, self, self.backend, anchored=self.anchored_store
            ),
            gate=GATE_UNPINNED,
        )
        return stored_postorder(
            self.p, [lane], self.store, bulk=self.bulk_store
        )[0]

    def _combine_single(self, node: PNode, memo: dict) -> Distribution:
        return self._combine_single_gated(node, memo, _GRANT_ALL)

    def _combine_single_gated(
        self, node: PNode, memo: dict, gate
    ) -> Distribution:
        """One single-distribution combine step under an explicit gate.

        ``_GRANT_ALL`` is the unpinned evaluation; ``_GRANT_NONE`` yields
        the *blocked* distribution (what :meth:`combine_pinned` computes
        as the first half of its pair) — the stacked session pass
        (:mod:`repro.prob.stacked`) uses the latter for lanes that hold
        no candidate below a node.
        """
        if node.kind is PNodeKind.ORDINARY:
            combined = self._unit()
            for child in node.children:
                combined = self._convolve(combined, memo[child.node_id])
            return self._rewrite(node, combined, gate)
        assert node.probabilities is not None
        if node.kind is PNodeKind.MUX:
            return self._mux_mixture(
                node, [memo[child.node_id] for child in node.children]
            )
        combined = self._unit()  # ind
        for child in node.children:
            combined = self._convolve(
                combined,
                self._mixture(
                    self._convert(node.probabilities[child.node_id]),
                    memo[child.node_id],
                ),
            )
        return combined

    def _mux_mixture(
        self, node: PNode, child_distributions: Sequence[Distribution]
    ) -> Distribution:
        assert node.probabilities is not None
        return self._ops.mux_mixture(
            (self._convert(node.probabilities[child.node_id]), distribution)
            for child, distribution in zip(node.children, child_distributions)
        )

    # ------------------------------------------------------------------
    # Single-pass multi-candidate DP
    # ------------------------------------------------------------------
    def _pinned_pass(
        self, candidate_set: frozenset
    ) -> tuple[Distribution, dict]:
        """One post-order traversal computing ``(blocked, pinned)`` per node.

        Returns the root's pair; ``pinned`` maps each candidate Id to the
        goal-set distribution of the run anchored at that candidate.
        """
        if self.store is not None:
            return self._pinned_pass_stored(candidate_set)
        memo: dict[int, tuple[Distribution, dict]] = {}
        stack: list[tuple[PNode, bool]] = [(self.p.root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            memo[node.node_id] = self.combine_pinned(node, memo, candidate_set)
            for child in node.children:
                del memo[child.node_id]
        return memo[self.p.root.node_id]

    def _pinned_pass_stored(
        self, candidate_set: frozenset
    ) -> tuple[Distribution, dict]:
        """Pinned DP as a single lane of the shared stored traversal.

        Only *blocked* distributions are content-addressable (pinned maps
        name candidate node Ids — document identity); subtrees holding no
        candidate are skipped on a store hit, candidate-bearing subtrees
        are combined normally and contribute their blocked halves.
        """
        lane = Lane(
            table_labels=self._table_labels,
            combine=partial(self.combine_pinned, candidate_set=candidate_set),
            unit=self._unit(),
            keyer=SubtreeKeyer(
                self.p, self, self.backend, anchored=self.anchored_store
            ),
            live=self.p.ancestral_closure(candidate_set),
            gate=GATE_BLOCKED,
            pinned=True,
        )
        return stored_postorder(
            self.p, [lane], self.store, bulk=self.bulk_store
        )[0]

    def _combine_ordinary_pinned(
        self, node: PNode, memo: dict, candidate_set: frozenset
    ) -> tuple[Distribution, dict]:
        children = node.children
        blocked_children = [memo[child.node_id][0] for child in children]
        # pre[i] = convolution of the first i children's blocked distributions
        pre = [self._unit()]
        for distribution in blocked_children:
            pre.append(self._convolve(pre[-1], distribution))
        combined_all = pre[-1]
        blocked = self._rewrite(node, combined_all, _GRANT_NONE)
        pinned: dict = {}
        if node.node_id in candidate_set:
            # Pinning at the node itself: out goals may be granted here and
            # nowhere below — which is exactly the children-blocked run.
            pinned[node.node_id] = self._rewrite(node, combined_all, _GRANT_ALL)
        if any(memo[child.node_id][1] for child in children):
            count = len(children)
            # suf[i] = convolution of children i.. 's blocked distributions
            suf = [self._unit()] * (count + 1)
            for i in range(count - 1, -1, -1):
                suf[i] = self._convolve(blocked_children[i], suf[i + 1])
            for j, child in enumerate(children):
                child_pinned = memo[child.node_id][1]
                if not child_pinned:
                    continue
                others = self._convolve(pre[j], suf[j + 1])
                for candidate, distribution in child_pinned.items():
                    below = self._convolve(others, distribution)
                    # The pin lives strictly below, so out goals are not
                    # granted at this node: the blocked gate is exact.
                    pinned[candidate] = self._rewrite(node, below, _GRANT_NONE)
        return blocked, pinned

    def _combine_mux_pinned(
        self, node: PNode, memo: dict
    ) -> tuple[Distribution, dict]:
        assert node.probabilities is not None
        ops = self._ops
        blocked = self._mux_mixture(
            node, [memo[child.node_id][0] for child in node.children]
        )
        pinned: dict = {}
        for child in node.children:
            child_pinned = memo[child.node_id][1]
            if not child_pinned:
                continue
            p_child = self._convert(node.probabilities[child.node_id])
            # rest = blocked − p_child · blocked(child): the mixture of every
            # *other* choice, shared by all candidates below this child.
            rest = ops.scale_subtract(blocked, p_child, memo[child.node_id][0])
            for candidate, distribution in child_pinned.items():
                pinned[candidate] = ops.scale_accumulate(
                    rest, p_child, distribution
                )
        return blocked, pinned

    def _combine_ind_pinned(
        self, node: PNode, memo: dict
    ) -> tuple[Distribution, dict]:
        assert node.probabilities is not None
        children = node.children
        edge_probabilities = [
            self._convert(node.probabilities[child.node_id]) for child in children
        ]
        mixtures = [
            self._mixture(p_child, memo[child.node_id][0])
            for p_child, child in zip(edge_probabilities, children)
        ]
        pre = [self._unit()]
        for mixture in mixtures:
            pre.append(self._convolve(pre[-1], mixture))
        blocked = pre[-1]
        pinned: dict = {}
        if any(memo[child.node_id][1] for child in children):
            count = len(children)
            suf = [self._unit()] * (count + 1)
            for i in range(count - 1, -1, -1):
                suf[i] = self._convolve(mixtures[i], suf[i + 1])
            for j, child in enumerate(children):
                child_pinned = memo[child.node_id][1]
                if not child_pinned:
                    continue
                others = self._convolve(pre[j], suf[j + 1])
                p_child = edge_probabilities[j]
                for candidate, distribution in child_pinned.items():
                    pinned[candidate] = self._convolve(
                        others, self._mixture(p_child, distribution)
                    )
        return blocked, pinned


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def boolean_probability(
    p: PDocument,
    q: TreePattern,
    anchors: Optional[AnchorsLike] = None,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
):
    """``Pr(q matches P)`` — the Boolean-query probability."""
    return EvaluationEngine(p, [q], anchors, backend, store).match_probability()


def node_probability(
    p: PDocument,
    q: TreePattern,
    node_id: int,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
):
    """``Pr(n ∈ q(P))`` for a specific ordinary node ``n``.

    One full anchored DP per call; prefer :func:`query_answer` (or
    :meth:`EvaluationEngine.answer`) when several nodes are needed.
    """
    return EvaluationEngine(
        p, [q], {q.out: node_id}, backend, store
    ).match_probability()


def conditional_node_probability(
    p: PDocument,
    q: TreePattern,
    node_id: int,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
):
    """``Pr(n ∈ q(P) | n ∈ P)`` (§5.2)."""
    resolved = get_backend(backend)
    appearance = resolved.convert(p.appearance_probability(node_id))
    if not appearance:
        return resolved.zero
    return node_probability(p, q, node_id, backend, store) / appearance


def query_answer(
    p: PDocument,
    q: TreePattern,
    backend: BackendLike = "exact",
    stats: Optional[dict] = None,
    store: Optional[MemoStore] = None,
    profile: bool = False,
):
    """``q(P̂)``: node Id ↦ probability, for all nodes with probability > 0.

    Candidates are read off the maximal world (a superset of every world);
    their probabilities are then all computed by **one** DP traversal of
    the p-document.

    Args:
        stats: optional instrumentation sink; receives ``node_visits``
            (DP node visits — equals ``p.size()`` without a store) and
            ``candidates``.
        store: optional structural memo store consulted/filled by the
            traversal (see :class:`EvaluationEngine`).
        profile: trace the call (enabling tracing for its duration if it
            was off) and return ``(answer, profile)`` where ``profile``
            is the query's :class:`repro.obs.CostProfile`.
    """
    if profile:
        from ..obs.profile import build_profiles
        from ..obs.trace import capture as trace_capture

        with trace_capture() as captured:
            answer = query_answer(p, q, backend, stats, store)
        return answer, build_profiles(captured.spans, [q.xpath()])[0]
    engine = EvaluationEngine(p, [q], backend=backend, store=store)
    candidates = engine.candidate_ids()
    answer = engine.answer(candidates)
    if stats is not None:
        stats["node_visits"] = engine.visits
        stats["candidates"] = len(candidates)
    return answer


def intersection_node_probability(
    p: PDocument,
    patterns: Sequence[TreePattern],
    node_id: int,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
):
    """``Pr(n ∈ (q1 ∩ ... ∩ qk)(P))`` — joint, correlation-aware."""
    anchors = {q.out: node_id for q in patterns}
    return EvaluationEngine(
        p, patterns, anchors, backend, store
    ).match_probability()


def intersection_answer(
    p: PDocument,
    patterns: Sequence[TreePattern],
    backend: BackendLike = "exact",
    stats: Optional[dict] = None,
    store: Optional[MemoStore] = None,
) -> dict:
    """``(q1 ∩ ... ∩ qk)(P̂)`` as node Id ↦ probability — single DP pass."""
    engine = EvaluationEngine(p, patterns, backend=backend, store=store)
    candidates = engine.candidate_ids()
    answer = engine.answer(candidates)
    if stats is not None:
        stats["node_visits"] = engine.visits
        stats["candidates"] = len(candidates)
    return answer
