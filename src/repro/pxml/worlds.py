"""Materialization of the px-space ``⟦P̂⟧`` (paper §2).

``enumerate_worlds`` runs the paper's random process exhaustively: for every
``mux`` node, one child or none is selected; for every ``ind`` node, a subset
of children.  The ordinary children of deleted distributional nodes attach to
their closest ordinary ancestor.  Several runs may produce the same document
(e.g. choices under discarded subtrees); probabilities of such runs are
summed, as required by the definition of ``Pr(P)``.

Exponential in the number of distributional choices — this is the reference
semantics used by tests and by the brute-force evaluator, not the production
evaluation path (see :mod:`repro.prob.evaluator`).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterable

from ..errors import PDocumentError
from ..probability import ONE, ZERO
from ..xml.document import DocNode, Document
from .pdocument import PDocument, PNode, PNodeKind

__all__ = ["enumerate_worlds", "sample_world", "world_probability"]

_MAX_WORLDS = 2_000_000


def enumerate_worlds(p: PDocument) -> list[tuple[Document, Fraction]]:
    """All possible worlds of ``P̂`` with their exact probabilities.

    Worlds are grouped per the paper: two runs yielding the same document
    (same surviving ordinary node Ids) contribute to a single entry.  The
    probabilities sum to 1.
    """
    options = _expand_ordinary(p.root)
    merged: dict[tuple, tuple[Document, Fraction]] = {}
    for tree, probability in options:
        world = Document(tree)
        key = world.canonical_key()
        if key in merged:
            merged[key] = (merged[key][0], merged[key][1] + probability)
        else:
            merged[key] = (world, probability)
    return list(merged.values())


def _expand_ordinary(n: PNode) -> list[tuple[DocNode, Fraction]]:
    """All (subtree, probability) alternatives below an ordinary node."""
    assert n.label is not None
    alternatives: list[tuple[list[DocNode], Fraction]] = [([], ONE)]
    for child in n.children:
        child_options = _contributions(child)
        alternatives = [
            (trees + extra, probability * p_extra)
            for trees, probability in alternatives
            for extra, p_extra in child_options
        ]
        if len(alternatives) > _MAX_WORLDS:
            raise PDocumentError(
                "too many possible worlds to enumerate; use the exact evaluator"
            )
    results: list[tuple[DocNode, Fraction]] = []
    for trees, probability in alternatives:
        root = DocNode(n.node_id, n.label)
        for tree in trees:
            root.add_child(tree)
        results.append((root, probability))
    return results


def _contributions(n: PNode) -> list[tuple[list[DocNode], Fraction]]:
    """The forests an arbitrary node contributes to its ordinary ancestor."""
    if n.is_ordinary:
        return [([tree], probability) for tree, probability in _expand_ordinary(n)]
    assert n.probabilities is not None
    if n.kind is PNodeKind.MUX:
        deficit = ONE - sum(n.probabilities.values())
        options: list[tuple[list[DocNode], Fraction]] = []
        if deficit > ZERO:
            options.append(([], deficit))
        for child in n.children:
            p_child = n.probabilities[child.node_id]
            if p_child == ZERO:
                continue
            for trees, probability in _contributions(child):
                options.append((trees, p_child * probability))
        return options
    # ind: independent subset choice = convolution over children.
    options = [([], ONE)]
    for child in n.children:
        p_child = n.probabilities[child.node_id]
        branch: list[tuple[list[DocNode], Fraction]] = []
        if p_child < ONE:
            branch.append(([], ONE - p_child))
        if p_child > ZERO:
            branch.extend(
                (trees, p_child * probability)
                for trees, probability in _contributions(child)
            )
        options = [
            (trees + extra, probability * p_extra)
            for trees, probability in options
            for extra, p_extra in branch
        ]
    return options


def world_probability(p: PDocument, world: Document) -> Fraction:
    """``Pr(P)`` for a given world (0 if the document is not a world of ``P̂``)."""
    for candidate, probability in enumerate_worlds(p):
        if candidate == world:
            return probability
    return ZERO


def sample_world(p: PDocument, rng: random.Random) -> Document:
    """Draw one random document according to the px-space semantics."""

    def contributions(n: PNode) -> Iterable[DocNode]:
        if n.is_ordinary:
            return [expand(n)]
        assert n.probabilities is not None
        if n.kind is PNodeKind.MUX:
            roll = Fraction(rng.random()).limit_denominator(10**9)
            cumulative = ZERO
            for child in n.children:
                cumulative += n.probabilities[child.node_id]
                if roll < cumulative:
                    return contributions(child)
            return []
        chosen: list[DocNode] = []
        for child in n.children:
            if rng.random() < float(n.probabilities[child.node_id]):
                chosen.extend(contributions(child))
        return chosen

    def expand(n: PNode) -> DocNode:
        assert n.label is not None
        doc_node = DocNode(n.node_id, n.label)
        for child in n.children:
            for tree in contributions(child):
                doc_node.add_child(tree)
        return doc_node

    return Document(expand(p.root))
