"""Probabilistic XML substrate: p-documents PrXML{mux,ind} (paper §2, Def. 1)."""

from .pdocument import PNode, PNodeKind, PDocument
from .builder import ordinary, mux, ind, det, pdoc
from .worlds import enumerate_worlds, sample_world, world_probability
from .serialize import pdocument_to_text

__all__ = [
    "PNode",
    "PNodeKind",
    "PDocument",
    "ordinary",
    "mux",
    "ind",
    "det",
    "pdoc",
    "enumerate_worlds",
    "sample_world",
    "world_probability",
    "pdocument_to_text",
]
