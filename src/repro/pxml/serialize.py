"""Textual (de)serialization of p-documents.

The indented format mirrors the figures of the paper and round-trips
exactly; it is what the command-line interface reads and writes::

    [1] IT-personnel
      [11] mux
        (3/4) [2] person
        (1/4) [13] John
"""

from __future__ import annotations

from ..errors import PDocumentError
from ..probability import as_probability
from .pdocument import PDocument, PNode, PNodeKind

__all__ = ["pdocument_to_text", "pdocument_from_text"]

_INDENT = "  "


def pdocument_to_text(p: PDocument) -> str:
    """Render a p-document in an indented format with edge probabilities::

        [1] IT-personnel
          [11] mux
            (0.75) [2] person
            (0.25) [13] John
    """
    lines: list[str] = []

    def emit(n: PNode, depth: int, probability) -> None:
        prefix = f"({probability}) " if probability is not None else ""
        title = n.label if n.is_ordinary else n.kind.value
        lines.append(f"{_INDENT * depth}{prefix}[{n.node_id}] {title}")
        def child_key(c: PNode):
            return (c.label or c.kind.value, c.node_id)
        for child in sorted(n.children, key=child_key):
            p_edge = (
                n.probabilities[child.node_id]
                if n.probabilities is not None
                else None
            )
            emit(child, depth + 1, p_edge)

    emit(p.root, 0, None)
    return "\n".join(lines) + "\n"


def pdocument_from_text(text: str) -> PDocument:
    """Parse the indented p-document format back into a :class:`PDocument`.

    Lines look like ``(probability) [id] title`` where the probability
    parenthesis is present exactly on children of distributional nodes and
    ``title`` is a label, ``mux`` or ``ind``.
    """
    root: PNode | None = None
    stack: list[tuple[int, PNode]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        stripped = raw.lstrip(" ")
        pad = len(raw) - len(stripped)
        if pad % len(_INDENT) != 0:
            raise PDocumentError(f"line {line_no}: bad indentation")
        depth = pad // len(_INDENT)
        probability = None
        if stripped.startswith("("):
            close = stripped.index(")")
            probability = as_probability(stripped[1:close])
            stripped = stripped[close + 1 :].lstrip()
        if not stripped.startswith("["):
            raise PDocumentError(f"line {line_no}: expected '[id] title'")
        close = stripped.index("]")
        node_id = int(stripped[1:close])
        title = stripped[close + 1 :].strip()
        if title == "mux":
            built = PNode(node_id, PNodeKind.MUX)
        elif title == "ind":
            built = PNode(node_id, PNodeKind.IND)
        else:
            built = PNode(node_id, PNodeKind.ORDINARY, title)
        if depth == 0:
            if root is not None:
                raise PDocumentError(f"line {line_no}: multiple roots")
            if probability is not None:
                raise PDocumentError(f"line {line_no}: the root has no probability")
            root = built
            stack = [(0, built)]
            continue
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if not stack or stack[-1][0] != depth - 1:
            raise PDocumentError(f"line {line_no}: orphan node at depth {depth}")
        parent = stack[-1][1]
        if parent.is_distributional and probability is None:
            raise PDocumentError(
                f"line {line_no}: children of {parent.kind.value} need a probability"
            )
        if parent.is_ordinary and probability is not None:
            raise PDocumentError(
                f"line {line_no}: children of ordinary nodes carry no probability"
            )
        parent.add_child(built, probability)
        stack.append((depth, built))
    if root is None:
        raise PDocumentError("empty p-document text")
    return PDocument(root)
