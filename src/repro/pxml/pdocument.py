"""p-Documents: compact representations of px-spaces (paper §2, Definition 1).

A p-document is an unranked, unordered tree with *ordinary* nodes (labeled,
as in documents) and *distributional* nodes of kinds ``mux`` (mutually
exclusive choice of at most one child) and ``ind`` (independent choice of any
subset of children).  The root and all leaves must be ordinary.  ``det``
nodes of [2] are representable as ``ind`` nodes whose children all carry
probability 1 (see :func:`repro.pxml.builder.det`).

The semantics ``⟦P̂⟧`` — a finite probability space of documents — is
materialized by :mod:`repro.pxml.worlds`.
"""

from __future__ import annotations

import enum
import warnings
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Union

from ..errors import PDocumentError
from ..obs.registry import get_registry
from ..obs.trace import span as trace_span
from ..probability import ONE, ZERO
from ..store.digest import (
    compute_identity_index,
    compute_index,
    compute_positions,
    identity_spine,
    recompute_spine,
)
from ..xml.document import DocNode, Document

__all__ = ["PNodeKind", "PNode", "PDocument"]

#: Cap on the per-document dirty log; a session further behind than this
#: many mutations falls back to a full cache reset anyway.
_DIRTY_LOG_LIMIT = 256

#: Registry counters for derived-index maintenance: O(depth) spine
#: splices after node-scoped mutations vs full O(n) digest rebuilds.
_SPINE_SPLICES = get_registry().counter(
    "repro_pdocument_spine_splices_total",
    help="node-scoped mutations absorbed by O(depth) index splices",
)
_DIGEST_REBUILDS = get_registry().counter(
    "repro_pdocument_digest_rebuilds_total",
    help="full structural-index recomputations (cold or invalidated)",
)


class PNodeKind(enum.Enum):
    ORDINARY = "ordinary"
    MUX = "mux"
    IND = "ind"


class PNode:
    """A node of a p-document.

    Attributes:
        node_id: unique integer Id.
        kind: ordinary / mux / ind.
        label: the label for ordinary nodes (``None`` for distributional).
        children: child nodes.
        probabilities: for distributional nodes, maps a child's ``node_id``
            to the probability ``Pr_n(child)``; ``None`` for ordinary nodes.
        parent: parent node or ``None`` for the root.
    """

    __slots__ = (
        "node_id", "kind", "label", "children", "probabilities", "parent",
        "_digest",
    )

    def __init__(
        self,
        node_id: int,
        kind: PNodeKind,
        label: Optional[str] = None,
    ) -> None:
        self.node_id = int(node_id)
        self.kind = kind
        self.label = label
        self.children: list[PNode] = []
        self.probabilities: Optional[dict[int, Fraction]] = (
            None if kind is PNodeKind.ORDINARY else {}
        )
        self.parent: Optional[PNode] = None
        #: Cached ``(mutation_epoch, structural digest, subtree size)``,
        #: maintained by :meth:`PDocument.structural_index`.
        self._digest: Optional[tuple] = None

    @property
    def is_ordinary(self) -> bool:
        return self.kind is PNodeKind.ORDINARY

    @property
    def is_distributional(self) -> bool:
        return not self.is_ordinary

    def add_child(self, child: "PNode", probability: Optional[Fraction] = None) -> "PNode":
        """Attach ``child``; distributional parents require a probability."""
        if self.is_distributional:
            if probability is None:
                raise PDocumentError(
                    f"child of {self.kind.value} node {self.node_id} needs a probability"
                )
            assert self.probabilities is not None
            self.probabilities[child.node_id] = probability
        elif probability is not None:
            raise PDocumentError(
                f"child of ordinary node {self.node_id} must not carry a probability"
            )
        child.parent = self
        self.children.append(child)
        return child

    def child_probability(self, child: "PNode") -> Fraction:
        if self.probabilities is None:
            raise PDocumentError(f"node {self.node_id} is not distributional")
        return self.probabilities[child.node_id]

    def iter_subtree(self) -> Iterator["PNode"]:
        stack = [self]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children)

    def __repr__(self) -> str:
        if self.is_ordinary:
            return f"PNode(id={self.node_id}, label={self.label!r})"
        return f"PNode(id={self.node_id}, kind={self.kind.value})"


class PDocument:
    """A validated p-document (Definition 1)."""

    def __init__(self, root: PNode) -> None:
        self.root = root
        self._index: dict[int, PNode] = {}
        self._mutation_epoch = 0
        # Node ``_digest`` stamps are valid iff their epoch tag is >= this
        # floor: whole-document invalidation raises the floor, spine-only
        # splices restamp just the touched nodes and leave it alone.
        self._digest_floor = 0
        # Recent node-scoped mutations as (epoch, changed_ids,
        # world_changed) triples; epochs below _dirty_floor are unknown
        # (whole-document invalidation, or log overflow).
        self._dirty: list[tuple] = []
        self._dirty_floor = 0
        # Epoch-tagged derived indexes, built lazily (see structural_index /
        # label_index / identity_digest).
        self._structural_index: Optional[tuple] = None
        self._label_index: Optional[tuple] = None
        self._identity_index: Optional[tuple] = None
        self._anchor_index: Optional[tuple] = None
        for n in root.iter_subtree():
            if n.node_id in self._index:
                raise PDocumentError(f"duplicate node Id {n.node_id}")
            self._index[n.node_id] = n
        self._validate()

    def _validate(self) -> None:
        if not self.root.is_ordinary:
            raise PDocumentError("the root must be an ordinary (L-labeled) node")
        for n in self.nodes():
            if n.is_ordinary:
                if n.label is None:
                    raise PDocumentError(f"ordinary node {n.node_id} lacks a label")
                continue
            if not n.children:
                raise PDocumentError(
                    f"distributional node {n.node_id} is a leaf; leaves must be ordinary"
                )
            assert n.probabilities is not None
            total = ZERO
            for child in n.children:
                p = n.probabilities[child.node_id]
                if p < ZERO or p > ONE:
                    raise PDocumentError(
                        f"probability {p} of child {child.node_id} out of [0, 1]"
                    )
                total += p
            if n.kind is PNodeKind.MUX and total > ONE:
                raise PDocumentError(
                    f"mux node {n.node_id}: child probabilities sum to {total} > 1"
                )

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of structural mutations.

        Session-level caches (:class:`repro.prob.session.QuerySession`)
        snapshot this value, consult :meth:`dirty_since` when it changes,
        and either splice (node-scoped mutations) or drop their
        epoch-tagged state.  Code that mutates an already-constructed
        p-document in place (re-attaching nodes, changing probabilities,
        relabeling) must call :meth:`mark_mutated` afterwards with the
        mutated node.
        """
        return self._mutation_epoch

    def mark_mutated(self, node: Union["PNode", int, None] = None) -> None:
        """Record an in-place mutation at ``node`` (node or node Id).

        The spine from ``node`` to the root is the only region whose
        cached derived state can have changed, so every populated index
        (structural digests / sizes, label sets, anchor positions, the
        identity index) is *spliced* in place in O(depth · fan-out)
        instead of discarded — see :func:`repro.store.digest.
        recompute_spine`.  The mutation is appended to the dirty log so
        resident sessions (:meth:`dirty_since`) keep memo entries for
        untouched sibling subtrees.

        ``node`` may be a node that was just *attached*: any nodes of its
        subtree not yet known to the document are registered (their Ids
        must be fresh).  Detaching is the one edit this cannot see —
        mark the still-attached parent, not the removed child.

        The argument-less form is deprecated: it degrades to
        :meth:`mark_all_mutated` (whole-document invalidation).
        """
        if node is None:
            warnings.warn(
                "mark_mutated() without a node invalidates every cached "
                "digest and index; pass the mutated node (or its Id) for "
                "O(depth) spine-only maintenance, or call "
                "mark_all_mutated() for explicit whole-document "
                "invalidation",
                DeprecationWarning,
                stacklevel=2,
            )
            self.mark_all_mutated()
            return
        if isinstance(node, int):
            node = self.node(node)
        self._register_subtree(node)
        self._mutation_epoch += 1
        epoch = self._mutation_epoch
        _SPINE_SPLICES.inc()
        with trace_span("pdocument.spine_splice", node=node.node_id) as sp:
            changed, world_changed = self._splice_indexes(node, epoch)
            if sp:
                sp.set("changed", len(changed))
                sp.set("world_changed", world_changed)
        self._dirty.append((epoch, changed, world_changed))
        if len(self._dirty) > _DIRTY_LOG_LIMIT:
            dropped = self._dirty.pop(0)
            self._dirty_floor = dropped[0]

    def mark_all_mutated(self) -> None:
        """Whole-document invalidation: drop every cached derived index.

        The pre-spine behaviour, kept for mutations whose extent is
        unknown (or after detaching nodes).  Resident sessions see
        ``dirty_since() is None`` and reset all their caches.
        """
        self._mutation_epoch += 1
        self._digest_floor = self._mutation_epoch
        self._dirty.clear()
        self._dirty_floor = self._mutation_epoch
        self._structural_index = None
        self._label_index = None
        self._identity_index = None
        self._anchor_index = None

    def dirty_since(self, epoch: int) -> Optional[tuple]:
        """Localized-change summary since ``epoch``, or ``None``.

        Returns ``(changed_ids, world_changed)`` — the union of the
        dirty-log entries newer than ``epoch`` — when every mutation
        since then was node-scoped; ``None`` when a whole-document
        invalidation intervened (or the log was truncated), in which
        case callers must treat everything as changed.
        """
        if epoch < self._dirty_floor:
            return None
        changed: set = set()
        world_changed = False
        for entry_epoch, entry_changed, entry_world in self._dirty:
            if entry_epoch > epoch:
                changed.update(entry_changed)
                world_changed = world_changed or entry_world
        return frozenset(changed), world_changed

    def _register_subtree(self, node: PNode) -> None:
        """Register freshly attached nodes under ``node``; reject clashes
        and nodes not reachable from the document root."""
        current: Optional[PNode] = node
        while current is not None and current is not self.root:
            current = current.parent
        if current is None:
            raise PDocumentError(
                f"node {node.node_id} is not attached to this document"
            )
        for n in node.iter_subtree():
            known = self._index.get(n.node_id)
            if known is None:
                self._index[n.node_id] = n
            elif known is not n:
                raise PDocumentError(
                    f"attached node reuses existing Id {n.node_id}"
                )

    def _splice_indexes(self, node: PNode, epoch: int) -> tuple:
        """Splice every populated index along the spine of ``node``.

        Returns ``(changed_ids, world_changed)``.  An index cached at any
        tag other than the pre-mutation epoch cannot be spliced (it was
        dropped earlier, or never built) and is reset for lazy full
        recomputation; if that happens to the structural index itself the
        change extent is unknown and the conservative spine+subtree id
        set is reported with ``world_changed`` true.
        """
        structural = self._structural_index
        if structural is None or structural[0] != epoch - 1:
            self._digest_floor = epoch
            self._structural_index = None
            self._label_index = None
            self._identity_index = None
            self._anchor_index = None
            changed = {n.node_id for n in node.iter_subtree()}
            current: Optional[PNode] = node
            while current is not None:
                changed.add(current.node_id)
                current = current.parent
            return frozenset(changed), True
        _, digests, sizes, shapes = structural
        changed, world_changed = recompute_spine(
            node, epoch, digests, sizes, shapes
        )
        self._structural_index = (epoch, digests, sizes, shapes)
        identity = self._identity_index
        if identity is not None and identity[0] == epoch - 1:
            identity_spine(node, identity[1])
            self._identity_index = (epoch, identity[1])
        else:
            self._identity_index = None
        label = self._label_index
        if label is not None and label[0] == epoch - 1:
            self._resplice_labels(node, label[1])
            self._label_index = (epoch, label[1])
        else:
            self._label_index = None
        anchors = self._anchor_index
        if anchors is not None and anchors[0] == epoch - 1:
            self._resplice_positions(node, anchors[1], digests)
            self._anchor_index = (epoch, anchors[1])
        else:
            self._anchor_index = None
        return frozenset(changed), world_changed

    def _resplice_labels(self, node: PNode, sets: dict) -> None:
        """Recompute subtree label sets for ``node`` and its ancestors,
        in place, stopping as soon as an ancestor's set is unchanged."""
        stack: list[tuple[PNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if not expanded:
                stack.append((current, True))
                stack.extend((child, False) for child in current.children)
                continue
            accumulated: set = set()
            if current.label is not None:
                accumulated.add(current.label)
            for child in current.children:
                accumulated |= sets[child.node_id]
            sets[current.node_id] = frozenset(accumulated)
        parent = node.parent
        while parent is not None:
            accumulated = set()
            if parent.label is not None:
                accumulated.add(parent.label)
            for child in parent.children:
                accumulated |= sets[child.node_id]
            frozen = frozenset(accumulated)
            if sets.get(parent.node_id) == frozen:
                break
            sets[parent.node_id] = frozen
            parent = parent.parent

    def _resplice_positions(
        self, node: PNode, positions: dict, digests: dict
    ) -> None:
        """Splice canonical rank paths after the spine digests moved.

        Digest changes along the spine can shuffle sibling ranks at every
        spine node, shifting the path *prefix* of entire untouched
        subtrees; their interior suffixes are digest-derived and cannot
        change, so they are prefix-rewritten rather than recomputed.
        Only the mutated subtree itself is re-ranked from scratch.
        """
        spine: list[PNode] = []
        current: Optional[PNode] = node
        while current is not None:
            spine.append(current)
            current = current.parent
        spine.reverse()
        spine_ids = {n.node_id for n in spine}
        for holder in spine[:-1]:
            base = positions[holder.node_id]
            probabilities = holder.probabilities
            if probabilities is None:
                ranked = sorted(
                    holder.children, key=lambda c: digests[c.node_id]
                )
            else:
                ranked = sorted(
                    holder.children,
                    key=lambda c: (
                        digests[c.node_id],
                        str(probabilities[c.node_id]),
                    ),
                )
            for rank, child in enumerate(ranked):
                new_path = base + (rank,)
                old_path = positions.get(child.node_id)
                if new_path == old_path:
                    continue
                if child.node_id in spine_ids:
                    # The next spine iteration (or the final subtree
                    # re-rank) fixes this child's descendants.
                    positions[child.node_id] = new_path
                elif old_path is None:
                    relative = compute_positions(child, digests)
                    for node_id, suffix in relative.items():
                        positions[node_id] = new_path + suffix
                else:
                    cut = len(old_path)
                    for descendant in child.iter_subtree():
                        positions[descendant.node_id] = (
                            new_path + positions[descendant.node_id][cut:]
                        )
        base = positions[node.node_id]
        relative = compute_positions(node, digests)
        for node_id, suffix in relative.items():
            positions[node_id] = base + suffix

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        assert self.root.label is not None
        return self.root.label

    def node(self, node_id: int) -> PNode:
        try:
            return self._index[node_id]
        except KeyError:
            raise PDocumentError(f"no node with Id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._index

    def nodes(self) -> Iterable[PNode]:
        return self._index.values()

    def ordinary_nodes(self) -> list[PNode]:
        return [n for n in self.nodes() if n.is_ordinary]

    def distributional_nodes(self) -> list[PNode]:
        return [n for n in self.nodes() if n.is_distributional]

    def size(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # Probabilistic structure
    # ------------------------------------------------------------------
    def appearance_probability(self, node_id: int) -> Fraction:
        """``Pr(n ∈ P)``: the probability that node ``n`` survives a run.

        Equals the product, over the distributional ancestors of ``n``, of the
        probability of the child lying on the path to ``n``.
        """
        n = self.node(node_id)
        probability = ONE
        current = n
        while current.parent is not None:
            parent = current.parent
            if parent.is_distributional:
                probability *= parent.child_probability(current)
            current = parent
        return probability

    def ancestors_or_self_ordinary(self, node_id: int) -> list[PNode]:
        """Ordinary ancestors of ``n`` (including ``n``), root last."""
        result = []
        current: Optional[PNode] = self.node(node_id)
        while current is not None:
            if current.is_ordinary:
                result.append(current)
            current = current.parent
        return result

    def is_ancestor_or_self(self, ancestor_id: int, node_id: int) -> bool:
        current: Optional[PNode] = self.node(node_id)
        while current is not None:
            if current.node_id == ancestor_id:
                return True
            current = current.parent
        return False

    def ancestral_closure(self, node_ids: Iterable[int]) -> frozenset:
        """Ids of nodes whose subtree contains one of ``node_ids``."""
        closure: set[int] = set()
        for node_id in node_ids:
            current: Optional[PNode] = self.node(node_id)
            while current is not None and current.node_id not in closure:
                closure.add(current.node_id)
                current = current.parent
        return frozenset(closure)

    # ------------------------------------------------------------------
    # Structural identity (content-addressed memo keys)
    # ------------------------------------------------------------------
    def structural_index(self) -> tuple[dict[int, str], dict[int, int]]:
        """Per-node structural digests and subtree sizes, cached per epoch.

        The digest (see :mod:`repro.store.digest`) is a Merkle-style hash
        over node kind, label, child digests and distribution parameters,
        insensitive to sibling order and to node Ids: two nodes with equal
        digests root isomorphic p-subtrees defining identical blocked
        distributions for any goal table restricted to their labels.

        Returns ``(digests, sizes)``, both keyed by ``node_id``.  The
        result is recomputed lazily after :meth:`mark_mutated`.
        """
        cached = self._structural_index
        if cached is not None and cached[0] == self._mutation_epoch:
            return cached[1], cached[2]
        _DIGEST_REBUILDS.inc()
        with trace_span("pdocument.digest_index", nodes=self.size()):
            digests, sizes, shapes = compute_index(
                self.root, self._mutation_epoch
            )
        self._structural_index = (self._mutation_epoch, digests, sizes, shapes)
        return digests, sizes

    def structural_digest(self, node_id: Optional[int] = None) -> str:
        """The structural digest of the subtree at ``node_id`` (root default)."""
        node = self.root if node_id is None else self.node(node_id)
        cached = node._digest
        if cached is not None and cached[0] >= self._digest_floor:
            return cached[1]
        return self.structural_index()[0][node.node_id]

    @property
    def document_digest(self) -> str:
        """The whole-document structural digest (root subtree digest)."""
        return self.structural_digest()

    def identity_digest(self) -> str:
        """Digest of the Id-*aware* Merkle index, cached per epoch.

        Unlike :attr:`document_digest` (which deliberately forgets node
        Ids so isomorphic subtrees coincide), this digest changes when
        node Ids are reassigned.  It keys derived data that *names* node
        Ids — e.g. cached candidate sets — where two isomorphic documents
        with different Id assignments must not share.  Computed as the
        root entry of :func:`repro.store.digest.compute_identity_index`
        and spliced in O(depth) by node-scoped :meth:`mark_mutated`.
        """
        cached = self._identity_index
        if cached is not None and cached[0] == self._mutation_epoch:
            return cached[1][self.root.node_id]
        identities = compute_identity_index(self.root)
        self._identity_index = (self._mutation_epoch, identities)
        return identities[self.root.node_id]

    def anchor_index(self) -> dict[int, tuple]:
        """``node_id -> canonical rank path``, cached per mutation epoch.

        The rank path (see :func:`repro.store.digest.compute_positions`)
        locates a node by *structure*: at every ancestor the children are
        ordered by their digest sort key, and the path records the ranks
        from the root down.  Because ranks are derived from the digests,
        equal rank paths in digest-equal subtrees name corresponding
        nodes under an isomorphism — which is what lets *anchored*
        subtree evaluations share canonical store keys
        (:meth:`repro.store.keys.SubtreeKeyer.store_key`).  A node's
        position *relative to a subtree root* is the suffix of its rank
        path after the root's.
        """
        cached = self._anchor_index
        if cached is not None and cached[0] == self._mutation_epoch:
            return cached[1]
        digests, _ = self.structural_index()
        positions = compute_positions(self.root, digests)
        self._anchor_index = (self._mutation_epoch, positions)
        return positions

    def subtree_size(self, node_id: int) -> int:
        """Number of nodes (ordinary and distributional) under ``node_id``."""
        node = self.node(node_id)
        cached = node._digest
        if cached is not None and cached[0] >= self._digest_floor:
            return cached[2]
        return self.structural_index()[1][node_id]

    def label_index(self) -> dict[int, frozenset]:
        """``node_id -> frozenset(ordinary labels in the subtree)``.

        Label sets are interned (subtrees with equal label sets share one
        frozenset object) and the whole map is cached per mutation epoch.
        """
        cached = self._label_index
        if cached is not None and cached[0] == self._mutation_epoch:
            return cached[1]
        interned: dict[frozenset, frozenset] = {}
        sets: dict[int, frozenset] = {}
        stack: list[tuple[PNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            accumulated: set = set()
            if node.label is not None:
                accumulated.add(node.label)
            for child in node.children:
                accumulated |= sets[child.node_id]
            frozen = frozenset(accumulated)
            sets[node.node_id] = interned.setdefault(frozen, frozen)
        self._label_index = (self._mutation_epoch, sets)
        return sets

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def subdocument(self, node_id: int) -> "PDocument":
        """``P̂_n``: the p-subdocument rooted at ``n`` (Ids preserved)."""

        def copy(source: PNode) -> PNode:
            duplicate = PNode(source.node_id, source.kind, source.label)
            for child in source.children:
                probability = (
                    source.probabilities[child.node_id]
                    if source.probabilities is not None
                    else None
                )
                duplicate.add_child(copy(child), probability)
            return duplicate

        n = self.node(node_id)
        if not n.is_ordinary:
            raise PDocumentError("p-subdocuments are rooted at ordinary nodes")
        return PDocument(copy(n))

    def max_world(self) -> Document:
        """The document keeping *every* ordinary node (distributional nodes
        contracted).  Useful as a superset of every possible world — e.g. for
        candidate generation during query evaluation."""

        def build(source: PNode) -> DocNode:
            assert source.label is not None
            doc_node = DocNode(source.node_id, source.label)
            for effective in self.effective_children(source):
                doc_node.add_child(build(effective))
            return doc_node

        return Document(build(self.root))

    def effective_children(self, n: PNode) -> list[PNode]:
        """Ordinary nodes reachable from ``n`` through distributional chains.

        These are exactly the nodes that *can* become children of ``n`` in a
        possible world.
        """
        result: list[PNode] = []
        stack = list(n.children)
        while stack:
            current = stack.pop()
            if current.is_ordinary:
                result.append(current)
            else:
                stack.extend(current.children)
        return result

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def canonical_key(self, with_ids: bool = True) -> tuple:
        """Order-insensitive canonical form of the p-document.

        Two p-documents with equal keys define identical px-spaces; with
        ``with_ids=False``, identical up to a renaming of node Ids.
        """

        def key(n: PNode, edge_probability: Optional[Fraction]) -> tuple:
            children = tuple(
                sorted(
                    key(
                        c,
                        n.probabilities[c.node_id]
                        if n.probabilities is not None
                        else None,
                    )
                    for c in n.children
                )
            )
            identity: tuple = (n.node_id,) if with_ids else ()
            return identity + (n.kind.value, n.label, edge_probability, children)

        return key(self.root, None)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PDocument):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        return f"PDocument(name={self.name!r}, size={self.size()})"
