"""Concise builders for p-documents, mirroring the paper's figures.

Example (a fragment of Figure 2)::

    p = pdoc(
        ordinary(1, "IT-personnel",
                 mux(11, (ordinary(2, "person", ...), 0.75),
                         (ordinary(13, "John"), 0.25)))
    )

Distributional children are given as ``(subtree, probability)`` pairs; any
:class:`~repro.probability.ProbabilityLike` value is accepted and converted
exactly.
"""

from __future__ import annotations

import itertools

from ..probability import ProbabilityLike, as_probability
from .pdocument import PDocument, PNode, PNodeKind

__all__ = ["ordinary", "mux", "ind", "det", "pdoc"]

_auto_ids = itertools.count(-1_000_001, -1)


def _new_id(node_id: int | None) -> int:
    return next(_auto_ids) if node_id is None else node_id


def ordinary(node_id: int | None, label: str, *children: PNode) -> PNode:
    """An ordinary (L-labeled) node with already-built children."""
    built = PNode(_new_id(node_id), PNodeKind.ORDINARY, label)
    for child in children:
        built.add_child(child)
    return built


def _distributional(
    kind: PNodeKind,
    node_id: int | None,
    choices: tuple[tuple[PNode, ProbabilityLike], ...],
) -> PNode:
    built = PNode(_new_id(node_id), kind)
    for child, probability in choices:
        built.add_child(child, as_probability(probability))
    return built


def mux(node_id: int | None, *choices: tuple[PNode, ProbabilityLike]) -> PNode:
    """A ``mux`` node: selects at most one child (probabilities sum ≤ 1)."""
    return _distributional(PNodeKind.MUX, node_id, choices)


def ind(node_id: int | None, *choices: tuple[PNode, ProbabilityLike]) -> PNode:
    """An ``ind`` node: selects each child independently."""
    return _distributional(PNodeKind.IND, node_id, choices)


def det(node_id: int | None, *children: PNode) -> PNode:
    """A ``det`` node of [2]: all children kept — an ``ind`` with probability 1."""
    return _distributional(PNodeKind.IND, node_id, tuple((c, 1) for c in children))


def pdoc(root: PNode) -> PDocument:
    """Wrap a built tree into a validated :class:`PDocument`."""
    return PDocument(root)
