"""Containment and equivalence between TP∩ and TP queries (paper §5.1).

``Q = q1 ∩ ... ∩ qk`` is first reformulated as the union of its
interleavings ``∪_i Q_i`` (possibly exponentially many).  Then, following
[10] and the reminder in §5.1:

* ``q ⊑ Q``  iff ``q ⊑ q_j`` for every component ``q_j``;
* ``Q ⊑ q``  iff ``Q_i ⊑ q`` for every interleaving ``Q_i``;
* ``q ≡ Q``  iff both hold.  (Equivalently, ``q ⊑ Q_j`` for some
  interleaving, which the union-containment direction implies.)

Testing equivalence this way is coNP-hard in general (Corollary 2); the
*union-freeness* detector below identifies the benign cases — one
interleaving containing all others — where the intersection collapses to a
single TP query.  Extended skeletons (see :mod:`repro.tpi.skeleton`) are the
paper's syntactic fragment guaranteeing tractability.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tp.containment import contains
from ..tp.pattern import TreePattern
from .interleave import interleavings, iter_interleavings

__all__ = [
    "tpi_satisfiable",
    "tp_contained_in_tpi",
    "tpi_contained_in_tp",
    "tpi_equivalent_tp",
    "union_free_interleaving",
]


def tpi_satisfiable(patterns: Sequence[TreePattern]) -> bool:
    """A TP∩ pattern is satisfiable iff it admits at least one interleaving."""
    for _ in iter_interleavings(patterns):
        return True
    return False


def tp_contained_in_tpi(q: TreePattern, patterns: Sequence[TreePattern]) -> bool:
    """``q ⊑ q1 ∩ ... ∩ qk`` — componentwise containment."""
    return all(contains(component, q) for component in patterns)


def tpi_contained_in_tp(
    patterns: Sequence[TreePattern],
    q: TreePattern,
    limit: Optional[int] = None,
) -> bool:
    """``q1 ∩ ... ∩ qk ⊑ q`` — every interleaving must be contained in ``q``."""
    count = 0
    for candidate in iter_interleavings(patterns):
        count += 1
        if limit is not None and count > limit:
            from ..errors import IntersectionError

            raise IntersectionError(f"more than {limit} interleavings")
        if not contains(q, candidate):
            return False
    return True


def tpi_equivalent_tp(
    patterns: Sequence[TreePattern],
    q: TreePattern,
    limit: Optional[int] = None,
) -> bool:
    """``q ≡ q1 ∩ ... ∩ qk``."""
    return tp_contained_in_tpi(q, patterns) and tpi_contained_in_tp(
        patterns, q, limit=limit
    )


def union_free_interleaving(
    patterns: Sequence[TreePattern],
    limit: Optional[int] = None,
) -> Optional[TreePattern]:
    """If one interleaving contains all others, the TP∩ query is *union-free*
    ([8]'s terminology) and collapses to that single TP query — return it.

    Returns ``None`` when no interleaving dominates (or none exists).
    """
    candidates = interleavings(patterns, limit=limit)
    for candidate in candidates:
        if all(
            other is candidate or contains(candidate, other)
            for other in candidates
        ):
            return candidate
    return None
