"""Interleavings of intersected tree patterns (paper §5.1, after [10]).

A TP∩ query ``q1 ∩ ... ∩ qk`` (all components formulated over the same
document root, outputs joined by node identity) is equivalent to the union of
its *interleavings*: the TP queries obtained by merging the components' main
branches into a single main branch, in every way that

* preserves each component's main-branch order,
* coalesces all the roots (position 0) and all the output nodes (the final
  position) — possibly coalescing further nodes of *different* components,
  provided their labels agree,
* respects ``/``-edges: a ``/``-child must land on the position immediately
  following its parent's position, and forces that merged edge to be ``/``,
* leaves every other merged edge as the weakest compatible one (``//``).

Predicate subtrees travel with their main-branch node and are attached to the
node's merged position.  The number of interleavings is exponential in the
worst case — this is precisely the source of the coNP-hardness of TP∩
equivalence (Corollary 2), which `benchmarks/bench_scaling.py` measures.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import IntersectionError
from ..tp.pattern import Axis, PatternNode, TreePattern

__all__ = ["interleavings", "iter_interleavings"]


def interleavings(
    patterns: Sequence[TreePattern],
    limit: Optional[int] = None,
    dedupe: bool = True,
) -> list[TreePattern]:
    """All interleavings of ``patterns`` (deduplicated structurally).

    Args:
        patterns: the intersected components.
        limit: if given, raise :class:`IntersectionError` once more than
            ``limit`` interleavings have been produced (guard for callers
            that must stay polynomial).
        dedupe: drop structurally identical results.
    """
    results: list[TreePattern] = []
    seen: set[tuple] = set()
    for candidate in iter_interleavings(patterns):
        if dedupe:
            key = candidate.canonical_key()
            if key in seen:
                continue
            seen.add(key)
        results.append(candidate)
        if limit is not None and len(results) > limit:
            raise IntersectionError(
                f"more than {limit} interleavings; aborting as requested"
            )
    return results


def iter_interleavings(patterns: Sequence[TreePattern]) -> Iterator[TreePattern]:
    """Lazily enumerate interleavings (see :func:`interleavings`)."""
    if not patterns:
        return
    branches = [p.main_branch() for p in patterns]
    lengths = [len(b) for b in branches]
    k = len(patterns)

    # Roots must all coalesce; bail out early on label mismatch.
    root_labels = {b[0].label for b in branches}
    if len(root_labels) != 1:
        return

    # A *position* is a tuple of (pattern index, node index) pairs.
    Position = tuple[tuple[int, int], ...]

    def successors(
        indices: tuple[int, ...], last: Position
    ) -> Iterator[tuple[Position, tuple[int, ...]]]:
        """All valid next positions from the current state."""
        placed_at_last = {i for i, _ in last}
        # Components whose next node is /-connected to a node in the last
        # position are *forced* into the next position.
        forced = [
            i
            for i in placed_at_last
            if indices[i] < lengths[i]
            and branches[i][indices[i]].axis is Axis.CHILD
        ]
        # Components whose next node is /-connected to an *earlier* position
        # can never be placed again: adjacency is already violated.
        for i in range(k):
            if (
                i not in placed_at_last
                and indices[i] < lengths[i]
                and branches[i][indices[i]].axis is Axis.CHILD
            ):
                return
        available = [i for i in range(k) if indices[i] < lengths[i]]
        if not available:
            return
        if forced:
            base = set(forced)
            optional = [
                i
                for i in available
                if i not in base and branches[i][indices[i]].axis is Axis.DESC
            ]
        else:
            base = set()
            optional = list(available)
        # Enumerate supersets of `base` within base ∪ optional (non-empty).
        for mask in range(1 << len(optional)):
            chosen = set(base)
            for bit, i in enumerate(optional):
                if mask & (1 << bit):
                    chosen.add(i)
            if not chosen:
                continue
            labels = {branches[i][indices[i]].label for i in chosen}
            if len(labels) != 1:
                continue
            new_indices = list(indices)
            for i in chosen:
                new_indices[i] += 1
            # Output nodes must coalesce: a position containing some
            # component's last node must finish *every* component.
            finished = [i for i in range(k) if new_indices[i] == lengths[i]]
            includes_final = any(new_indices[i] == lengths[i] for i in chosen)
            if includes_final and len(finished) != k:
                continue
            if finished and len(finished) != k:
                continue
            yield (
                tuple(sorted((i, indices[i]) for i in chosen)),
                tuple(new_indices),
            )

    def rec(
        indices: tuple[int, ...], sequence: list[Position]
    ) -> Iterator[list[Position]]:
        if all(indices[i] == lengths[i] for i in range(k)):
            yield list(sequence)
            return
        for position, new_indices in successors(indices, sequence[-1]):
            sequence.append(position)
            yield from rec(new_indices, sequence)
            sequence.pop()

    first: Position = tuple((i, 0) for i in range(k))
    start = tuple(1 for _ in range(k))
    if any(lengths[i] == 1 for i in range(k)):
        # Some component's root is also its output: every component must then
        # collapse into a single position.
        if all(lengths[i] == 1 for i in range(k)):
            yield _build(patterns, branches, [first])
        return
    for sequence in rec(start, [first]):
        yield _build(patterns, branches, sequence)


def _build(
    patterns: Sequence[TreePattern],
    branches: Sequence[list[PatternNode]],
    sequence: list,
) -> TreePattern:
    """Materialize an interleaving from its position sequence."""
    root: Optional[PatternNode] = None
    previous: Optional[PatternNode] = None
    out: Optional[PatternNode] = None
    for position in sequence:
        members = [(i, branches[i][j]) for i, j in position]
        label = members[0][1].label
        axis = Axis.CHILD
        if previous is not None:
            axis = (
                Axis.CHILD
                if any(node.axis is Axis.CHILD for _, node in members)
                else Axis.DESC
            )
        merged = PatternNode(label, axis)
        for i, node in members:
            branch_ids = set(map(id, branches[i]))
            for child in node.children:
                if id(child) in branch_ids:
                    continue  # main-branch continuation, not a predicate
                merged.add_child(_copy_subtree(child))
        if previous is None:
            root = merged
        else:
            previous.add_child(merged)
        previous = merged
        out = merged
    assert root is not None and out is not None
    return TreePattern(root, out)


def _copy_subtree(node: PatternNode) -> PatternNode:
    copy = PatternNode(node.label, node.axis)
    for child in node.children:
        copy.add_child(_copy_subtree(child))
    return copy
