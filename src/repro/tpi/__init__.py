"""TP∩: intersections of tree patterns (paper §2, §5.1)."""

from .intersection import TPIntersection
from .interleave import interleavings, iter_interleavings
from .containment import (
    tpi_satisfiable,
    tpi_contained_in_tp,
    tp_contained_in_tpi,
    tpi_equivalent_tp,
    union_free_interleaving,
)
from .skeleton import is_extended_skeleton

__all__ = [
    "TPIntersection",
    "interleavings",
    "iter_interleavings",
    "tpi_satisfiable",
    "tpi_contained_in_tp",
    "tp_contained_in_tpi",
    "tpi_equivalent_tp",
    "union_free_interleaving",
    "is_extended_skeleton",
]
