"""The TP∩ query class: an intersection of tree patterns (paper §2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..tp.pattern import TreePattern

__all__ = ["TPIntersection"]


@dataclass(frozen=True)
class TPIntersection:
    """``q1 ∩ ... ∩ qk``: nodes selected by *every* component (joined by Id).

    Components may be formulated over different documents of a set ``D``
    (e.g. several view extensions ``doc(v_i)``); the result is the
    intersection of the components' node sets.
    """

    components: tuple[TreePattern, ...]

    def __init__(self, components: Sequence[TreePattern]) -> None:
        object.__setattr__(self, "components", tuple(components))

    def __iter__(self) -> Iterator[TreePattern]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def xpath(self) -> str:
        return " ∩ ".join(component.xpath() for component in self.components)

    def __repr__(self) -> str:
        return f"TPIntersection({self.xpath()})"
