"""Extended skeletons: the tractable TP fragment of §5.1.

A TP query is an *extended skeleton* when, for any main-branch node ``n`` and
any ``//``-subpredicate ``st`` of ``n`` (a predicate subtree whose root is
connected by a ``//``-edge to a linear ``/``-path ``l`` coming from ``n``),
there is no containment mapping — in either direction — between ``l`` (the
*incoming /-path*) and the ``/``-path following ``n`` on the main branch.
The empty path maps into every path.

Per the paper's examples: ``a[b//c//d]/e//d`` and ``a[b//c]/d//e`` are
extended skeletons; ``a[b//c]/b//d``, ``a[b//c]//d``, ``a[.//b]/c//d`` and
``a[.//b]//c`` are not.  The fragment does not restrict ``//``-edges on the
main branch, nor predicates built from ``/``-edges only.
"""

from __future__ import annotations

from ..tp.pattern import Axis, PatternNode, TreePattern

__all__ = ["is_extended_skeleton"]


def is_extended_skeleton(q: TreePattern) -> bool:
    """Check the extended-skeleton condition for every main-branch node."""
    branch = q.main_branch()
    branch_ids = set(map(id, branch))
    for index, node in enumerate(branch):
        mb_slash_path = _mb_slash_path_labels(branch, index)
        for pred_root in node.children:
            if id(pred_root) in branch_ids:
                continue
            for incoming in _incoming_slash_paths(pred_root):
                if _path_maps_into(incoming, mb_slash_path) or _path_maps_into(
                    mb_slash_path, incoming
                ):
                    return False
    return True


def _mb_slash_path_labels(branch: list[PatternNode], index: int) -> list[str]:
    """Labels of the maximal ``/``-path following ``branch[index]`` on the
    main branch (empty if the next main-branch edge is ``//``)."""
    labels: list[str] = []
    for node in branch[index + 1 :]:
        if node.axis is not Axis.CHILD:
            break
        labels.append(node.label)
    return labels


def _incoming_slash_paths(pred_root: PatternNode) -> list[list[str]]:
    """The incoming ``/``-paths of every ``//``-subpredicate under a predicate.

    Walk the predicate from its root along ``/``-edges only; whenever a
    ``//``-edge is met, the labels collected so far (excluding none for the
    predicate root itself if it is ``//``-connected) form the incoming path.
    """
    results: list[list[str]] = []
    if pred_root.axis is Axis.DESC:
        results.append([])  # as in a[.//c]: empty incoming path

    def walk(node: PatternNode, prefix: list[str]) -> None:
        if node.axis is Axis.DESC:
            return  # only /-reachable chains from the main-branch node count
        path = prefix + [node.label]
        for child in node.children:
            if child.axis is Axis.DESC:
                results.append(path)
            else:
                walk(child, path)

    if pred_root.axis is Axis.CHILD:
        walk(pred_root, [])
    return results


def _path_maps_into(p1: list[str], p2: list[str]) -> bool:
    """Containment mapping between anchored linear ``/``-paths: a prefix test.

    Both paths hang below the same node with ``/``-edges, so a mapping exists
    iff ``p1`` is a (label-wise) prefix of ``p2``.  The empty path maps into
    any path (paper convention).
    """
    return len(p1) <= len(p2) and p2[: len(p1)] == p1
