"""Command-line interface: evaluate, rewrite, and inspect p-documents.

Examples::

    python -m repro demo                       # reproduce paper examples
    python -m repro eval  doc.pxml "a/b[c]"    # probabilistic evaluation
    python -m repro eval  doc.pxml "a/b" "a//c" --batch   # one shared pass
    python -m repro eval  doc.pxml "a/b" --store memo.db  # persistent memo
    python -m repro eval  doc.pxml "a/b" --trace out.jsonl  # span trace
    python -m repro eval  doc.pxml "a/b" --profile  # per-query cost profile
    python -m repro store warm  memo.db doc.pxml "a/b" "a//c"
    python -m repro store stats memo.db        # inspect a memo store
    python -m repro stats doc.pxml "a/b"       # metrics registry dump
    python -m repro worlds doc.pxml            # enumerate possible worlds
    python -m repro rewrite doc.pxml "a/b[c]" --view "a/b" --view "a//b"
    python -m repro skeleton "a[b//c]/d//e"    # extended-skeleton check

P-documents are read in the indented text format of
:mod:`repro.pxml.serialize` (see ``pdocument_to_text``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .probability import BACKENDS, prob_str
from .prob.engine import query_answer
from .prob.session import QuerySession
from .pxml.serialize import pdocument_from_text, pdocument_to_text
from .pxml.worlds import enumerate_worlds
from .rewrite.single_view import probabilistic_tp_plan
from .store import SqliteStore
from .tp.parser import parse_pattern
from .tpi.skeleton import is_extended_skeleton
from .views.extension import probabilistic_extension
from .views.view import View

__all__ = ["main"]


def _load(path: str):
    return pdocument_from_text(Path(path).read_text(encoding="utf-8"))


def _cmd_eval(args: argparse.Namespace) -> int:
    from .obs import disable_tracing, enable_tracing, tracing_enabled

    p = _load(args.document)
    queries = [parse_pattern(text) for text in args.query]
    store = SqliteStore(args.store) if args.store else None
    tracing_was_on = tracing_enabled()
    if args.trace:
        enable_tracing(sink=args.trace)
    profiles = None
    if args.batch:
        session = QuerySession(p, backend=args.backend, store=store)
        if args.profile:
            answers, profiles = session.answer_many(queries, profile=True)
        else:
            answers = session.answer_many(queries)
    elif args.profile:
        answers, profiles = [], []
        for q in queries:
            answer, profile = query_answer(
                p, q, backend=args.backend, store=store, profile=True
            )
            answers.append(answer)
            profiles.append(profile)
    else:
        answers = [
            query_answer(p, q, backend=args.backend, store=store)
            for q in queries
        ]
    for text, answer in zip(args.query, answers):
        if len(queries) > 1:
            print(f"query {text}")
        if not answer:
            print("no answers with positive probability")
            continue
        for node_id, probability in sorted(answer.items()):
            print(f"node {node_id}\tPr = {prob_str(probability)}")
    if profiles is not None:
        for profile in profiles:
            print(profile.render())
    if store is not None:
        stats = store.stats()
        store.close()
        print(
            f"store {args.store}: {stats.get('entries', 0)} entries, "
            f"{stats.get('hits', 0)} hits / {stats.get('misses', 0)} "
            f"misses this run "
            f"({stats.get('anchored_hits', 0)} anchored hits / "
            f"{stats.get('anchored_misses', 0)} anchored misses)"
        )
    if args.trace:
        from .obs import get_tracer

        roots = len(get_tracer().roots) + get_tracer().dropped
        if not tracing_was_on:
            disable_tracing()
        else:
            get_tracer().close_sink()
        print(f"trace: {roots} root spans written to {args.trace}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Evaluate a workload, then dump the process metrics registry."""
    from .obs import get_registry, metrics_table, prometheus_text

    store = SqliteStore(args.store) if args.store else None
    if args.document and args.query:
        p = _load(args.document)
        queries = [parse_pattern(text) for text in args.query]
        session = QuerySession(p, backend=args.backend, store=store)
        session.answer_many(queries)
    registry = get_registry()
    if args.format == "prometheus":
        print(prometheus_text(registry), end="")
    else:
        print(metrics_table(registry))
    if store is not None:
        store.close()
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    if not Path(args.path).exists():
        print(f"no store file at {args.path}", file=sys.stderr)
        return 1
    # Inspection only: lazy mode counts rows without decoding the table.
    store = SqliteStore(args.path, preload=False)
    stats = store.stats()
    store.close()

    # Tolerate missing/None values (older or foreign stats dicts): render
    # '?' instead of KeyError-ing — the unified schema is documented in
    # repro/store/api.py but renderers must stay graceful.
    def cell(key, default="?"):
        value = stats.get(key)
        return default if value is None else value

    print(f"path     {cell('path', args.path)}")
    print(f"entries  {cell('entries', 0)}")
    print(f"anchored {cell('anchored_entries')}")
    print(f"weight   {cell('weight')}")
    print(
        f"spine    {cell('spine_recomputes', 0)} recomputes / "
        f"{cell('survived_entries', 0)} entries survived (this process)"
    )
    print(
        f"bulk     {cell('bulk_probes', 0)} bulk calls / "
        f"{cell('bulk_probe_keys', 0)} keys / "
        f"{cell('flushes', 0)} flushes (this process)"
    )
    pending = stats.get("write_behind_pending")
    if pending is not None:
        print(f"pending  {pending} write-behind puts buffered")
    if stats.get("degraded"):
        print("state    DEGRADED (file unusable; see warning)")
    return 0


def _cmd_store_clear(args: argparse.Namespace) -> int:
    if not Path(args.path).exists():
        print(f"no store file at {args.path}", file=sys.stderr)
        return 1
    store = SqliteStore(args.path, preload=False)
    before = len(store)
    store.clear()
    store.close()
    print(f"cleared {before} entries from {args.path}")
    return 0


def _cmd_store_warm(args: argparse.Namespace) -> int:
    p = _load(args.document)
    queries = [parse_pattern(text) for text in args.query]
    store = SqliteStore(args.path)
    session = QuerySession(p, backend=args.backend, store=store)
    session.answer_many(queries)
    stats = store.stats()
    store.close()
    print(
        f"warmed {args.path} with {len(queries)} queries over "
        f"{args.document}: {stats['entries']} entries, "
        f"weight {stats['weight']}"
    )
    return 0


def _cmd_worlds(args: argparse.Namespace) -> int:
    p = _load(args.document)
    worlds = enumerate_worlds(p)
    worlds.sort(key=lambda pair: (-pair[1], sorted(pair[0].node_ids())))
    for world, probability in worlds[: args.limit]:
        ids = ",".join(map(str, sorted(world.node_ids())))
        print(f"Pr = {prob_str(probability)}\tnodes = {{{ids}}}")
    if len(worlds) > args.limit:
        print(f"... and {len(worlds) - args.limit} more worlds")
    return 0


def _cmd_rewrite(args: argparse.Namespace) -> int:
    p = _load(args.document)
    q = parse_pattern(args.query)
    exit_code = 1
    for index, text in enumerate(args.view, start=1):
        view = View(f"v{index}", parse_pattern(text))
        plan = probabilistic_tp_plan(q, view, backend=args.backend)
        if plan is None:
            print(f"{text}: no probabilistic TP-rewriting")
            continue
        exit_code = 0
        kind = "restricted" if plan.restricted else "unrestricted"
        print(f"{text}: {kind} rewriting (k={plan.k}, u={plan.u})")
        if args.evaluate:
            extension = probabilistic_extension(p, view)
            for node_id, probability in sorted(plan.evaluate(extension).items()):
                print(f"  node {node_id}\tPr = {prob_str(probability)}")
    return exit_code


def _cmd_skeleton(args: argparse.Namespace) -> int:
    q = parse_pattern(args.query)
    verdict = is_extended_skeleton(q)
    print("extended skeleton" if verdict else "not an extended skeleton")
    return 0 if verdict else 1


def _cmd_show(args: argparse.Namespace) -> int:
    print(pdocument_to_text(_load(args.document)), end="")
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    from .workloads import paper

    p = paper.p_per()
    print("Figure 2 p-document P̂_PER:")
    print(pdocument_to_text(p))
    for name, q in [
        ("q_BON ", paper.q_bon()),
        ("v1_BON", paper.v1_bon()),
        ("q_RBON", paper.q_rbon()),
        ("v2_BON", paper.v2_bon()),
    ]:
        answer = {n: prob_str(pr) for n, pr in query_answer(p, q).items()}
        print(f"{name} = {q.xpath()}\n        -> {answer}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Answering queries using views over probabilistic XML "
        "(Cautis & Kharlamov, VLDB 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser(
        "eval", help="evaluate TP queries over a p-document"
    )
    p_eval.add_argument("document")
    p_eval.add_argument("query", nargs="+",
                        help="one or more TP queries (XPath-style)")
    p_eval.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="exact",
        help="numeric backend: 'exact' Fractions (default) or 'fast' floats",
    )
    p_eval.add_argument(
        "--batch",
        action="store_true",
        help="evaluate all queries in one shared session traversal with "
        "cross-query subtree memoization (QuerySession.answer_many)",
    )
    p_eval.add_argument(
        "--store",
        metavar="PATH",
        help="persistent structural memo store (SQLite file): subtree "
        "evaluations are reused across queries, documents and runs",
    )
    p_eval.add_argument(
        "--trace",
        metavar="FILE",
        help="enable span tracing and stream root spans to FILE as JSON "
        "lines (one span tree per line; see README 'Observability')",
    )
    p_eval.add_argument(
        "--profile",
        action="store_true",
        help="print a per-query cost profile (attributed wall time, "
        "counters, span tree) after each answer",
    )
    p_eval.set_defaults(func=_cmd_eval)

    p_metrics = sub.add_parser(
        "stats",
        help="dump the process metrics registry, optionally after "
        "evaluating a workload",
    )
    p_metrics.add_argument("document", nargs="?",
                           help="optional p-document to evaluate first")
    p_metrics.add_argument("query", nargs="*",
                           help="TP queries evaluated before the dump")
    p_metrics.add_argument(
        "--format",
        choices=("table", "prometheus"),
        default="table",
        help="output format: aligned table (default) or Prometheus text "
        "exposition",
    )
    p_metrics.add_argument(
        "--store",
        metavar="PATH",
        help="persistent memo store consulted by the workload (its "
        "counters then appear in the dump)",
    )
    p_metrics.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="exact",
        help="numeric backend for the workload evaluation",
    )
    p_metrics.set_defaults(func=_cmd_stats)

    p_store = sub.add_parser(
        "store", help="inspect/manage a persistent memo store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_stats = store_sub.add_parser("stats", help="entry count and weight")
    p_stats.add_argument("path")
    p_stats.set_defaults(func=_cmd_store_stats)
    p_clear = store_sub.add_parser("clear", help="drop every cached entry")
    p_clear.add_argument("path")
    p_clear.set_defaults(func=_cmd_store_clear)
    p_warm = store_sub.add_parser(
        "warm",
        help="pre-populate a store by evaluating queries over a document",
    )
    p_warm.add_argument("path")
    p_warm.add_argument("document")
    p_warm.add_argument("query", nargs="+",
                        help="one or more TP queries (XPath-style)")
    p_warm.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="exact",
        help="numeric backend the warmed entries are computed in",
    )
    p_warm.set_defaults(func=_cmd_store_warm)

    p_worlds = sub.add_parser("worlds", help="enumerate possible worlds")
    p_worlds.add_argument("document")
    p_worlds.add_argument("--limit", type=int, default=20)
    p_worlds.set_defaults(func=_cmd_worlds)

    p_rw = sub.add_parser("rewrite", help="decide/evaluate TP-rewritings")
    p_rw.add_argument("document")
    p_rw.add_argument("query")
    p_rw.add_argument("--view", action="append", required=True,
                      help="view definition (repeatable)")
    p_rw.add_argument("--evaluate", action="store_true",
                      help="also evaluate the plans over the extensions")
    p_rw.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="exact",
        help="numeric backend the plans evaluate in",
    )
    p_rw.set_defaults(func=_cmd_rewrite)

    p_skel = sub.add_parser("skeleton", help="extended-skeleton check")
    p_skel.add_argument("query")
    p_skel.set_defaults(func=_cmd_skeleton)

    p_show = sub.add_parser("show", help="pretty-print a p-document file")
    p_show.add_argument("document")
    p_show.set_defaults(func=_cmd_show)

    p_demo = sub.add_parser("demo", help="reproduce the paper's examples")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
