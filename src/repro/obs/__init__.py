"""``repro.obs`` — the unified telemetry layer.

Three cooperating pieces (see the ISSUE-8 tentpole):

* a process-wide **metrics registry** (:mod:`repro.obs.registry`) the
  existing ad-hoc stat bags publish into via pull collectors, keeping
  their dict shapes;
* **span-based tracing** (:mod:`repro.obs.trace`) with a strict no-op
  fast path when disabled — the default;
* **per-query cost profiles** (:mod:`repro.obs.profile`) assembled from
  captured spans, surfaced by ``QuerySession.answer_many(...,
  profile=True)`` and ``query_answer(..., profile=True)``;

plus the exporters (:mod:`repro.obs.export`): metrics table, Prometheus
text, span tree, JSON-lines traces — wired to ``repro stats`` and
``repro eval --trace FILE``.

Set ``REPRO_TRACE=1`` (or ``REPRO_TRACE=/path/to/trace.jsonl``) to
force-enable tracing for a whole process, e.g. a CI test run.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    get_registry,
)
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    capture,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    take_spans,
    tracing_enabled,
)
from .profile import CostProfile, build_profiles
from .export import (
    metrics_table,
    prometheus_text,
    read_spans_jsonl,
    render_span_dicts,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "get_registry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "capture",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "take_spans",
    "tracing_enabled",
    "CostProfile",
    "build_profiles",
    "metrics_table",
    "prometheus_text",
    "read_spans_jsonl",
    "render_span_dicts",
    "write_spans_jsonl",
]
