"""Exporters: human-readable tables/trees, JSON lines, Prometheus text.

Three read-side renderings of the telemetry layer:

* :func:`metrics_table` — aligned ``name{labels}  value`` lines of a
  :class:`~repro.obs.registry.MetricsRegistry` (the ``repro stats``
  default);
* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, ``_bucket``/``_sum``/``_count`` histogram
  series), for scraping or diffing;
* :func:`render_span_dicts` / :func:`write_spans_jsonl` — an indented
  span tree for humans, and one JSON object per *root* span per line
  for machines (the ``repro eval --trace FILE`` format; each line is a
  nested ``{"name", "duration_s", "attrs", "children"}`` tree).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence, Union

__all__ = [
    "metrics_table",
    "prometheus_text",
    "render_span_dicts",
    "write_spans_jsonl",
    "read_spans_jsonl",
]


def _labels_text(labels: tuple, quoted: bool) -> str:
    if not labels:
        return ""
    if quoted:
        body = ",".join(f'{key}="{value}"' for key, value in labels)
    else:
        body = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + body + "}"


def metrics_table(registry) -> str:
    """Aligned, sorted, human-readable registry dump."""
    rows = []
    for sample in registry.collect():
        name = sample.name + _labels_text(sample.labels, quoted=False)
        if sample.kind == "histogram":
            value = (
                f"count={sample.value['count']} "
                f"sum={sample.value['sum']:.6f}s"
            )
        else:
            value = str(sample.value)
        rows.append((name, value))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def prometheus_text(registry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for sample in registry.collect():
        if sample.name not in seen_types:
            seen_types.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        labels = _labels_text(sample.labels, quoted=True)
        if sample.kind == "histogram":
            cumulative = sample.value["buckets"]
            for bound, count in cumulative.items():
                bucket_labels = dict(sample.labels)
                bucket_labels["le"] = repr(float(bound))
                rendered = ",".join(
                    f'{key}="{value}"'
                    for key, value in sorted(bucket_labels.items())
                )
                lines.append(f"{sample.name}_bucket{{{rendered}}} {count}")
            inf_labels = dict(sample.labels)
            inf_labels["le"] = "+Inf"
            rendered = ",".join(
                f'{key}="{value}"' for key, value in sorted(inf_labels.items())
            )
            lines.append(
                f"{sample.name}_bucket{{{rendered}}} {sample.value['count']}"
            )
            lines.append(f"{sample.name}_sum{labels} {sample.value['sum']}")
            lines.append(f"{sample.name}_count{labels} {sample.value['count']}")
        else:
            lines.append(f"{sample.name}{labels} {sample.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def _span_dict(entry) -> dict:
    return entry if isinstance(entry, dict) else entry.to_dict()


def render_span_dicts(
    spans: Sequence, indent: str = ""
) -> str:
    """Indented human-readable tree of spans (dicts or Span objects)."""
    lines: list[str] = []

    def emit(entry: dict, depth: int) -> None:
        attrs = entry.get("attrs", {})
        rendered = " ".join(f"{key}={value}" for key, value in attrs.items())
        lines.append(
            f"{indent}{'  ' * depth}{entry['name']}  "
            f"{entry['duration_s'] * 1e3:.3f}ms"
            + (f"  {rendered}" if rendered else "")
        )
        for child in entry.get("children", ()):
            emit(child, depth + 1)

    for entry in spans:
        emit(_span_dict(entry), 0)
    return "\n".join(lines)


def write_spans_jsonl(spans: Iterable, path: Union[str, Path]) -> int:
    """One JSON line per root span; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as sink:
        for entry in spans:
            sink.write(json.dumps(_span_dict(entry)) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSON-lines trace file back into span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
