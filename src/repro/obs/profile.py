"""Per-query cost profiles: where each answer's time went.

A :class:`CostProfile` summarizes one query's share of a traced
evaluation — built from the root spans captured around the call
(:class:`repro.obs.trace.capture`).  Batched evaluation is *shared* by
design (one post-order pass serves every lane), so per-query wall time
is attributed as an even split of the shared spans' durations across the
batch: the profiles of one call always sum back to the traced wall time
(the acceptance invariant of ``repro eval --trace``), and the span tree
carried on every profile shows the actual shared phases with their
counters (node visits, store hits/misses, widths, fallbacks).

On demand from the public surfaces::

    answers, profiles = session.answer_many(queries, profile=True)
    answer, profile = query_answer(p, q, profile=True)
    print(profiles[0].render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .export import render_span_dicts

__all__ = ["CostProfile", "build_profiles", "aggregate_counters"]


def aggregate_counters(span_dicts: Sequence[dict]) -> dict:
    """Sum every numeric span attribute over a span-dict forest.

    Non-numeric attributes (backend names, gates) are skipped; bools are
    not counters.  Nested children are included.
    """
    totals: dict = {}
    stack = list(span_dicts)
    while stack:
        entry = stack.pop()
        for key, value in entry.get("attrs", {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
        stack.extend(entry.get("children", ()))
    return totals


@dataclass
class CostProfile:
    """One query's cost attribution for one traced evaluation.

    Attributes:
        label: the query (its XPath form, or a caller-supplied tag).
        wall_s: this query's attributed share of the traced wall time —
            the summed root-span durations divided evenly over the batch.
        share: the attribution fraction (``1 / batch_queries``).
        batch_queries: how many queries shared the traced work.
        counters: numeric span attributes summed over the whole traced
            call (node visits, store hits/misses, widths, fallbacks) —
            batch totals, shared across the profiles of one call.
        spans: the traced root spans (JSON-ready dicts, shared).
    """

    label: str
    wall_s: float
    share: float
    batch_queries: int
    counters: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "wall_s": self.wall_s,
            "share": self.share,
            "batch_queries": self.batch_queries,
            "counters": dict(self.counters),
            "spans": self.spans,
        }

    def render(self) -> str:
        """Human-readable profile: attribution line, counters, span tree."""
        lines = [
            f"query {self.label}: {self.wall_s * 1e3:.3f} ms attributed "
            f"({self.share:.0%} of a {self.batch_queries}-query batch)"
        ]
        if self.counters:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.counters.items())
            )
            lines.append(f"  counters: {rendered}")
        tree = render_span_dicts(self.spans, indent="  ")
        if tree:
            lines.append(tree)
        return "\n".join(lines)


def build_profiles(spans, labels: Sequence[str]) -> list[CostProfile]:
    """Profiles for one traced call: even split over ``labels``.

    ``spans`` are the captured root :class:`~repro.obs.trace.Span`
    objects (or ready span dicts) of the call; ``labels`` one entry per
    query of the batch.  ``sum(p.wall_s for p in profiles)`` equals the
    summed root-span durations exactly (up to float addition order).
    """
    span_dicts = [
        entry if isinstance(entry, dict) else entry.to_dict()
        for entry in spans
    ]
    total = sum(entry["duration_s"] for entry in span_dicts)
    count = max(1, len(labels))
    counters = aggregate_counters(span_dicts)
    return [
        CostProfile(
            label=str(label),
            wall_s=total / count,
            share=1.0 / count,
            batch_queries=count,
            counters=counters,
            spans=span_dicts,
        )
        for label in labels
    ]
