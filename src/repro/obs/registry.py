"""Process-wide metrics registry: counters, gauges, histograms, collectors.

One :class:`MetricsRegistry` (the module singleton, :func:`get_registry`)
holds every metric the repro layers publish, under Prometheus-style
names with optional label sets::

    repro_store_hits_total{kind="memory"}     1234
    repro_session_node_visits_total           5678
    repro_store_sqlite_probe_seconds_bucket{le="0.001"}  42

Two publication styles coexist, chosen by hot-path cost:

* **Direct metrics** — :meth:`MetricsRegistry.counter` /
  :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`
  get-or-create a metric child for a ``(name, labels)`` pair and hand
  back the live object; incrementing is one attribute add.  Used for
  event counts that have no natural owner (spine splices, array
  exact-fallback escapes, span counts).

* **Pull collectors** — :meth:`MetricsRegistry.register_collector`
  accepts a zero-argument callable returning an iterable of
  :class:`Sample` tuples, evaluated only when the registry is read
  (:meth:`collect` / :meth:`snapshot` / the exporters).  The existing
  ad-hoc stat bags — :class:`repro.prob.session.SessionStats` and the
  :class:`repro.store.api.MemoStore` counters — publish this way: their
  instances keep plain-int fields on the hot evaluation path (zero added
  cost, and their ``stats()`` dict shapes are unchanged) and a
  weakref-walking collector aggregates the live instances at read time.
  This is the classic Prometheus *custom collector* pattern; the
  registry is the single pane of glass, the instance dicts are thin
  per-component views of the same numbers.

The registry itself is read-path-only machinery: nothing here runs per
p-document node, and constructing a metric is a dict lookup.  Everything
is plain single-threaded Python, like the evaluation layers it observes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, NamedTuple, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Sample",
    "MetricsRegistry",
    "get_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing count; ``inc`` is one attribute add."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def read(self):
        return self.value


class Gauge:
    """A point-in-time value that may move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def read(self):
        return self.value


class Histogram:
    """A bucketed distribution of observations (e.g. probe latencies).

    ``bounds`` are inclusive upper bucket bounds; one implicit ``+Inf``
    bucket catches the rest.  ``read()`` returns the cumulative
    Prometheus form: ``{"count": n, "sum": total, "buckets": {bound:
    cumulative_count, ...}}``.
    """

    __slots__ = ("bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def read(self) -> dict:
        cumulative = 0
        buckets = {}
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets[bound] = cumulative
        return {"count": self.count, "sum": self.total, "buckets": buckets}


class Sample(NamedTuple):
    """One exported metric reading.

    ``value`` is a number for counters/gauges and the
    :meth:`Histogram.read` dict for histograms.
    """

    name: str
    kind: str
    labels: tuple  # sorted ((label, value), ...) pairs
    value: object
    help: str = ""


def _label_key(labels: Optional[dict]) -> tuple:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """The process-wide metric namespace; see the module docstring."""

    def __init__(self) -> None:
        # name -> (kind, help, {label_key: metric object})
        self._families: dict[str, tuple[str, str, dict]] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    # ------------------------------------------------------------------
    # Direct metrics (get-or-create; the returned object is the handle)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[dict] = None, help: str = ""
    ) -> Counter:
        return self._child(name, "counter", Counter, labels, help)

    def gauge(
        self, name: str, labels: Optional[dict] = None, help: str = ""
    ) -> Gauge:
        return self._child(name, "gauge", Gauge, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[dict] = None,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._child(
            name, "histogram", lambda: Histogram(buckets), labels, help
        )

    def _child(self, name, kind, factory, labels, help):
        family = self._families.get(name)
        if family is None:
            family = (kind, help, {})
            self._families[name] = family
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {family[0]}, "
                f"not a {kind}"
            )
        children = family[2]
        key = _label_key(labels)
        child = children.get(key)
        if child is None:
            child = children[key] = factory()
        return child

    # ------------------------------------------------------------------
    # Pull collectors
    # ------------------------------------------------------------------
    def register_collector(
        self, collector: Callable[[], Iterable[Sample]]
    ) -> None:
        """Add a read-time sample source (see the module docstring).

        Collectors are evaluated on every :meth:`collect`; samples that
        share ``(name, labels)`` with other collector or direct samples
        are summed (counters/gauges aggregate across shards).
        """
        self._collectors.append(collector)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def collect(self) -> list[Sample]:
        """Every metric reading, direct children and collectors merged.

        Counter/gauge samples with equal ``(name, labels)`` sum their
        values; histograms never merge (they are direct-only).  Sorted
        by name, then labels.
        """
        merged: dict[tuple, Sample] = {}
        for name, (kind, help, children) in self._families.items():
            for key, child in children.items():
                merged[(name, key)] = Sample(name, kind, key, child.read(), help)
        for collector in self._collectors:
            for sample in collector():
                slot = (sample.name, sample.labels)
                present = merged.get(slot)
                if present is None or sample.kind == "histogram":
                    merged[slot] = sample
                else:
                    merged[slot] = present._replace(
                        value=present.value + sample.value
                    )
        return [merged[slot] for slot in sorted(merged)]

    def snapshot(self) -> dict:
        """Flat ``{"name{a=b,...}": value}`` dict of :meth:`collect`.

        The form embedded into the ``BENCH_*.json`` reports and asserted
        in tests; histogram values stay as their ``read()`` dicts.
        """
        flat = {}
        for sample in self.collect():
            if sample.labels:
                rendered = ",".join(f"{k}={v}" for k, v in sample.labels)
                flat[f"{sample.name}{{{rendered}}}"] = sample.value
            else:
                flat[sample.name] = sample.value
        return flat

    def reset(self) -> None:
        """Zero every *direct* metric (collector-backed shards live on
        their components and reset with them).  Mainly for tests and
        benchmark isolation."""
        for _, _, children in self._families.values():
            for child in children.values():
                if isinstance(child, Histogram):
                    child.counts = [0] * (len(child.bounds) + 1)
                    child.count = 0
                    child.total = 0.0
                else:
                    child.value = 0


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all repro layers publish into."""
    return _REGISTRY
