"""Span-based tracing with a no-op fast path.

A :class:`Span` is one timed region of work — a shared traversal, an
engine DP pass, a rewrite-plan phase, a stacked plan build — carrying a
name, wall time, free-form attributes (node visits, store hit/miss
deltas, distribution widths, exact-fallback counts) and nested child
spans.  The module-level :func:`span` helper is what the evaluation
layers call:

* **Tracing disabled (the default):** :func:`span` returns the
  :data:`NULL_SPAN` singleton — falsy, every method a no-op — so the
  instrumented code costs one global read, one function call and one
  ``with`` enter/exit per *pass* (never per p-document node; per-node
  bookkeeping stays on the plain-int stat bags).  The
  ``benchmarks/bench_obs.py`` micro-benchmark holds this under 2% of
  the warm batch path.

* **Tracing enabled** (:func:`enable_tracing`, the ``REPRO_TRACE``
  environment variable, or a :func:`capture` window): real spans nest
  via the tracer's stack; finished *root* spans land in a bounded ring
  (oldest dropped, counted) and — when a sink is configured — stream
  out as JSON lines, one root span tree per line.

Spans are truthy only when real, so call sites guard their delta
bookkeeping with ``if sp:`` and pay nothing when disabled::

    sp = span("session.traversal", lanes=len(lanes))
    before = self.stats.snapshot() if sp else None
    with sp:
        roots = stored_postorder(...)
    if sp:
        sp.set("node_visits", self.stats.node_visits - before["node_visits"])

Single-threaded by design, like the evaluation engine it observes.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Union

from .registry import get_registry

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "take_spans",
    "capture",
]


class Span:
    """One timed, attributed, nestable region of work."""

    __slots__ = ("name", "attrs", "children", "start", "duration", "_tracer")

    def __init__(self, name: str, attrs: dict, tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def inc(self, key: str, amount=1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self._tracer._stack
        # Tolerate an out-of-order exit (an exception unwinding through
        # several spans): pop everything above and including this span.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].children.append(self)
        else:
            self._tracer._finish_root(self)
        return False

    def to_dict(self) -> dict:
        """JSON-ready form: name, duration, attrs, nested children."""
        entry = {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
        }
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class _NullSpan:
    """The shared disabled-path span: falsy, every operation a no-op."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, key, value) -> None:
        pass

    def inc(self, key, amount=1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory, nesting stack, and bounded finished-root ring."""

    def __init__(self, max_roots: int = 512) -> None:
        self.enabled = False
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._sink = None
        self._owns_sink = False
        self._span_counter = get_registry().counter(
            "repro_trace_spans_total",
            help="finished root spans recorded by the tracer",
        )

    def span(self, name: str, **attrs) -> Union[Span, _NullSpan]:
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, self)

    def _finish_root(self, root: Span) -> None:
        self._span_counter.inc()
        if self._sink is not None:
            self._sink.write(json.dumps(root.to_dict()) + "\n")
        self.roots.append(root)
        if len(self.roots) > self.max_roots:
            del self.roots[0]
            self.dropped += 1

    def take(self) -> list[Span]:
        """Drain and return the finished root spans."""
        spans = self.roots
        self.roots = []
        return spans

    def set_sink(self, sink) -> None:
        """Stream finished root spans to ``sink`` (a path or file object)
        as JSON lines; a path is opened (and later closed) by the tracer."""
        self.close_sink()
        if isinstance(sink, (str, os.PathLike)):
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False

    def close_sink(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None
            self._owns_sink = False


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, **attrs) -> Union[Span, _NullSpan]:
    """A span under the global tracer — :data:`NULL_SPAN` when disabled."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(name, attrs, _TRACER)


def enable_tracing(
    sink=None, max_roots: Optional[int] = None
) -> Tracer:
    """Turn span recording on, optionally streaming roots to ``sink``."""
    if max_roots is not None:
        _TRACER.max_roots = max_roots
    if sink is not None:
        _TRACER.set_sink(sink)
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> None:
    """Back to the no-op fast path; flushes and closes an owned sink."""
    _TRACER.enabled = False
    _TRACER.close_sink()


def tracing_enabled() -> bool:
    return _TRACER.enabled


def take_spans() -> list[Span]:
    """Drain the global tracer's finished root spans."""
    return _TRACER.take()


class capture:
    """Record the spans of one region regardless of the global switch.

    ``with capture() as cap:`` enables tracing for the window (restoring
    the previous state on exit) and drains into ``cap.spans`` exactly
    the root spans finished inside it — the building block of the
    per-query cost profiles (:mod:`repro.obs.profile`).
    """

    __slots__ = ("spans", "_was_enabled", "_mark")

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def __enter__(self) -> "capture":
        self._was_enabled = _TRACER.enabled
        self._mark = len(_TRACER.roots)
        _TRACER.enabled = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.spans = _TRACER.roots[self._mark:]
        del _TRACER.roots[self._mark:]
        _TRACER.enabled = self._was_enabled
        return False


def _env_autoenable() -> None:
    """Honour ``REPRO_TRACE``: truthy enables tracing at import; any
    value other than 1/true/yes/on is taken as a JSON-lines sink path."""
    value = os.environ.get("REPRO_TRACE", "").strip()
    if not value or value.lower() in ("0", "false", "no", "off"):
        return
    if value.lower() in ("1", "true", "yes", "on"):
        enable_tracing()
    else:
        enable_tracing(sink=value)


_env_autoenable()
