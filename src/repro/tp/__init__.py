"""Tree-pattern queries TP (paper §2, Definition 2) and their toolkit."""

from .pattern import Axis, PatternNode, TreePattern
from .parser import parse_pattern
from .embedding import evaluate, has_embedding, find_embeddings
from .containment import contains, equivalent, contains_boolean, isomorphic
from .minimize import minimize
from . import ops

__all__ = [
    "Axis",
    "PatternNode",
    "TreePattern",
    "parse_pattern",
    "evaluate",
    "has_embedding",
    "find_embeddings",
    "contains",
    "contains_boolean",
    "equivalent",
    "isomorphic",
    "minimize",
    "ops",
]
