"""Containment and equivalence of tree patterns via containment mappings.

For TP queries (no wildcards) containment is characterized by containment
mappings [27]: ``q2 ⊑ q1`` iff there is a mapping from ``q1`` to ``q2`` that
preserves the root, the output node, node labels, maps ``/``-edges to
``/``-edges and ``//``-edges to arbitrary downward paths (length ≥ 1).
The mapping test below is the standard polynomial-time bottom-up table.
"""

from __future__ import annotations

from typing import Optional

from .pattern import Axis, PatternNode, TreePattern

__all__ = [
    "contains",
    "contained",
    "equivalent",
    "contains_boolean",
    "isomorphic",
    "containment_mapping",
]


class _MappingTable:
    """``table[u][v]`` = subtree of the *mapped* pattern rooted at ``u`` can be
    mapped into the *target* pattern with ``u ↦ v``."""

    def __init__(
        self,
        source: TreePattern,
        target: TreePattern,
        respect_out: bool,
    ) -> None:
        self.source = source
        self.target = target
        self.respect_out = respect_out
        self._memo: dict[tuple[int, int], bool] = {}
        self._descendants: dict[int, list[PatternNode]] = {}

    def descendants(self, v: PatternNode) -> list[PatternNode]:
        cached = self._descendants.get(id(v))
        if cached is None:
            cached = [d for c in v.children for d in c.iter_subtree()]
            self._descendants[id(v)] = cached
        return cached

    def can_map(self, u: PatternNode, v: PatternNode) -> bool:
        key = (id(u), id(v))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed False to guard against (impossible) cycles, then compute.
        self._memo[key] = False
        result = self._compute(u, v)
        self._memo[key] = result
        return result

    def _compute(self, u: PatternNode, v: PatternNode) -> bool:
        if u.label != v.label:
            return False
        if self.respect_out and (u is self.source.out) != (v is self.target.out):
            # The output node must map to the output node; conversely no other
            # source node is forbidden from mapping onto target.out, so only
            # the forward direction is constrained.
            if u is self.source.out:
                return False
        for child in u.children:
            if child.axis is Axis.CHILD:
                ok = any(
                    vc.axis is Axis.CHILD and self.can_map(child, vc)
                    for vc in v.children
                )
            else:
                ok = any(self.can_map(child, vd) for vd in self.descendants(v))
            if not ok:
                return False
        return True


def containment_mapping(
    q1: TreePattern, q2: TreePattern, respect_out: bool = True
) -> bool:
    """True iff a containment mapping ``q1 → q2`` exists (root↦root, out↦out)."""
    table = _MappingTable(q1, q2, respect_out)
    return table.can_map(q1.root, q2.root)


def contains(q1: TreePattern, q2: TreePattern) -> bool:
    """``q2 ⊑ q1`` for unary queries (mapping from ``q1`` into ``q2``)."""
    return containment_mapping(q1, q2, respect_out=True)


def contained(q1: TreePattern, q2: TreePattern) -> bool:
    """``q1 ⊑ q2`` — convenience inverse of :func:`contains`."""
    return contains(q2, q1)


def contains_boolean(q1: TreePattern, q2: TreePattern) -> bool:
    """Boolean-query containment ``q2 ⊑ q1`` (output nodes ignored)."""
    return containment_mapping(q1, q2, respect_out=False)


def equivalent(q1: TreePattern, q2: TreePattern) -> bool:
    """``q1 ≡ q2``: containment in both directions."""
    return contains(q1, q2) and contains(q2, q1)


def isomorphic(q1: TreePattern, q2: TreePattern) -> bool:
    """Structural identity (order-insensitive), including output position.

    For *minimized* patterns, equivalence coincides with isomorphism [27].
    """
    return q1.canonical_key() == q2.canonical_key()


def mapping_witness(
    q1: TreePattern, q2: TreePattern
) -> Optional[dict[int, PatternNode]]:
    """Return one containment mapping ``{id(q1 node): q2 node}`` if it exists."""
    table = _MappingTable(q1, q2, respect_out=True)
    if not table.can_map(q1.root, q2.root):
        return None
    witness: dict[int, PatternNode] = {}

    def build(u: PatternNode, v: PatternNode) -> None:
        witness[id(u)] = v
        for child in u.children:
            if child.axis is Axis.CHILD:
                target = next(
                    vc
                    for vc in v.children
                    if vc.axis is Axis.CHILD and table.can_map(child, vc)
                )
            else:
                target = next(
                    vd for vd in table.descendants(v) if table.can_map(child, vd)
                )
            build(child, target)

    build(q1.root, q2.root)
    return witness
