"""Evaluation of tree patterns over deterministic documents via embeddings.

An embedding ``e`` of a pattern ``q`` into a document ``d`` maps pattern nodes
to document nodes such that (i) the root maps to the root, (ii) labels are
preserved, (iii) ``/``-edges map to document edges and (iv) ``//``-edges map
to proper descendant paths (paper §2).

``q(d) = { e(out(q)) | e embedding }``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..xml.document import DocNode, Document
from .pattern import Axis, PatternNode, TreePattern

__all__ = ["evaluate", "has_embedding", "find_embeddings", "subtree_matches"]

Anchors = Mapping[int, object]
"""Maps ``id(pattern_node)`` to a required document node Id, or to a
collection of admissible Ids (the normalized engine form,
:func:`repro.prob.engine.normalize_anchors`)."""


def _anchor_ok(node: PatternNode, doc_node: DocNode, anchors: Optional[Anchors]) -> bool:
    if not anchors:
        return True
    required = anchors.get(id(node))
    if required is None:
        return True
    if isinstance(required, int):
        return required == doc_node.node_id
    return doc_node.node_id in required


class _Matcher:
    """Bottom-up subtree-match table, memoized per (pattern node, doc node)."""

    def __init__(self, d: Document, anchors: Optional[Anchors] = None) -> None:
        self.document = d
        self.anchors = anchors
        self._memo: dict[tuple[int, int], bool] = {}

    def matches(self, u: PatternNode, x: DocNode) -> bool:
        """True iff the pattern subtree rooted at ``u`` embeds with ``u ↦ x``."""
        key = (id(u), x.node_id)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._compute(u, x)
        self._memo[key] = result
        return result

    def _compute(self, u: PatternNode, x: DocNode) -> bool:
        if u.label != x.label or not _anchor_ok(u, x, self.anchors):
            return False
        for child in u.children:
            if child.axis is Axis.CHILD:
                if not any(self.matches(child, y) for y in x.children):
                    return False
            else:
                if not any(self.matches(child, y) for y in x.descendants()):
                    return False
        return True


def subtree_matches(
    u: PatternNode, x: DocNode, d: Document, anchors: Optional[Anchors] = None
) -> bool:
    """True iff the pattern subtree at ``u`` embeds into ``d`` with ``u ↦ x``."""
    return _Matcher(d, anchors).matches(u, x)


def has_embedding(
    q: TreePattern, d: Document, anchors: Optional[Anchors] = None
) -> bool:
    """True iff ``q`` embeds into ``d`` with the root mapped to ``root(d)``.

    ``anchors`` optionally pins pattern nodes to specific document node Ids
    (``{id(pattern_node): doc_node_id}``), which is how ``out(q) ↦ n`` and
    the §3.1 identity device are realized (provenance anchor sets — see
    :mod:`repro.views.provenance`).  Matching itself is label-agnostic:
    no label shape is treated specially; legacy marker labels are decoded
    only by :func:`repro.views.view.parse_marker_label`.
    """
    return _Matcher(d, anchors).matches(q.root, d.root)


def evaluate(q: TreePattern, d: Document) -> set[int]:
    """``q(d)``: the set of document node Ids selected by the pattern."""
    matcher = _Matcher(d)
    branch = q.main_branch()
    if not matcher_predicates_ok(matcher, branch[0], d.root, q):
        return set()
    current: set[int] = (
        {d.root.node_id}
        if branch[0].label == d.root.label
        else set()
    )
    for mb_node in branch[1:]:
        next_nodes: set[int] = set()
        for x_id in current:
            x = d.node(x_id)
            candidates = (
                x.children if mb_node.axis is Axis.CHILD else x.descendants()
            )
            for y in candidates:
                if y.label != mb_node.label:
                    continue
                if matcher_predicates_ok(matcher, mb_node, y, q):
                    next_nodes.add(y.node_id)
        current = next_nodes
        if not current:
            break
    return current


def matcher_predicates_ok(
    matcher: _Matcher, mb_node: PatternNode, x: DocNode, q: TreePattern
) -> bool:
    """Check the predicate subtrees of a main-branch node at ``x``."""
    branch_ids = set(map(id, q.main_branch()))
    for child in mb_node.children:
        if id(child) in branch_ids:
            continue  # the main-branch continuation, not a predicate
        if child.axis is Axis.CHILD:
            if not any(matcher.matches(child, y) for y in x.children):
                return False
        else:
            if not any(matcher.matches(child, y) for y in x.descendants()):
                return False
    return True


def find_embeddings(
    q: TreePattern, d: Document, anchors: Optional[Anchors] = None
) -> list[dict[int, int]]:
    """Enumerate all embeddings as ``{id(pattern_node): doc_node_id}`` maps.

    Exponential in the worst case; intended for tests and small instances.
    """

    def embs(u: PatternNode, x: DocNode) -> list[dict[int, int]]:
        if u.label != x.label or not _anchor_ok(u, x, anchors):
            return []
        partial: list[dict[int, int]] = [{id(u): x.node_id}]
        for child in u.children:
            candidates = (
                x.children if child.axis is Axis.CHILD else x.descendants()
            )
            options: list[dict[int, int]] = []
            for y in candidates:
                options.extend(embs(child, y))
            if not options:
                return []
            partial = [{**base, **opt} for base in partial for opt in options]
        return partial

    return embs(q.root, d.root)
