"""Parser for the paper's XPath-style tree-pattern notation.

Accepted syntax (the fragment used throughout the paper)::

    pattern   := step (('/' | '//') step)*
    step      := label predicate*
    predicate := '[' relative ']'
    relative  := ('.//' | './')? step (('/' | '//') step)*
    label     := any run of characters except '[', ']', '/'

The last main-branch step becomes the output node.  Examples::

    parse_pattern("IT-personnel//person[name/Rick]/bonus[laptop]")
    parse_pattern("a[.//c]/b")
    parse_pattern("doc(v1BON)/bonus[laptop]")
"""

from __future__ import annotations

from ..errors import PatternParseError
from .pattern import Axis, PatternNode, TreePattern

__all__ = ["parse_pattern"]


def parse_pattern(text: str) -> TreePattern:
    """Parse ``text`` into a :class:`TreePattern`.

    Raises:
        PatternParseError: on any syntax error (with position information).
    """
    parser = _Parser(text)
    root, out = parser.parse_main()
    return TreePattern(root, out)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text.strip()
        self.pos = 0

    # -- low-level ------------------------------------------------------
    def error(self, message: str) -> PatternParseError:
        return PatternParseError(
            f"{message} at position {self.pos} in {self.text!r}"
        )

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> None:
        if not self.peek(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def take_label(self) -> str:
        start = self.pos
        while not self.eof() and self.text[self.pos] not in "[]/":
            self.pos += 1
        label = self.text[start : self.pos]
        if not label:
            raise self.error("expected a label")
        return label

    def take_axis(self) -> Axis:
        if self.peek("//"):
            self.take("//")
            return Axis.DESC
        self.take("/")
        return Axis.CHILD

    # -- grammar --------------------------------------------------------
    def parse_main(self) -> tuple[PatternNode, PatternNode]:
        node = self.parse_step(Axis.CHILD)
        root = node
        while not self.eof() and (self.peek("/") or self.peek("//")):
            axis = self.take_axis()
            child = self.parse_step(axis)
            node.add_child(child)
            node = child
        if not self.eof():
            raise self.error("trailing input")
        return root, node

    def parse_step(self, axis: Axis) -> PatternNode:
        label = self.take_label()
        node = PatternNode(label, axis)
        while not self.eof() and self.peek("["):
            self.take("[")
            node.add_child(self.parse_relative())
            self.take("]")
        return node

    def parse_relative(self) -> PatternNode:
        """Parse the inside of a predicate: an anchored relative path."""
        if self.peek(".//"):
            self.take(".//")
            first_axis = Axis.DESC
        elif self.peek("./"):
            self.take("./")
            first_axis = Axis.CHILD
        elif self.peek("//"):
            self.take("//")
            first_axis = Axis.DESC
        elif self.peek("/"):
            # Tolerated: the paper occasionally writes [/name/Rick].
            self.take("/")
            first_axis = Axis.CHILD
        else:
            first_axis = Axis.CHILD
        node = self.parse_step(first_axis)
        head = node
        while not self.eof() and (self.peek("/") or self.peek("//")):
            # A ']' after a separator is impossible, so this is safe.
            axis = self.take_axis()
            child = self.parse_step(axis)
            node.add_child(child)
            node = child
        return head
