"""Tree-pattern minimization (paper §2).

A TP query is *minimized* when no predicate subtree can be deleted without
changing its semantics.  Minimization is polynomial [4]: repeatedly remove a
non-main-branch subtree and keep the removal when the reduced pattern is still
equivalent to the original (removal only weakens a pattern, so only the
``reduced ⊑ original`` direction needs testing).  Equivalence of minimized
patterns coincides with isomorphism [27], which the library exploits for
canonical deduplication.
"""

from __future__ import annotations

from .containment import contains
from .pattern import PatternNode, TreePattern

__all__ = ["minimize", "canonical"]


def minimize(q: TreePattern) -> TreePattern:
    """Return an equivalent minimized copy of ``q``.

    The main branch is never touched (its nodes define the query output); all
    predicate subtrees, at any depth, are candidates for removal.
    """
    current = q.copy()
    changed = True
    while changed:
        changed = False
        for parent, child in _removal_candidates(current):
            parent.remove_child(child)
            reduced = TreePattern(current.root, current.out)
            # Removal only weakens a pattern, so ``q ⊑ reduced`` always holds;
            # equivalence needs only ``reduced ⊑ q``.
            if contains(q, reduced):
                current = reduced
                changed = True
                break
            parent.add_child(child)  # restore and try the next candidate
    return current


def _removal_candidates(
    q: TreePattern,
) -> list[tuple[PatternNode, PatternNode]]:
    """All (parent, child-subtree) pairs whose subtree avoids the main branch."""
    branch_ids = set(map(id, q.main_branch()))
    candidates: list[tuple[PatternNode, PatternNode]] = []
    for node in q.nodes():
        for child in node.children:
            if id(child) not in branch_ids:
                candidates.append((node, child))
    return candidates


def canonical(q: TreePattern) -> tuple:
    """Canonical key of the minimized pattern — equal keys ⇔ equivalent queries."""
    return minimize(q).canonical_key()
