"""Query-splitting toolkit: prefixes, suffixes, tokens, compensation (§4).

Notation from the paper, with the superscript/subscript parentheses made
explicit:

* ``prefix(q, y)``  — ``q^(y)``: the prefix of ``q`` with ``y`` main-branch
  nodes (the output mark moves up; everything below becomes predicates).
* ``suffix(q, y)``  — ``q_(y)``: the subtree of ``q`` rooted at the
  main-branch node of depth ``y``.
* ``tokens(q)``     — the ``//``-separated main-branch segments,
  ``q = t1 // t2 // ... // tx``.
* ``compensation(q1, q2)`` — ``comp(q1, q2)``: concatenates ``q2`` (minus its
  first symbol) onto ``q1``; defined when ``lbl(out(q1)) = lbl(root(q2))``.
* ``v_prime(v)``    — ``v′``: ``v`` without the predicates of its output node.
* ``q_prime(q, k)`` — ``q′``: ``q^(k)`` without the predicates of its output.
* ``q_double_prime(q, k)`` — ``q″ = comp(mb(q^(k)), (q^(k))_(k))``: the main
  branch down to depth ``k`` plus only the depth-``k`` node's predicates.
"""

from __future__ import annotations

from ..errors import CompensationError, PatternError
from .pattern import Axis, PatternNode, TreePattern

__all__ = [
    "prefix",
    "suffix",
    "tokens",
    "last_token",
    "token_label_sequence",
    "max_prefix_suffix",
    "compensation",
    "mb_pattern",
    "without_out_children",
    "v_prime",
    "q_prime",
    "q_double_prime",
    "mb_has_desc_edge",
    "is_restricted_rewriting",
    "token_suffix_chain",
]


def prefix(q: TreePattern, y: int) -> TreePattern:
    """``q^(y)``: move the output mark up to the main-branch node of depth ``y``."""
    branch = q.main_branch()
    if not 1 <= y <= len(branch):
        raise PatternError(f"prefix depth {y} out of range 1..{len(branch)}")
    copied, mapping = q.copy_with_mapping()
    return TreePattern(copied.root, mapping[id(branch[y - 1])])


def suffix(q: TreePattern, y: int) -> TreePattern:
    """``q_(y)``: the subtree rooted at the main-branch node of depth ``y``."""
    branch = q.main_branch()
    if not 1 <= y <= len(branch):
        raise PatternError(f"suffix depth {y} out of range 1..{len(branch)}")
    copied, mapping = q.copy_with_mapping()
    new_root = mapping[id(branch[y - 1])]
    if new_root.parent is not None:
        new_root.parent.remove_child(new_root)
    new_root.axis = Axis.CHILD
    return TreePattern(new_root, mapping[id(q.out)])


def tokens(q: TreePattern) -> list[TreePattern]:
    """Split ``q`` into its tokens ``t1 // ... // tx`` (paper §4).

    Each token is returned as a TreePattern over the token's own main-branch
    segment, carrying the predicates of its nodes; the main-branch
    continuation into the next token is *not* part of a token.
    """
    branch = q.main_branch()
    copied, mapping = q.copy_with_mapping()
    segments: list[list[PatternNode]] = [[]]
    for node in branch:
        if node.axis is Axis.DESC and segments[-1]:
            segments.append([])
        segments[-1].append(mapping[id(node)])
    result: list[TreePattern] = []
    for index, segment in enumerate(segments):
        head, tail = segment[0], segment[-1]
        if head.parent is not None:
            head.parent.remove_child(head)
        head.axis = Axis.CHILD
        if index + 1 < len(segments):
            continuation = segments[index + 1][0]
            tail.remove_child(continuation)
        result.append(TreePattern(head, tail))
    return result


def last_token(q: TreePattern) -> TreePattern:
    """The token that ends with ``out(q)``."""
    return tokens(q)[-1]


def token_label_sequence(token: TreePattern) -> list[str]:
    """The main-branch label sequence ``(l1, ..., lm)`` of a token."""
    return [node.label for node in token.main_branch()]


def max_prefix_suffix(labels: list[str]) -> int:
    """Largest ``u`` with ``2u ≤ m`` s.t. the first ``u`` labels equal the last ``u``.

    >>> max_prefix_suffix(["b", "c", "b", "c"])
    2
    >>> max_prefix_suffix(["a", "b", "c"])
    0
    """
    m = len(labels)
    for u in range(m // 2, 0, -1):
        if labels[:u] == labels[m - u :]:
            return u
    return 0


def compensation(q1: TreePattern, q2: TreePattern) -> TreePattern:
    """``comp(q1, q2)``: graft ``q2`` onto the output node of ``q1`` (§3).

    ``q2``'s root coalesces with ``out(q1)``; its predicates become predicates
    of ``out(q1)`` and its main branch extends the main branch of ``q1``.

    Raises:
        CompensationError: if ``lbl(out(q1)) != lbl(root(q2))``.
    """
    if q1.out.label != q2.root.label:
        raise CompensationError(
            f"cannot compensate: lbl(out(q1))={q1.out.label!r} != "
            f"lbl(root(q2))={q2.root.label!r}"
        )
    base, base_map = q1.copy_with_mapping()
    addition, add_map = q2.copy_with_mapping()
    graft_point = base_map[id(q1.out)]
    for child in list(addition.root.children):
        addition.root.remove_child(child)
        graft_point.add_child(child)
    if q2.out is q2.root:
        new_out = graft_point
    else:
        new_out = add_map[id(q2.out)]
    return TreePattern(base.root, new_out)


def mb_pattern(q: TreePattern) -> TreePattern:
    """``mb(q)`` as a predicate-free linear pattern (labels and axes only)."""
    branch = q.main_branch()
    head = PatternNode(branch[0].label, Axis.CHILD)
    current = head
    for node in branch[1:]:
        current = current.add_child(PatternNode(node.label, node.axis))
    return TreePattern(head, current)


def without_out_children(q: TreePattern) -> TreePattern:
    """Drop every subtree hanging below the output node (its predicates)."""
    copied, mapping = q.copy_with_mapping()
    out = mapping[id(q.out)]
    for child in list(out.children):
        out.remove_child(child)
    return TreePattern(copied.root, out)


def v_prime(v: TreePattern) -> TreePattern:
    """``v′``: the view without the predicates of its output node (§4)."""
    return without_out_children(v)


def q_prime(q: TreePattern, k: int) -> TreePattern:
    """``q′``: the prefix ``q^(k)`` without predicates on its output node."""
    return without_out_children(prefix(q, k))


def q_double_prime(q: TreePattern, k: int) -> TreePattern:
    """``q″ = comp(mb(q^(k)), (q^(k))_(k))`` (§4).

    The main branch of ``q`` down to depth ``k`` where only the depth-``k``
    node keeps its subtrees (both its original predicates and, when
    ``k < |mb(q)|``, the demoted main-branch continuation).
    """
    return compensation(mb_pattern(prefix(q, k)), suffix(prefix(q, k), k))


def mb_has_desc_edge(q: TreePattern) -> bool:
    """True iff the main branch of ``q`` contains a ``//``-edge."""
    return any(node.axis is Axis.DESC for node in q.main_branch()[1:])


def is_restricted_rewriting(v: TreePattern, comp_pattern: TreePattern) -> bool:
    """Definition 5: the rewriting is *restricted* iff ``mb(v)`` has no
    ``//``-edges or the compensation's main branch has no ``//``-edges."""
    return not mb_has_desc_edge(v) or not mb_has_desc_edge(comp_pattern)


def token_suffix_chain(token: TreePattern, s: int) -> TreePattern:
    """The last ``s`` main-branch nodes of a token, with their predicates.

    Used by Theorem 2's α-patterns when the images of the view's last token
    may overlap (``s(i, j) ≤ m``): the pattern
    ``l_{m−s+1}[Q_{m−s+1}]/.../l_m[Q_m]``.
    """
    m = token.main_branch_length()
    if not 1 <= s <= m:
        raise PatternError(f"token suffix length {s} out of range 1..{m}")
    return suffix(token, m - s + 1)
