"""Tree-pattern queries (TP) — paper §2, Definition 2.

A tree pattern is a non-empty, unordered, unranked rooted tree whose nodes are
labeled, with a distinguished *output node* and two edge types: child (``/``)
and descendant (``//``).  The *main branch* is the path from the root to the
output node; subtrees hanging off it are *predicates*.

The same data structure serves queries, views, compensations, prefixes,
suffixes and tokens: prefixes, for instance, are obtained simply by moving the
output-node designation up the main branch (what used to be main branch below
the new output node is then, by definition, a predicate).
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional

from ..errors import PatternError

__all__ = ["Axis", "PatternNode", "TreePattern"]


class Axis(enum.Enum):
    """Edge type between a pattern node and its parent."""

    CHILD = "/"
    DESC = "//"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PatternNode:
    """A node of a tree pattern.

    Attributes:
        label: node label from L.
        axis: the edge type connecting this node to its parent
            (:data:`Axis.CHILD` for the root, by convention).
        children: child pattern nodes.
        parent: parent node or ``None`` for the root.
    """

    __slots__ = ("label", "axis", "children", "parent")

    def __init__(self, label: str, axis: Axis = Axis.CHILD) -> None:
        self.label = str(label)
        self.axis = axis
        self.children: list[PatternNode] = []
        self.parent: Optional[PatternNode] = None

    def add_child(self, child: "PatternNode") -> "PatternNode":
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: "PatternNode") -> None:
        self.children.remove(child)
        child.parent = None

    def iter_subtree(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children)

    def __repr__(self) -> str:
        return f"PatternNode({self.label!r}, axis={self.axis.value!r})"


class TreePattern:
    """A tree-pattern query: a rooted pattern tree plus an output node."""

    def __init__(self, root: PatternNode, out: PatternNode) -> None:
        self.root = root
        self.out = out
        self._check()

    def _check(self) -> None:
        nodes = list(self.root.iter_subtree())
        if self.out not in nodes:
            raise PatternError("output node is not part of the pattern tree")
        if self.root.parent is not None:
            raise PatternError("root must not have a parent")

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def nodes(self) -> list[PatternNode]:
        return list(self.root.iter_subtree())

    def size(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def main_branch(self) -> list[PatternNode]:
        """``mb(q)``: the path root → out (paper §2)."""
        branch: list[PatternNode] = []
        current: Optional[PatternNode] = self.out
        while current is not None:
            branch.append(current)
            current = current.parent
        branch.reverse()
        if branch[0] is not self.root:
            raise PatternError("output node is not below the root")
        return branch

    def main_branch_length(self) -> int:
        """``|mb(q)|`` = the depth of the output node (root has depth 1)."""
        return len(self.main_branch())

    def is_main_branch(self, node: PatternNode) -> bool:
        return node in self.main_branch()

    def label(self) -> str:
        """``lbl(q)`` = the label of the output node (paper shorthand)."""
        return self.out.label

    def root_label(self) -> str:
        return self.root.label

    def predicate_nodes(self) -> list[PatternNode]:
        """All nodes that are *not* on the main branch."""
        on_branch = set(map(id, self.main_branch()))
        return [n for n in self.nodes() if id(n) not in on_branch]

    def mb_depth(self, node: PatternNode) -> int:
        """Depth of a main-branch node (root = 1, out = |mb|)."""
        branch = self.main_branch()
        for index, candidate in enumerate(branch, start=1):
            if candidate is node:
                return index
        raise PatternError("node is not on the main branch")

    # ------------------------------------------------------------------
    # Structural addressing
    # ------------------------------------------------------------------
    def path_to(self, node: PatternNode) -> tuple[int, ...]:
        """The structural address of ``node``: child indices from the root.

        Paths survive :meth:`copy` (``copy.node_at(self.path_to(n))`` is the
        copy of ``n``) and serialization, which makes them the stable way to
        refer to a pattern node — e.g. when anchoring pattern nodes to
        document nodes in :mod:`repro.prob.engine`.
        """
        indices: list[int] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            for position, child in enumerate(parent.children):
                if child is current:
                    indices.append(position)
                    break
            else:  # pragma: no cover - inconsistent parent pointer
                raise PatternError("node is not a child of its parent")
            current = parent
        if current is not self.root:
            raise PatternError("node is not part of this pattern tree")
        return tuple(reversed(indices))

    def node_at(self, path: tuple[int, ...]) -> PatternNode:
        """The node at a structural address produced by :meth:`path_to`."""
        current = self.root
        for index in path:
            try:
                current = current.children[index]
            except IndexError:
                raise PatternError(
                    f"no node at path {tuple(path)!r} in {self.xpath()}"
                ) from None
        return current

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "TreePattern":
        copied, _ = self.copy_with_mapping()
        return copied

    def copy_with_mapping(self) -> tuple["TreePattern", dict[int, PatternNode]]:
        """Deep copy; the mapping sends ``id(original node)`` to its copy."""
        mapping: dict[int, PatternNode] = {}

        def rec(source: PatternNode) -> PatternNode:
            copy = PatternNode(source.label, source.axis)
            mapping[id(source)] = copy
            for child in source.children:
                copy.add_child(rec(child))
            return copy

        new_root = rec(self.root)
        return TreePattern(new_root, mapping[id(self.out)]), mapping

    def map_labels(self, fn: Callable[[str], str]) -> "TreePattern":
        copied, mapping = self.copy_with_mapping()
        for node in copied.nodes():
            node.label = fn(node.label)
        return copied

    # ------------------------------------------------------------------
    # Rendering / canonical form
    # ------------------------------------------------------------------
    def xpath(self) -> str:
        """Render in the paper's XPath-style notation, e.g. ``a[.//c]/b``."""
        branch = self.main_branch()
        on_branch = set(map(id, branch))
        parts: list[str] = []
        for index, node in enumerate(branch):
            if index > 0:
                parts.append(node.axis.value)
            parts.append(node.label)
            for pred in sorted(
                (c for c in node.children if id(c) not in on_branch),
                key=_predicate_sort_key,
            ):
                parts.append(f"[{_render_predicate(pred)}]")
        return "".join(parts)

    def canonical_key(self) -> tuple:
        """Order-insensitive structural key; equal keys ⇔ identical patterns.

        The output node is marked in the key, so two patterns that differ only
        in the position of the output node get different keys.
        """

        def key(node: PatternNode, is_out: bool) -> tuple:
            children = tuple(
                sorted(key(c, c is self.out) for c in node.children)
            )
            return (node.axis.value, node.label, is_out, children)

        return key(self.root, self.root is self.out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreePattern):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        return f"TreePattern({self.xpath()!r})"


def _render_predicate(node: PatternNode) -> str:
    """Render a predicate subtree, using ``/`` chains where linear.

    ``name`` with single child ``Rick`` renders as ``name/Rick`` (paper style);
    branching nodes fall back to nested brackets: ``b[c][d]``.
    """
    prefix = ".//" if node.axis is Axis.DESC else ""
    parts = [prefix, node.label]
    children = sorted(node.children, key=_predicate_sort_key)
    if len(children) == 1:
        child = children[0]
        sep = "//" if child.axis is Axis.DESC else "/"
        return "".join(parts) + sep + _render_chain(child)
    for child in children:
        parts.append(f"[{_render_predicate(child)}]")
    return "".join(parts)


def _render_chain(node: PatternNode) -> str:
    """Continue a linear rendering (the axis was already emitted)."""
    parts = [node.label]
    children = sorted(node.children, key=_predicate_sort_key)
    if len(children) == 1:
        child = children[0]
        sep = "//" if child.axis is Axis.DESC else "/"
        return "".join(parts) + sep + _render_chain(child)
    for child in children:
        parts.append(f"[{_render_predicate(child)}]")
    return "".join(parts)


def _predicate_sort_key(node: PatternNode) -> tuple:
    def key(n: PatternNode) -> tuple:
        return (n.axis.value, n.label, tuple(sorted(key(c) for c in n.children)))

    return key(node)
