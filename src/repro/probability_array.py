"""The ``array`` numeric backend: goal-set distributions in numpy.

The evaluation engine's distributions map interned goal bitmasks to
scalars.  The scalar backends keep them as dicts and pay an interpreted
loop per convolution/mixture/rewrite; this module packs each
distribution into a pair of aligned arrays instead —

* ``masks``  — ``int64`` goal bitmasks (the support), and
* ``values`` — ``float64`` probabilities,

so the hot kernels become a handful of vectorized numpy operations:
convolution is a broadcast ``|`` / outer product followed by one
mask-dedup pass, mixtures and mux mixtures are scaled concatenations,
the ordinary-node goal rewrite is a batch of masked bit-ors, and the
target-mass projection is one boolean reduction.

**Dense vs hashed-sparse dedup.**  Every kernel ends by merging equal
masks.  When the engine's goal-mask space is narrow (``goal_bits`` ≤
``dense_span``) the merge is a *dense* ``bincount`` over the mask value
itself; wider spaces fall back to the hashed-sparse path (``np.unique``
over the masks).  Both are pure numpy; the switch is per ops object.

**Exact fallback.**  Supports normally stay tiny (the goal-set DP
collapses masks aggressively), but adversarial documents can blow them
up.  A kernel whose result support exceeds ``width_threshold`` returns
a plain dict with :class:`~fractions.Fraction` values instead — from
that subtree upward the computation runs through the per-entry
:class:`~repro.probability.ScalarOps` kernels in exact arithmetic
(:attr:`ArrayBackend.fallbacks` counts these escapes).  Mixed operands
(array × dict) are resolved by converting the array side into the
dict's domain, so fallback regions compose with vectorized regions.

``numpy`` is an optional dependency (the ``[array]`` packaging extra);
importing this module without it raises
:class:`~repro.errors.MissingDependencyError`.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Optional

from .errors import MissingDependencyError
from .obs.registry import Sample, get_registry
from .probability import ProbabilityLike, ScalarOps, as_fraction

__all__ = [
    "ArrayBackend",
    "ArrayDistribution",
    "ArrayOps",
    "StackedDistribution",
]


def _import_numpy():
    """Import numpy, raising the library's graceful error when absent."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy present in CI
        raise MissingDependencyError(
            "the 'array' numeric backend requires numpy; install the "
            "optional extra (pip install 'repro[array]') or pick the "
            "'exact' / 'fast' backend"
        ) from exc
    return numpy


class ArrayDistribution:
    """One goal-set distribution as aligned ``(masks, values)`` arrays.

    Immutable by convention, like every engine distribution: kernels
    build fresh instances and never mutate an operand, so instances may
    be shared freely between memo entries and store consumers.
    ``__len__`` is the support size (store eviction weights rely on it).
    """

    __slots__ = ("masks", "values")

    def __init__(self, masks, values) -> None:
        self.masks = masks
        self.values = values

    def __len__(self) -> int:
        return int(self.masks.shape[0])

    def to_dict(self) -> dict:
        """Plain ``{mask: float}`` form (drops nothing; no padding here)."""
        return {
            int(mask): float(value)
            for mask, value in zip(self.masks.tolist(), self.values.tolist())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayDistribution({self.to_dict()!r})"


class StackedDistribution:
    """A whole batch of lane distributions as one ``(lanes × width)`` pair.

    The stacked session pass (:mod:`repro.prob.stacked`) advances every
    query lane of a batch through a subtree in a single vectorized step;
    this is the memoized result — row ``i`` is lane ``i``'s blocked
    distribution, right-padded with ``(mask 0, value 0.0)`` entries
    (real entries never carry zero mass, so padding is unambiguous).

    Store-friendly like :class:`ArrayDistribution`: ``__len__`` is the
    total (unpadded) support, used as the eviction weight, and the
    sqlite codec round-trips the padded matrices directly.  Per-lane
    scalar views are memoized on the instance — the same object is
    served from the in-memory store every warm pass, so the dict
    conversions at the batch frontier amortize across passes.
    """

    __slots__ = ("masks", "values", "_dicts", "_support")

    def __init__(self, masks, values) -> None:
        self.masks = masks
        self.values = values
        self._dicts: list = [None] * int(masks.shape[0])
        self._support: Optional[int] = None

    @property
    def lanes(self) -> int:
        return int(self.masks.shape[0])

    def __len__(self) -> int:
        if self._support is None:
            self._support = int((self.values != 0.0).sum())
        return self._support

    def row_dict(self, lane: int) -> dict:
        """Lane ``lane`` as a plain ``{mask: float}`` dict (memoized)."""
        cached = self._dicts[lane]
        if cached is None:
            cached = self._dicts[lane] = {
                int(mask): float(value)
                for mask, value in zip(
                    self.masks[lane].tolist(), self.values[lane].tolist()
                )
                if value
            }
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StackedDistribution(lanes={self.lanes}, "
            f"width={int(self.masks.shape[1])})"
        )


class _ExactFallbackOps(ScalarOps):
    """Exact per-entry kernels fed by the array backend's float scalars.

    Edge probabilities reach the ops layer already converted by the
    array backend (floats); the exact-fallback domain lifts them to the
    :class:`Fraction` they exactly represent, so arithmetic above a
    fallen-back subtree is exact over its (float-valued) inputs.
    """

    __slots__ = ()

    @staticmethod
    def _lift(probability) -> Fraction:
        if isinstance(probability, Fraction):
            return probability
        return Fraction(float(probability))

    def mixture(self, probability, distribution: dict) -> dict:
        return super().mixture(self._lift(probability), distribution)

    def mux_mixture(self, pairs) -> dict:
        return super().mux_mixture(
            (self._lift(p), d) for p, d in pairs
        )

    def scale_subtract(self, base, probability, distribution):
        return super().scale_subtract(
            base, self._lift(probability), distribution
        )

    def scale_accumulate(self, base, probability, distribution):
        return super().scale_accumulate(
            base, self._lift(probability), distribution
        )


class ArrayOps:
    """Vectorized distribution kernels for one engine's goal-mask space.

    Operands are :class:`ArrayDistribution` on the vector path, or plain
    dicts from the two scalar domains — ``float``-valued (the session
    layer's live-spine distributions) and :class:`Fraction`-valued (the
    width-threshold exact fallback).  Every kernel dispatches per
    operand: all-array runs vectorized; any Fraction dict pulls the
    operation into the exact domain; otherwise floats.
    """

    __slots__ = (
        "np", "backend", "goal_bits", "zero", "one", "width_threshold",
        "dense", "_unit", "_float_ops", "_exact_ops", "_int64",
    )

    def __init__(self, backend: "ArrayBackend", goal_bits: int) -> None:
        np = backend.np
        self.np = np
        self.backend = backend
        self.goal_bits = goal_bits
        self.zero = 0.0
        self.one = 1.0
        self.width_threshold = backend.width_threshold
        self.dense = goal_bits <= backend.dense_span
        self._int64 = np.int64
        self._unit = ArrayDistribution(
            np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.float64)
        )
        self._float_ops = ScalarOps(backend)
        self._exact_ops = _ExactFallbackOps(_EXACT_PROXY)

    # -- domain dispatch ------------------------------------------------
    def _scalar_ops(self, *dists) -> ScalarOps:
        for d in dists:
            if type(d) is dict and d:
                if isinstance(next(iter(d.values())), Fraction):
                    return self._exact_ops
        return self._float_ops

    def _as_dict(self, d, exact: bool) -> dict:
        if type(d) is ArrayDistribution:
            d = d.to_dict()
            if exact:
                return {m: Fraction(v) for m, v in d.items()}
            return d
        if exact and d and not isinstance(next(iter(d.values())), Fraction):
            return {m: Fraction(float(v)) for m, v in d.items()}
        return d

    def _result(self, masks, values):
        """Wrap compacted arrays — or escape to the exact fallback."""
        if masks.shape[0] > self.width_threshold:
            self.backend.fallbacks += 1
            return {
                int(mask): Fraction(value)
                for mask, value in zip(masks.tolist(), values.tolist())
            }
        return ArrayDistribution(masks, values)

    def _compact(self, masks, values):
        """Merge equal masks, dropping zero mass (padding and cancels)."""
        np = self.np
        if masks.shape[0] <= 1:
            keep = values != 0.0
            if keep.all():
                return masks, values
            return masks[keep], values[keep]
        if self.dense:
            sums = np.bincount(masks, weights=values)
            nz = np.nonzero(sums)[0]
            return nz.astype(self._int64), sums[nz]
        uniq, inverse = np.unique(masks, return_inverse=True)
        sums = np.bincount(inverse, weights=values)
        keep = sums != 0.0
        return uniq[keep], sums[keep]

    def _is_unit(self, d: ArrayDistribution) -> bool:
        return (
            d.masks.shape[0] == 1
            and d.masks[0] == 0
            and d.values[0] == 1.0
        )

    # -- kernels --------------------------------------------------------
    def unit(self) -> ArrayDistribution:
        return self._unit

    def convolve(self, d1, d2):
        if type(d1) is ArrayDistribution and type(d2) is ArrayDistribution:
            if self._is_unit(d1):
                return d2
            if self._is_unit(d2):
                return d1
            masks = (d1.masks[:, None] | d2.masks[None, :]).ravel()
            values = (d1.values[:, None] * d2.values[None, :]).ravel()
            return self._result(*self._compact(masks, values))
        ops = self._scalar_ops(d1, d2)
        exact = ops is self._exact_ops
        return ops.convolve(self._as_dict(d1, exact), self._as_dict(d2, exact))

    def mixture(self, probability, distribution):
        if type(distribution) is not ArrayDistribution:
            ops = self._scalar_ops(distribution)
            return ops.mixture(
                probability, self._as_dict(distribution, ops is self._exact_ops)
            )
        probability = float(probability)
        if probability == 1.0 or self._is_unit(distribution):
            return distribution
        np = self.np
        masks = np.concatenate(
            (np.zeros(1, dtype=self._int64), distribution.masks)
        )
        values = np.concatenate(
            ((1.0 - probability,), distribution.values * probability)
        )
        return self._result(*self._compact(masks, values))

    def mux_mixture(self, pairs):
        pairs = [(p, d) for p, d in pairs]
        if any(type(d) is not ArrayDistribution for _, d in pairs):
            ops = self._scalar_ops(*(d for _, d in pairs))
            exact = ops is self._exact_ops
            return ops.mux_mixture(
                (p, self._as_dict(d, exact)) for p, d in pairs
            )
        np = self.np
        mask_parts = []
        value_parts = []
        chosen = 0.0
        for probability, distribution in pairs:
            probability = float(probability)
            if not probability:
                continue
            chosen += probability
            mask_parts.append(distribution.masks)
            value_parts.append(distribution.values * probability)
        deficit = 1.0 - chosen
        if deficit:
            mask_parts.append(np.zeros(1, dtype=self._int64))
            value_parts.append(np.asarray((deficit,)))
        masks = np.concatenate(mask_parts)
        values = np.concatenate(value_parts)
        return self._result(*self._compact(masks, values))

    def rewrite(self, distribution, entries, node_id, grant_out, a_mask):
        if type(distribution) is not ArrayDistribution:
            ops = self._scalar_ops(distribution)
            return ops.rewrite(
                self._as_dict(distribution, ops is self._exact_ops),
                entries, node_id, grant_out, a_mask,
            )
        masks = distribution.masks
        emitted = masks & a_mask  # A goals propagate upward
        if entries:
            for d_bit, a_bit, need, anchor, is_out in entries:
                if anchor is not None and node_id not in anchor:
                    continue
                if is_out and not grant_out:
                    continue
                emitted[(masks & need) == need] |= d_bit | a_bit
        return self._result(*self._compact(emitted, distribution.values))

    def scale_subtract(self, base, probability, distribution):
        if (
            type(base) is ArrayDistribution
            and type(distribution) is ArrayDistribution
        ):
            if not probability:
                return base
            np = self.np
            masks = np.concatenate((base.masks, distribution.masks))
            values = np.concatenate(
                (base.values, distribution.values * -float(probability))
            )
            return self._result(*self._compact(masks, values))
        ops = self._scalar_ops(base, distribution)
        exact = ops is self._exact_ops
        return ops.scale_subtract(
            self._as_dict(base, exact), probability,
            self._as_dict(distribution, exact),
        )

    def scale_accumulate(self, base, probability, distribution):
        if (
            type(base) is ArrayDistribution
            and type(distribution) is ArrayDistribution
        ):
            if not probability:
                return base
            np = self.np
            masks = np.concatenate((base.masks, distribution.masks))
            values = np.concatenate(
                (base.values, distribution.values * float(probability))
            )
            return self._result(*self._compact(masks, values))
        ops = self._scalar_ops(base, distribution)
        exact = ops is self._exact_ops
        return ops.scale_accumulate(
            self._as_dict(base, exact), probability,
            self._as_dict(distribution, exact),
        )

    def mass(self, distribution, targets: int):
        if type(distribution) is ArrayDistribution:
            covered = (distribution.masks & targets) == targets
            return float(distribution.values[covered].sum())
        return self._scalar_ops(distribution).mass(distribution, targets)

    def to_dict(self, distribution) -> dict:
        if type(distribution) is ArrayDistribution:
            return distribution.to_dict()
        return distribution


class _ExactProxy:
    """Zero/one source for the exact-fallback ScalarOps (no registry pull)."""

    name = "array-exact-fallback"
    zero = Fraction(0)
    one = Fraction(1)

    @staticmethod
    def convert(value: ProbabilityLike) -> Fraction:
        return value if isinstance(value, Fraction) else as_fraction(value)

    @staticmethod
    def to_fraction(value) -> Fraction:
        return value


_EXACT_PROXY = _ExactProxy()

#: int64 masks leave 62 usable bits; row-offset dedup in the stacked
#: session kernels borrows the high bits, so cap the per-engine goal
#: space well below the machine-word limit.
_MAX_VECTOR_GOAL_BITS = 48

#: Live array backends feeding the registry pull collector below; the
#: per-instance ``fallbacks`` counter stays a plain int slot on the hot
#: path, retired into the process total when a backend is collected.
_LIVE_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()

_RETIRED_FALLBACKS = [0]


def _retire_fallbacks(count: list) -> None:
    _RETIRED_FALLBACKS[0] += count[0]


def _collect_backend_samples():
    total = _RETIRED_FALLBACKS[0] + sum(
        backend.fallbacks for backend in list(_LIVE_BACKENDS)
    )
    yield Sample(
        "repro_array_fallbacks_total", "counter", (), total,
        "width-threshold escapes from vectorized kernels to exact dicts",
    )


get_registry().register_collector(_collect_backend_samples)


class ArrayBackend:
    """Numpy-vectorized ``float`` backend (``"array"``).

    Scalar values are plain floats (``convert``/``to_fraction`` mirror
    the ``fast`` backend), but the distribution kernels returned by
    :meth:`engine_ops` operate on :class:`ArrayDistribution` packed
    arrays — and :class:`repro.prob.session.QuerySession` additionally
    recognizes :attr:`vectorized_sessions` and runs whole query batches
    through the stacked ``(lanes × support)`` pass of
    :mod:`repro.prob.stacked`.

    Args:
        width_threshold: support width beyond which a kernel result
            escapes to the exact per-entry fallback (see module docs).
        dense_span: goal-bit width up to which mask dedup uses the dense
            ``bincount`` path instead of hashed-sparse ``np.unique``.
    """

    name = "array"
    zero = 0.0
    one = 1.0
    #: QuerySession hook: batch whole sessions into stacked arrays.
    vectorized_sessions = True

    def __init__(
        self, width_threshold: int = 4096, dense_span: int = 14
    ) -> None:
        self.np = _import_numpy()
        self.width_threshold = int(width_threshold)
        self.dense_span = int(dense_span)
        # One-slot bag for the fallback counter so a finalizer can
        # retire it into the process total without holding the backend.
        self._fallback_count = [0]
        self._ops_cache: dict[int, ArrayOps] = {}
        self._scalar_fallback: Optional[ScalarOps] = None
        _LIVE_BACKENDS.add(self)
        weakref.finalize(self, _retire_fallbacks, self._fallback_count)

    @property
    def fallbacks(self) -> int:
        """Cumulative count of width-threshold escapes to exact dicts."""
        return self._fallback_count[0]

    @fallbacks.setter
    def fallbacks(self, value: int) -> None:
        self._fallback_count[0] = value

    @staticmethod
    def convert(value: ProbabilityLike) -> float:
        return float(value)

    @staticmethod
    def to_fraction(value) -> Fraction:
        if isinstance(value, Fraction):
            return value
        return Fraction(float(value)).limit_denominator(10**12)

    def scalar_ops(self) -> ScalarOps:
        """Plain float dict kernels (shared instance).

        Used when the goal-mask space outgrows the int64 vector
        representation, and by the stacked session pass for its per-lane
        candidate-spine combines, where distributions are tiny dicts and
        the vector ops' domain dispatch is pure overhead.
        """
        if self._scalar_fallback is None:
            self._scalar_fallback = ScalarOps(self)
        return self._scalar_fallback

    def engine_ops(self, goal_bits: int):
        """Vector kernels — or plain float ScalarOps when the engine's
        goal-mask space outgrows the int64 vector representation."""
        if goal_bits > _MAX_VECTOR_GOAL_BITS:
            return self.scalar_ops()
        ops = self._ops_cache.get(goal_bits)
        if ops is None:
            ops = self._ops_cache[goal_bits] = ArrayOps(self, goal_bits)
        return ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayBackend(width_threshold={self.width_threshold}, "
            f"dense_span={self.dense_span})"
        )
