"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DocumentError",
    "PDocumentError",
    "PatternError",
    "PatternParseError",
    "CompensationError",
    "IntersectionError",
    "UnsatisfiableIntersectionError",
    "UnknownViewError",
    "RewritingError",
    "NoRewritingError",
    "ProbabilityError",
    "MissingDependencyError",
    "LinearSystemError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DocumentError(ReproError):
    """An XML document is malformed (duplicate Ids, broken tree shape, ...)."""


class PDocumentError(ReproError):
    """A p-document violates Definition 1 of the paper.

    Examples: a distributional root or leaf, mux child probabilities summing
    to more than one, probabilities outside [0, 1].
    """


class PatternError(ReproError):
    """A tree pattern is structurally invalid (e.g. output not in the tree)."""


class PatternParseError(PatternError):
    """The XPath-style textual notation for a tree pattern cannot be parsed."""


class CompensationError(PatternError):
    """``comp(q1, q2)`` is undefined: ``lbl(out(q1)) != lbl(root(q2))``."""


class IntersectionError(ReproError):
    """A TP-intersection operation failed."""


class UnsatisfiableIntersectionError(IntersectionError):
    """The TP∩ pattern has no satisfying document (no interleaving exists)."""


class UnknownViewError(ReproError, KeyError):
    """A view name does not refer to any materialized view of the cache.

    Subclasses :class:`KeyError` as well, so dict-style ``except KeyError``
    call sites keep working while library users can catch it as a
    :class:`ReproError`.
    """


class RewritingError(ReproError):
    """A rewriting plan cannot be built or evaluated."""


class NoRewritingError(RewritingError):
    """No (deterministic or probabilistic) rewriting exists for the input."""


class ProbabilityError(ReproError):
    """A value that must be a probability lies outside [0, 1]."""


class MissingDependencyError(ReproError, ImportError):
    """An optional dependency (e.g. ``numpy`` for the ``array`` backend)
    is not installed.

    Subclasses :class:`ImportError` as well, so generic import-failure
    handlers keep working while library users can catch it as a
    :class:`ReproError`.
    """


class LinearSystemError(ReproError):
    """The S(q, V) system is inconsistent or does not determine Pr(n ∈ q(P))."""
