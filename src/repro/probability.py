"""Exact probability arithmetic helpers.

All probabilities inside the library are :class:`fractions.Fraction` values so
that the worked examples of the paper (0.4725, 0.325, 0.288, ...) are
reproduced *exactly*.  The public API accepts ``float``, ``int``, ``str``,
``Decimal`` or ``Fraction`` and converts decimal-faithfully: a float such as
``0.1`` is interpreted as the decimal literal ``1/10`` (via ``str``), not as
its binary expansion.
"""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction
from typing import Union

from .errors import ProbabilityError

__all__ = ["Probability", "ProbabilityLike", "as_probability", "as_fraction", "prob_str"]

#: The internal representation of probabilities.
Probability = Fraction

#: Anything the public API accepts where a probability is expected.
ProbabilityLike = Union[Fraction, float, int, str, Decimal]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted through their ``repr`` so that ``0.1`` becomes
    ``1/10`` rather than ``3602879701896397/36028797018963968``.

    >>> as_fraction(0.75)
    Fraction(3, 4)
    >>> as_fraction("0.1")
    Fraction(1, 10)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ProbabilityError(f"booleans are not probabilities: {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(repr(value))
    if isinstance(value, (str, Decimal)):
        return Fraction(str(value))
    raise ProbabilityError(f"cannot interpret {value!r} as a probability")


def as_probability(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction` in ``[0, 1]``.

    Raises:
        ProbabilityError: if the converted value lies outside ``[0, 1]``.
    """
    frac = as_fraction(value)
    if frac < ZERO or frac > ONE:
        raise ProbabilityError(f"probability out of range [0, 1]: {frac}")
    return frac


def prob_str(value: Fraction, digits: int = 6) -> str:
    """Human-friendly rendering of an exact probability.

    Shows the exact decimal when it terminates within ``digits`` digits,
    otherwise the fraction followed by a float approximation.

    >>> prob_str(Fraction(189, 400))
    '0.4725'
    """
    scaled = value * 10**digits
    if scaled.denominator == 1:
        text = f"{float(value):.{digits}f}".rstrip("0")
        return text + "0" if text.endswith(".") else text
    return f"{value} (~{float(value):.6g})"
