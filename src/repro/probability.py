"""Probability arithmetic helpers and pluggable numeric backends.

P-documents always *store* probabilities as :class:`fractions.Fraction`
values so that the worked examples of the paper (0.4725, 0.325, 0.288, ...)
are reproduced *exactly*.  The public API accepts ``float``, ``int``,
``str``, ``Decimal`` or ``Fraction`` and converts decimal-faithfully: a
float such as ``0.1`` is interpreted as the decimal literal ``1/10`` (via
``str``), not as its binary expansion.

Probability *computation* (the dynamic program of
:mod:`repro.prob.engine`) is parameterized by a :class:`NumericBackend`:

* ``"exact"`` — :class:`Fraction` arithmetic, the default; keeps every
  paper example bit-exact;
* ``"fast"`` — IEEE ``float`` arithmetic for throughput; results agree
  with ``exact`` to within ordinary floating-point error (the property
  suite asserts 1e-9 on random instances).

Backends are looked up by name with :func:`get_backend`; any object
satisfying the protocol (``zero``/``one`` constants plus ``convert`` /
``to_fraction``) may be passed wherever a backend name is accepted, so
interval or log-space arithmetic can be plugged in without touching the
engine.
"""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction
from typing import Protocol, Union, runtime_checkable

from .errors import ProbabilityError

__all__ = [
    "Probability",
    "ProbabilityLike",
    "as_probability",
    "as_fraction",
    "prob_str",
    "NumericBackend",
    "BackendLike",
    "ExactBackend",
    "FastBackend",
    "BACKENDS",
    "get_backend",
]

#: The internal representation of probabilities.
Probability = Fraction

#: Anything the public API accepts where a probability is expected.
ProbabilityLike = Union[Fraction, float, int, str, Decimal]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted through their ``repr`` so that ``0.1`` becomes
    ``1/10`` rather than ``3602879701896397/36028797018963968``.

    >>> as_fraction(0.75)
    Fraction(3, 4)
    >>> as_fraction("0.1")
    Fraction(1, 10)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ProbabilityError(f"booleans are not probabilities: {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(repr(value))
    if isinstance(value, (str, Decimal)):
        return Fraction(str(value))
    raise ProbabilityError(f"cannot interpret {value!r} as a probability")


def as_probability(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction` in ``[0, 1]``.

    Raises:
        ProbabilityError: if the converted value lies outside ``[0, 1]``.
    """
    frac = as_fraction(value)
    if frac < ZERO or frac > ONE:
        raise ProbabilityError(f"probability out of range [0, 1]: {frac}")
    return frac


def prob_str(value: Union[Fraction, float], digits: int = 6) -> str:
    """Human-friendly rendering of a probability.

    For exact values, shows the exact decimal when it terminates within
    ``digits`` digits, otherwise the fraction followed by a float
    approximation.  ``float`` values (the ``fast`` backend's output) are
    rendered with ``digits`` significant digits.

    >>> prob_str(Fraction(189, 400))
    '0.4725'
    """
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    scaled = value * 10**digits
    if scaled.denominator == 1:
        text = f"{float(value):.{digits}f}".rstrip("0")
        return text + "0" if text.endswith(".") else text
    return f"{value} (~{float(value):.6g})"


# ----------------------------------------------------------------------
# Numeric backends
# ----------------------------------------------------------------------
@runtime_checkable
class NumericBackend(Protocol):
    """The numeric layer the evaluation engine computes in.

    Backend values must support ``+``, ``-``, ``*``, ``/``, comparison
    with each other and truthiness (zero is falsy); the engine otherwise
    treats them opaquely.
    """

    name: str
    zero: object
    one: object

    def convert(self, value: ProbabilityLike) -> object:
        """Bring a stored (exact) probability into this backend's domain."""

    def to_fraction(self, value: object) -> Fraction:
        """Project a backend value back onto an exact :class:`Fraction`."""


class ExactBackend:
    """:class:`Fraction` arithmetic — bit-exact, the default."""

    name = "exact"
    zero = ZERO
    one = ONE

    @staticmethod
    def convert(value: ProbabilityLike) -> Fraction:
        return value if isinstance(value, Fraction) else as_fraction(value)

    @staticmethod
    def to_fraction(value: Fraction) -> Fraction:
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ExactBackend()"


class FastBackend:
    """IEEE ``float`` arithmetic — for throughput over exactness."""

    name = "fast"
    zero = 0.0
    one = 1.0

    @staticmethod
    def convert(value: ProbabilityLike) -> float:
        return float(value)

    @staticmethod
    def to_fraction(value: float) -> Fraction:
        return as_fraction(float(value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FastBackend()"


#: The built-in backend registry, keyed by backend name.
BACKENDS: dict[str, NumericBackend] = {
    ExactBackend.name: ExactBackend(),
    FastBackend.name: FastBackend(),
}

#: A backend name or a backend instance.
BackendLike = Union[str, NumericBackend]


def get_backend(backend: BackendLike) -> NumericBackend:
    """Resolve a backend name (``"exact"``, ``"fast"``) or pass through
    an object already satisfying :class:`NumericBackend`.

    Raises:
        ProbabilityError: for unknown names or non-backend objects.
    """
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]
        except KeyError:
            raise ProbabilityError(
                f"unknown numeric backend {backend!r}; "
                f"available: {sorted(BACKENDS)}"
            ) from None
    # Pass the registry's own instances through without the (expensive)
    # runtime-Protocol check — get_backend sits on the engine/session
    # construction hot path, called once per batch item.
    if type(backend) in _BACKEND_TYPES or isinstance(backend, NumericBackend):
        return backend
    raise ProbabilityError(f"not a numeric backend: {backend!r}")


_BACKEND_TYPES = frozenset(type(instance) for instance in BACKENDS.values())
