"""Probability arithmetic helpers and pluggable numeric backends.

P-documents always *store* probabilities as :class:`fractions.Fraction`
values so that the worked examples of the paper (0.4725, 0.325, 0.288, ...)
are reproduced *exactly*.  The public API accepts ``float``, ``int``,
``str``, ``Decimal`` or ``Fraction`` and converts decimal-faithfully: a
float such as ``0.1`` is interpreted as the decimal literal ``1/10`` (via
``str``), not as its binary expansion.

Probability *computation* (the dynamic program of
:mod:`repro.prob.engine`) is parameterized by a :class:`NumericBackend`:

* ``"exact"`` — :class:`Fraction` arithmetic, the default; keeps every
  paper example bit-exact;
* ``"fast"`` — IEEE ``float`` arithmetic for throughput; results agree
  with ``exact`` to within ordinary floating-point error (the property
  suite asserts 1e-9 on random instances).

* ``"array"`` — goal-set distributions packed into ``numpy`` arrays;
  vectorized convolution / mixture / projection kernels with a
  configurable support-width threshold beyond which a subtree falls back
  to exact per-entry arithmetic (see :mod:`repro.probability_array`).
  Requires the optional ``numpy`` dependency (the ``[array]`` extra).

Backends are looked up by name with :func:`get_backend`; any object
satisfying the protocol (``zero``/``one`` constants plus ``convert`` /
``to_fraction``) may be passed wherever a backend name is accepted, so
interval or log-space arithmetic can be plugged in without touching the
engine.  Third-party backends register under a name with
:func:`register_backend` (instances, or lazy factories for backends with
optional dependencies).

The *distribution kernels* of the evaluation engine — unit / convolution
/ mixture / goal-rewrite / projection over goal-set distributions — are
grouped in an ops object the backend supplies through the optional
``engine_ops(goal_bits)`` hook (resolved by :func:`distribution_ops`).
Backends without the hook get :class:`ScalarOps`, the per-entry dict
kernels; the ``array`` backend returns vectorized kernels instead.
"""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction
from typing import Callable, Optional, Protocol, Union, runtime_checkable

from .errors import ProbabilityError

__all__ = [
    "Probability",
    "ProbabilityLike",
    "as_probability",
    "as_fraction",
    "prob_str",
    "NumericBackend",
    "BackendLike",
    "ExactBackend",
    "FastBackend",
    "BACKENDS",
    "get_backend",
    "register_backend",
    "ScalarOps",
    "distribution_ops",
]

#: The internal representation of probabilities.
Probability = Fraction

#: Anything the public API accepts where a probability is expected.
ProbabilityLike = Union[Fraction, float, int, str, Decimal]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted through their ``repr`` so that ``0.1`` becomes
    ``1/10`` rather than ``3602879701896397/36028797018963968``.

    >>> as_fraction(0.75)
    Fraction(3, 4)
    >>> as_fraction("0.1")
    Fraction(1, 10)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ProbabilityError(f"booleans are not probabilities: {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(repr(value))
    if isinstance(value, (str, Decimal)):
        return Fraction(str(value))
    raise ProbabilityError(f"cannot interpret {value!r} as a probability")


def as_probability(value: ProbabilityLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction` in ``[0, 1]``.

    Raises:
        ProbabilityError: if the converted value lies outside ``[0, 1]``.
    """
    frac = as_fraction(value)
    if frac < ZERO or frac > ONE:
        raise ProbabilityError(f"probability out of range [0, 1]: {frac}")
    return frac


def prob_str(value: Union[Fraction, float], digits: int = 6) -> str:
    """Human-friendly rendering of a probability.

    For exact values, shows the exact decimal when it terminates within
    ``digits`` digits, otherwise the fraction followed by a float
    approximation.  ``float`` values (the ``fast`` backend's output) are
    rendered with ``digits`` significant digits.

    >>> prob_str(Fraction(189, 400))
    '0.4725'
    """
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    scaled = value * 10**digits
    if scaled.denominator == 1:
        text = f"{float(value):.{digits}f}".rstrip("0")
        return text + "0" if text.endswith(".") else text
    return f"{value} (~{float(value):.6g})"


# ----------------------------------------------------------------------
# Numeric backends
# ----------------------------------------------------------------------
@runtime_checkable
class NumericBackend(Protocol):
    """The numeric layer the evaluation engine computes in.

    Backend values must support ``+``, ``-``, ``*``, ``/``, comparison
    with each other and truthiness (zero is falsy); the engine otherwise
    treats them opaquely.
    """

    name: str
    zero: object
    one: object

    def convert(self, value: ProbabilityLike) -> object:
        """Bring a stored (exact) probability into this backend's domain."""

    def to_fraction(self, value: object) -> Fraction:
        """Project a backend value back onto an exact :class:`Fraction`."""


class ExactBackend:
    """:class:`Fraction` arithmetic — bit-exact, the default."""

    name = "exact"
    zero = ZERO
    one = ONE

    @staticmethod
    def convert(value: ProbabilityLike) -> Fraction:
        return value if isinstance(value, Fraction) else as_fraction(value)

    @staticmethod
    def to_fraction(value: Fraction) -> Fraction:
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ExactBackend()"


class FastBackend:
    """IEEE ``float`` arithmetic — for throughput over exactness."""

    name = "fast"
    zero = 0.0
    one = 1.0

    @staticmethod
    def convert(value: ProbabilityLike) -> float:
        return float(value)

    @staticmethod
    def to_fraction(value: float) -> Fraction:
        # ``Fraction(float)`` is the exact binary expansion — correct but
        # with astronomical denominators (0.1 -> 3602879701896397 /
        # 36028797018963968).  Snap to the nearest small-denominator
        # fraction instead: 1e12 resolves far below the float error the
        # fast backend already tolerates, so the projection is lossless
        # at the backend's own precision while staying human-readable.
        return Fraction(value).limit_denominator(10**12)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FastBackend()"


# ----------------------------------------------------------------------
# Distribution kernels (the ops layer of the evaluation engine)
# ----------------------------------------------------------------------
class ScalarOps:
    """Per-entry dict kernels over goal-set distributions.

    A *distribution* maps interned goal bitmasks to backend scalars.
    :class:`ScalarOps` implements the evaluation engine's kernel surface
    — unit / convolve / mixture / mux-mixture / goal rewrite / scaled
    add-subtract / target-mass projection — with plain dict loops in the
    backend's scalar domain.  This is the default every backend gets
    from :func:`distribution_ops`; backends may return specialized ops
    (e.g. the vectorized kernels of :mod:`repro.probability_array`)
    through the ``engine_ops(goal_bits)`` hook instead.

    Distributions are immutable by convention: every kernel builds a
    fresh dict or returns an existing operand unmodified, so results may
    be shared freely between memo entries.
    """

    __slots__ = ("backend", "zero", "one")

    def __init__(self, backend: NumericBackend) -> None:
        self.backend = backend
        self.zero = backend.zero
        self.one = backend.one

    def unit(self) -> dict:
        """``δ_∅`` — the distribution of an empty/neutral subtree."""
        return {0: self.one}

    def convolve(self, d1: dict, d2: dict) -> dict:
        """Distribution of ``S1 | S2`` for independent ``S1 ~ d1, S2 ~ d2``."""
        one = self.one
        if len(d1) == 1:
            ((mask, value),) = d1.items()
            if mask == 0 and value == one:
                return d2
        if len(d2) == 1:
            ((mask, value),) = d2.items()
            if mask == 0 and value == one:
                return d1
        zero = self.zero
        result: dict = {}
        get = result.get
        for mask1, p1 in d1.items():
            for mask2, p2 in d2.items():
                weighted = p1 * p2
                if weighted:
                    union = mask1 | mask2
                    result[union] = get(union, zero) + weighted
        return result

    def mixture(self, probability, distribution: dict) -> dict:
        """``p · distribution + (1 − p) · δ_∅`` — one ind-edge mixture."""
        zero, one = self.zero, self.one
        # Unit fast paths: the neutral-skip machinery mints unit
        # distributions constantly, and mixing the unit (or mixing with
        # p = 1) is the identity — skip the dict rebuild.
        if probability == one:
            return distribution
        if len(distribution) == 1:
            ((mask, value),) = distribution.items()
            if mask == 0 and value == one:
                return distribution
        result: dict = {}
        deficit = one - probability
        if deficit:
            result[0] = deficit
        if probability:
            get = result.get
            for mask, value in distribution.items():
                weighted = probability * value
                if weighted:
                    result[mask] = get(mask, zero) + weighted
        if not result:  # pragma: no cover - distributions carry total mass 1
            result[0] = zero
        return result

    def mux_mixture(self, pairs) -> dict:
        """``Σ pᵢ · dᵢ + (1 − Σ pᵢ) · δ_∅`` over ``(pᵢ, dᵢ)`` ``pairs``."""
        zero, one = self.zero, self.one
        result: dict = {}
        get = result.get
        chosen_mass = zero
        for p_child, distribution in pairs:
            if not p_child:
                continue
            chosen_mass = chosen_mass + p_child
            for mask, probability in distribution.items():
                weighted = p_child * probability
                if weighted:
                    result[mask] = get(mask, zero) + weighted
        deficit = one - chosen_mass
        if deficit:
            result[0] = get(0, zero) + deficit
        return result

    def rewrite(
        self, distribution: dict, entries, node_id: int, grant_out: bool,
        a_mask: int,
    ) -> dict:
        """Apply an ordinary node's goal rewrite to every mask.

        ``entries`` is the engine's per-label goal list ``[(d_bit, a_bit,
        need, anchor, is_out), ...]`` (possibly ``None``); ``grant_out``
        gates output-node ``D`` goals (the blocked evaluations suppress
        them); ``a_mask`` selects the ``A`` goals that propagate upward.
        """
        zero = self.zero
        result: dict = {}
        get = result.get
        emit_cache: dict[int, int] = {}
        for mask, probability in distribution.items():
            emitted = emit_cache.get(mask)
            if emitted is None:
                emitted = mask & a_mask  # A goals propagate upward
                if entries:
                    for d_bit, a_bit, need, anchor, is_out in entries:
                        if anchor is not None and node_id not in anchor:
                            continue
                        if is_out and not grant_out:
                            continue
                        if mask & need == need:
                            emitted |= d_bit | a_bit
                emit_cache[mask] = emitted
            result[emitted] = get(emitted, zero) + probability
        return result

    def scale_subtract(self, base: dict, probability, distribution: dict) -> dict:
        """``base − p · distribution``, dropping masks that cancel to zero."""
        result = dict(base)
        if probability:
            zero = self.zero
            get = result.get
            for mask, value in distribution.items():
                weighted = probability * value
                if weighted:
                    remaining = get(mask, zero) - weighted
                    if remaining:
                        result[mask] = remaining
                    else:
                        del result[mask]
        return result

    def scale_accumulate(self, base: dict, probability, distribution: dict) -> dict:
        """``base + p · distribution``."""
        result = dict(base)
        if probability:
            zero = self.zero
            get = result.get
            for mask, value in distribution.items():
                weighted = probability * value
                if weighted:
                    result[mask] = get(mask, zero) + weighted
        return result

    def mass(self, distribution: dict, targets: int):
        """Total probability of goal sets covering ``targets``."""
        total = self.zero
        for mask, probability in distribution.items():
            if mask & targets == targets:
                total = total + probability
        return total

    def to_dict(self, distribution: dict) -> dict:
        """Plain ``{mask: value}`` view (identity for scalar backends)."""
        return distribution


def distribution_ops(backend: NumericBackend, goal_bits: int):
    """The distribution-kernel ops for ``backend``.

    Resolves the optional ``engine_ops(goal_bits)`` backend hook —
    ``goal_bits`` is the width of the engine's interned goal-mask space,
    which array backends use to decide whether masks fit machine
    integers — and falls back to :class:`ScalarOps` for plain
    scalar-protocol backends.
    """
    hook = getattr(backend, "engine_ops", None)
    if hook is not None:
        return hook(goal_bits)
    return ScalarOps(backend)


# Cached ScalarOps: one per backend instance, engines share them.
def _scalar_ops(backend: NumericBackend) -> ScalarOps:
    ops = getattr(backend, "_cached_scalar_ops", None)
    if ops is None:
        ops = ScalarOps(backend)
        try:
            backend._cached_scalar_ops = ops
        except AttributeError:  # slotted/frozen backends: rebuild per call
            pass
    return ops


ExactBackend.engine_ops = lambda self, goal_bits: _scalar_ops(self)
FastBackend.engine_ops = lambda self, goal_bits: _scalar_ops(self)


#: The built-in backend registry, keyed by backend name.  Values are
#: backend instances, or zero-argument factories for backends that are
#: instantiated lazily (the ``array`` backend imports numpy on first use).
BACKENDS: dict[str, Union[NumericBackend, Callable[[], NumericBackend]]] = {}

#: A backend name or a backend instance.
BackendLike = Union[str, NumericBackend]

# Types resolved through the registry — passed through get_backend
# without the (expensive) runtime-Protocol check; get_backend sits on
# the engine/session construction hot path, called once per batch item.
_BACKEND_TYPES: set = set()


def register_backend(
    backend: Union[NumericBackend, Callable[[], NumericBackend]],
    name: Optional[str] = None,
) -> None:
    """Register a backend under its name, replacing any previous entry.

    ``backend`` is an instance (its ``name`` attribute keys the
    registry) or a zero-argument factory returning one — lazy factories
    let backends with optional dependencies (``array`` needs numpy)
    register unconditionally and defer the import to first use; for a
    factory, ``name`` is required.
    """
    if name is None:
        name = getattr(backend, "name", None)
        if not isinstance(name, str):
            raise ProbabilityError(
                f"cannot register backend {backend!r}: it has no string "
                "'name' attribute and no explicit name was given"
            )
    BACKENDS[name] = backend
    if not callable(backend) or isinstance(backend, NumericBackend):
        _BACKEND_TYPES.add(type(backend))


def get_backend(backend: BackendLike) -> NumericBackend:
    """Resolve a backend name (``"exact"``, ``"fast"``, ``"array"``) or
    pass through an object already satisfying :class:`NumericBackend`.

    Raises:
        ProbabilityError: for unknown names or non-backend objects.
        MissingDependencyError: for the ``array`` backend without numpy.
    """
    if isinstance(backend, str):
        try:
            resolved = BACKENDS[backend]
        except KeyError:
            raise ProbabilityError(
                f"unknown numeric backend {backend!r}; "
                f"registered backends: {', '.join(sorted(BACKENDS))}"
            ) from None
        if callable(resolved) and not isinstance(resolved, NumericBackend):
            # Lazy factory: instantiate once and memoize the instance.
            resolved = resolved()
            register_backend(resolved, backend)
        return resolved
    if type(backend) in _BACKEND_TYPES or isinstance(backend, NumericBackend):
        return backend
    raise ProbabilityError(f"not a numeric backend: {backend!r}")


def _array_backend_factory() -> NumericBackend:
    from .probability_array import ArrayBackend

    return ArrayBackend()


register_backend(ExactBackend())
register_backend(FastBackend())
register_backend(_array_backend_factory, "array")
