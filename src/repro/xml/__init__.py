"""Deterministic XML substrate: unranked, unordered, labeled trees (paper §2)."""

from .document import DocNode, Document
from .builder import doc, node
from .serialize import document_to_text, document_from_text

__all__ = [
    "DocNode",
    "Document",
    "doc",
    "node",
    "document_to_text",
    "document_from_text",
]
