"""Concise builders for deterministic documents.

The builder mirrors the way documents are drawn in the paper::

    d_per = doc(
        node(1, "IT-personnel",
             node(2, "person",
                  node(4, "name", node(8, "Rick")),
                  node(5, "bonus", ...)))
    )

``node`` builds a detached :class:`DocNode` subtree; ``doc`` wraps the root in
a validated :class:`Document`.  When Ids are omitted they are auto-assigned
(negative, to avoid clashing with explicit paper Ids).
"""

from __future__ import annotations

import itertools

from .document import DocNode, Document

__all__ = ["node", "doc"]

_auto_ids = itertools.count(-1, -1)


def node(node_id: int | None, label: str, *children: DocNode) -> DocNode:
    """Build a document node with the given children.

    Args:
        node_id: explicit Id, or ``None`` for an auto-assigned (negative) Id.
        label: the node label.
        children: already-built child subtrees.
    """
    built = DocNode(next(_auto_ids) if node_id is None else node_id, label)
    for child in children:
        built.add_child(child)
    return built


def doc(root: DocNode) -> Document:
    """Wrap a built subtree into a validated :class:`Document`."""
    return Document(root)
