"""Unranked, unordered, labeled XML trees with persistent node Ids (paper §2).

A :class:`Document` is a rooted tree of :class:`DocNode` objects.  Every node
carries a *label* (subsuming both XML tags and text values, per the paper) and
a *node Id* that is unique within the document.  Children are unordered; all
comparison and serialization routines are therefore order-insensitive.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from ..errors import DocumentError

__all__ = ["DocNode", "Document"]


class DocNode:
    """A single node of a deterministic XML document.

    Attributes:
        node_id: integer Id, unique within the owning document.
        label: the node label (tag or value).
        children: list of child nodes (unordered semantics).
        parent: the parent node, or ``None`` for the root.
    """

    __slots__ = ("node_id", "label", "children", "parent")

    def __init__(self, node_id: int, label: str) -> None:
        self.node_id = int(node_id)
        self.label = str(label)
        self.children: list[DocNode] = []
        self.parent: Optional[DocNode] = None

    def add_child(self, child: "DocNode") -> "DocNode":
        """Attach ``child`` below this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["DocNode"]:
        """Yield this node and all descendants (pre-order)."""
        stack = [self]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children)

    def descendants(self) -> Iterator["DocNode"]:
        """Yield all proper descendants of this node."""
        for child in self.children:
            yield from child.iter_subtree()

    def ancestors_or_self(self) -> Iterator["DocNode"]:
        """Yield this node, its parent, ... up to the root."""
        current: Optional[DocNode] = self
        while current is not None:
            yield current
            current = current.parent

    def depth(self) -> int:
        """Distance from the root; the root has depth 1 (paper convention)."""
        return sum(1 for _ in self.ancestors_or_self())

    def __repr__(self) -> str:
        return f"DocNode(id={self.node_id}, label={self.label!r})"


class Document:
    """A deterministic XML document: a rooted tree with unique node Ids."""

    def __init__(self, root: DocNode) -> None:
        self.root = root
        self._index: dict[int, DocNode] = {}
        for n in root.iter_subtree():
            if n.node_id in self._index:
                raise DocumentError(f"duplicate node Id {n.node_id}")
            self._index[n.node_id] = n

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The document name = label of the root (paper §2)."""
        return self.root.label

    def node(self, node_id: int) -> DocNode:
        """Return the node with the given Id.

        Raises:
            DocumentError: if no such node exists.
        """
        try:
            return self._index[node_id]
        except KeyError:
            raise DocumentError(f"no node with Id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._index

    def nodes(self) -> Iterable[DocNode]:
        """All nodes of the document (no order guaranteed)."""
        return self._index.values()

    def node_ids(self) -> frozenset[int]:
        return frozenset(self._index)

    def size(self) -> int:
        return len(self._index)

    def labels(self) -> set[str]:
        return {n.label for n in self.nodes()}

    def nodes_with_label(self, label: str) -> list[DocNode]:
        return [n for n in self.nodes() if n.label == label]

    # ------------------------------------------------------------------
    # Derived documents
    # ------------------------------------------------------------------
    def subdocument(self, node_id: int) -> "Document":
        """``d_n``: a fresh document that copies the subtree rooted at ``node_id``.

        Node Ids are preserved (the paper keeps original Ids in subtrees).
        """
        return Document(copy_subtree(self.node(node_id)))

    def map_nodes(self, fn: Callable[[DocNode], tuple[int, str]]) -> "Document":
        """Structure-preserving copy; ``fn`` supplies ``(new_id, new_label)``."""

        def rec(source: DocNode) -> DocNode:
            new_id, new_label = fn(source)
            copy = DocNode(new_id, new_label)
            for child in source.children:
                copy.add_child(rec(child))
            return copy

        return Document(rec(self.root))

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def canonical_key(self, with_ids: bool = True) -> tuple:
        """Order-insensitive canonical form, usable as a dict key.

        With ``with_ids=True`` two documents compare equal iff they are
        identical trees over identical node Ids — the notion of world
        equality used by the px-space semantics.  With ``with_ids=False``
        comparison is by shape and labels only (isomorphism).
        """

        def key(n: DocNode) -> tuple:
            children = tuple(sorted(key(c) for c in n.children))
            if with_ids:
                return (n.node_id, n.label, children)
            return (n.label, children)

        return key(self.root)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        return f"Document(name={self.name!r}, size={self.size()})"


def copy_subtree(source: DocNode) -> DocNode:
    """Deep-copy a subtree, preserving node Ids and labels."""
    copy = DocNode(source.node_id, source.label)
    for child in source.children:
        copy.add_child(copy_subtree(child))
    return copy
