"""Textual serialization of deterministic documents.

The format is a compact, line-oriented, indentation-based notation::

    [1] IT-personnel
      [2] person
        [4] name
          [8] Rick

It round-trips exactly (Ids, labels, shape) and is convenient both for golden
tests and for eyeballing fixtures against the paper's figures.
"""

from __future__ import annotations

from ..errors import DocumentError
from .document import DocNode, Document

__all__ = ["document_to_text", "document_from_text"]

_INDENT = "  "


def document_to_text(document: Document) -> str:
    """Serialize ``document`` to the indented text format.

    Children are emitted in (label, id) order so the output is canonical for
    the unordered tree semantics.
    """
    lines: list[str] = []

    def emit(n: DocNode, depth: int) -> None:
        lines.append(f"{_INDENT * depth}[{n.node_id}] {n.label}")
        for child in sorted(n.children, key=lambda c: (c.label, c.node_id)):
            emit(child, depth + 1)

    emit(document.root, 0)
    return "\n".join(lines) + "\n"


def document_from_text(text: str) -> Document:
    """Parse the indented text format back into a :class:`Document`."""
    root: DocNode | None = None
    stack: list[tuple[int, DocNode]] = []  # (depth, node)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        stripped = raw.lstrip(" ")
        pad = len(raw) - len(stripped)
        if pad % len(_INDENT) != 0:
            raise DocumentError(f"line {line_no}: bad indentation")
        depth = pad // len(_INDENT)
        if not stripped.startswith("["):
            raise DocumentError(f"line {line_no}: expected '[id] label'")
        close = stripped.index("]")
        node_id = int(stripped[1:close])
        label = stripped[close + 1 :].strip()
        built = DocNode(node_id, label)
        if depth == 0:
            if root is not None:
                raise DocumentError(f"line {line_no}: multiple roots")
            root = built
            stack = [(0, built)]
            continue
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if not stack or stack[-1][0] != depth - 1:
            raise DocumentError(f"line {line_no}: orphan node at depth {depth}")
        stack[-1][1].add_child(built)
        stack.append((depth, built))
    if root is None:
        raise DocumentError("empty document text")
    return Document(root)
