"""View extensions: bundling a view's results into one (p-)document (§3, §3.1).

Probabilistic extensions ``P̂_v`` follow the paper's shape: a root labeled
``doc(v)``, one ``ind`` child, and below it — for every pair
``(n, p) ∈ v(P̂)`` — a copy of the p-subdocument ``P̂_n`` attached with
probability ``p``.  The paper's post-processing step (a fresh ``Id(n)``
marker child under every copy, needed to locate the multiple occurrences
of a node in the extension) is replaced by an **Id-free provenance
layer**: each extension carries a :class:`repro.views.provenance.
ProvenanceTable` mapping original node Ids to copy Ids — and to
isomorphism-invariant canonical rank paths — *beside* the tree.  The
extension document itself contains only copied structure, so extensions
of isomorphic base documents are digest-identical and share
content-addressed memo-store entries with each other and with the base
document's own subtrees.

Everything a rewriting's probability function ``f_r`` may legitimately use
is available from the :class:`ProbabilisticViewExtension` object alone: the
extension p-document, the per-subtree selection probabilities (readable off
the ``ind`` edges), and occurrence/containment information served by the
provenance table.  ``f_r`` implementations in :mod:`repro.rewrite` receive
only this object — never the original document.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..errors import PDocumentError
from ..probability import BackendLike
from ..prob.engine import query_answer
from ..prob.session import QuerySession
from ..pxml.pdocument import PDocument, PNode, PNodeKind
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern
from ..xml.document import DocNode, Document
from .provenance import ProvenanceTable
from .view import View, _marker_label

__all__ = [
    "DeterministicViewExtension",
    "ProbabilisticViewExtension",
    "deterministic_extension",
    "probabilistic_extension",
    "anchor_via_marker",
]


@dataclass
class DeterministicViewExtension:
    """``d_v``: the deterministic extension of a view over a document."""

    view: View
    document: Document
    #: original selected node Id -> Id of its copy directly under doc(v)
    subtree_roots: dict[int, int]
    #: copy provenance (original ↔ copy Ids); markers are never planted.
    provenance: ProvenanceTable = field(default_factory=ProvenanceTable)


@dataclass
class ProbabilisticViewExtension:
    """``P̂_v``: the probabilistic extension of a view over a p-document."""

    view: View
    pdocument: PDocument
    #: original node Id n -> Pr(n ∈ v(P̂)) — the ind-edge probabilities.
    selection: dict[int, Fraction]
    #: original node Id n -> Id (in P̂_v) of the copy of n that roots its
    #: own result subtree.
    subtree_roots: dict[int, int]
    #: the Id-free replacement of the paper's ``Id(n)`` markers: copy ↔
    #: original maps, per-copy holders and canonical rank paths, all
    #: outside the tree (:mod:`repro.views.provenance`).  Pinning a
    #: pattern node to a copy-Id set (:meth:`occurrence_copies`) is
    #: equivalent to requiring an ``Id(n)`` marker child, and it keeps
    #: per-candidate goal tables identical so anchored evaluations share
    #: canonical store keys.
    provenance: ProvenanceTable = field(default_factory=ProvenanceTable)
    #: lazily built cache of result p-subdocuments; rewriting plans request
    #: the same holder's subdocument once per candidate below it, and each
    #: build is a deep copy.
    _subdocuments: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def occurrences(self) -> dict[int, set[int]]:
        """original node Id n -> set of selected Ids m such that the result
        subtree of m contains an occurrence of n (provenance-derived)."""
        return self.provenance.occurrence_index

    @property
    def copies(self) -> dict[int, list[int]]:
        """original node Id n -> Ids (in P̂_v) of *all* copies of n, across
        every result subtree (provenance-derived)."""
        return self.provenance.copy_index

    def selected_ids(self) -> list[int]:
        return sorted(self.selection)

    def result_subdocument(self, original_id: int) -> PDocument:
        """``P̂_v^{n}``: the p-subdocument rooted at ``n``'s own result copy.

        Cached per holder: repeated requests return the same
        :class:`PDocument` object, so session-level memos keyed on it
        survive across the candidates of a plan evaluation.
        """
        cached = self._subdocuments.get(original_id)
        if cached is None:
            cached = self._subdocuments[original_id] = self.pdocument.subdocument(
                self.subtree_roots[original_id]
            )
        return cached

    def occurrence_copies(
        self, original_id: int, within: Optional[PDocument] = None
    ) -> tuple[int, ...]:
        """Ids of the copies of ``original_id``, optionally restricted to
        the nodes of ``within`` (a :meth:`result_subdocument`, which
        preserves extension Ids).  Empty when the node was never copied —
        a pattern anchored to the empty set cannot match, exactly like a
        legacy marker pattern with no ``Id(n)`` node in the document."""
        ids = self.provenance.copies_of(original_id)
        if within is not None:
            return tuple(cid for cid in ids if within.has_node(cid))
        return ids

    def selected_ancestors_or_self(self, original_id: int) -> list[int]:
        """Selected nodes whose result subtree contains ``original_id``,
        ordered top-down (outermost ancestor first).

        This is exactly the list ``n_1, ..., n_a`` of §4 ("the
        ancestor-or-self nodes of n that are selected by v"), recovered
        from the extension's provenance table.
        """
        occurrences = self.provenance.occurrence_index
        holders = occurrences.get(original_id, set())
        # A selected node m1 is an ancestor-or-self of m2 iff m1's result
        # subtree contains an occurrence of m2; the topmost holder is thus
        # contained in the fewest holders (only itself).
        return sorted(
            holders,
            key=lambda m: (len(occurrences.get(m, set()) & holders), m),
        )

    def nodes_between(self, ancestor_id: int, descendant_id: int) -> int:
        """``s(i, j)``: the count of ordinary nodes from ``n_i`` down to
        ``n_j`` inclusive, measured inside ``n_i``'s result subtree.

        Provenance-derived: the unique copy of ``n_j`` inside ``n_i``'s
        result subtree is looked up in the table and its ancestor chain
        walked up to the subtree root — no marker scan.
        """
        copy_id = self.provenance.copy_within(ancestor_id, descendant_id)
        if copy_id is None:
            raise KeyError(
                f"node {descendant_id} does not occur below {ancestor_id}"
            )
        stop = self.subtree_roots[ancestor_id]
        count = 0
        current: Optional[PNode] = self.pdocument.node(copy_id)
        while current is not None:
            if current.is_ordinary:
                count += 1
            if current.node_id == stop:
                break
            current = current.parent
        return count


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def deterministic_extension(d: Document, view: View) -> DeterministicViewExtension:
    """Build ``d_v`` (copy semantics: fresh Ids, identity via provenance)."""
    fresh = itertools.count(1)
    root = DocNode(0, view.doc_label)
    subtree_roots: dict[int, int] = {}
    provenance = ProvenanceTable()
    for selected in sorted(evaluate_deterministic(view.pattern, d)):
        copy = _copy_doc(d.node(selected), fresh, selected, provenance)
        root.add_child(copy)
        subtree_roots[selected] = copy.node_id
    extension = DeterministicViewExtension(
        view, Document(root), subtree_roots, provenance
    )
    provenance.bind(extension.document)
    return extension


def _copy_doc(source, fresh, holder: int, provenance: ProvenanceTable) -> DocNode:
    copy = DocNode(next(fresh), source.label)
    provenance.record(source.node_id, copy.node_id, holder)
    for child in source.children:
        copy.add_child(_copy_doc(child, fresh, holder, provenance))
    return copy


def probabilistic_extension(
    p: PDocument,
    view: View,
    backend: BackendLike = "exact",
    session: Optional[QuerySession] = None,
) -> ProbabilisticViewExtension:
    """Build ``P̂_v`` per §3.1 (ind-bundled result subtrees, Id-free).

    The view's selection probabilities are computed by the single-pass
    engine in the given numeric backend; with ``"fast"`` the extension's
    ind-edge probabilities are floats instead of exact Fractions.

    Original identity is recorded in the returned extension's provenance
    table rather than as ``Id(n)`` marker nodes, so every copied result
    subtree is *structurally identical* to the base subtree it copies:
    unchanged subtrees keep their base-document Merkle digests, and
    extensions of isomorphic base documents share memo-store entries on
    their first, cold evaluation.

    ``session`` may supply a caller-owned :class:`QuerySession` over ``p``
    (its backend then wins): materializing several views through one
    session shares per-subtree work between their selection queries.
    """
    if session is not None:
        if session.p is not p:
            raise PDocumentError(
                "probabilistic_extension: session is bound to a different "
                "p-document"
            )
        answer = session.answer(view.pattern)
    else:
        answer = query_answer(p, view.pattern, backend=backend)
    fresh = itertools.count(1)
    root = PNode(0, PNodeKind.ORDINARY, view.doc_label)
    bundle = PNode(next(fresh), PNodeKind.IND)
    subtree_roots: dict[int, int] = {}
    provenance = ProvenanceTable()
    for selected in sorted(answer):
        copy = _copy_pnode(p.node(selected), fresh, selected, provenance)
        bundle.add_child(copy, answer[selected])
        subtree_roots[selected] = copy.node_id
    if subtree_roots:
        root.add_child(bundle)
    extension = ProbabilisticViewExtension(
        view=view,
        pdocument=PDocument(root),
        selection=dict(answer),
        subtree_roots=subtree_roots,
        provenance=provenance,
    )
    provenance.bind(extension.pdocument)
    return extension


def _copy_pnode(
    source: PNode,
    fresh,
    holder: int,
    provenance: ProvenanceTable,
) -> PNode:
    copy = PNode(next(fresh), source.kind, source.label)
    if source.is_ordinary:
        provenance.record(source.node_id, copy.node_id, holder)
    for child in source.children:
        probability = (
            source.probabilities[child.node_id]
            if source.probabilities is not None
            else None
        )
        copy.add_child(
            _copy_pnode(child, fresh, holder, provenance),
            probability,
        )
    return copy


# ----------------------------------------------------------------------
# Legacy marker anchoring (deprecated)
# ----------------------------------------------------------------------
def anchor_via_marker(pattern: TreePattern, original_id: int) -> TreePattern:
    """Pin a pattern's output node via a legacy ``Id(n)`` marker child.

    **Deprecated.**  Id-free extensions contain no marker nodes, so the
    returned pattern can only match legacy marker-bearing documents.  Pin
    the node through engine anchor sets instead — e.g. ::

        boolean_probability(
            ext.pdocument, q, anchors={q.out: ext.occurrence_copies(n)}
        )

    which is equivalent on marker-bearing documents, works on Id-free
    ones, and keeps the goal table candidate-independent so anchored
    evaluations share canonical store keys.
    """
    warnings.warn(
        "anchor_via_marker is deprecated: Id-free extensions contain no "
        "marker nodes — pin pattern nodes to provenance anchor sets "
        "instead (anchors={q.out: extension.occurrence_copies(n)})",
        DeprecationWarning,
        stacklevel=2,
    )
    copied, mapping = pattern.copy_with_mapping()
    out = mapping[id(pattern.out)]
    out.add_child(PatternNode(_marker_label(original_id), Axis.CHILD))
    return copied
