"""View extensions: bundling a view's results into one (p-)document (§3, §3.1).

Probabilistic extensions ``P̂_v`` are built exactly as in the paper: a root
labeled ``doc(v)``, one ``ind`` child, and below it — for every pair
``(n, p) ∈ v(P̂)`` — a copy of the p-subdocument ``P̂_n`` attached with
probability ``p``.  Every copied ordinary node additionally receives a fresh
child labeled ``Id(n)`` exposing its original identity (the paper's
post-processing step, needed to locate the multiple occurrences of a node in
the extension).

Everything a rewriting's probability function ``f_r`` may legitimately use is
available from the :class:`ProbabilisticViewExtension` object alone: the
extension p-document, the per-subtree selection probabilities (readable off
the ``ind`` edges), and occurrence/containment information derived from the
markers.  ``f_r`` implementations in :mod:`repro.rewrite` receive only this
object — never the original document.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..errors import PDocumentError
from ..probability import BackendLike
from ..prob.engine import query_answer
from ..prob.session import QuerySession
from ..pxml.pdocument import PDocument, PNode, PNodeKind
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern
from ..xml.document import DocNode, Document
from .view import View, marker_label

__all__ = [
    "DeterministicViewExtension",
    "ProbabilisticViewExtension",
    "deterministic_extension",
    "probabilistic_extension",
    "anchor_via_marker",
]


@dataclass
class DeterministicViewExtension:
    """``d_v``: the deterministic extension of a view over a document."""

    view: View
    document: Document
    #: original selected node Id -> Id of its copy directly under doc(v)
    subtree_roots: dict[int, int]


@dataclass
class ProbabilisticViewExtension:
    """``P̂_v``: the probabilistic extension of a view over a p-document."""

    view: View
    pdocument: PDocument
    #: original node Id n -> Pr(n ∈ v(P̂)) — the ind-edge probabilities.
    selection: dict[int, Fraction]
    #: original node Id n -> Id (in P̂_v) of the copy of n that roots its
    #: own result subtree.
    subtree_roots: dict[int, int]
    #: original node Id n -> set of selected Ids m such that the result
    #: subtree of m contains an occurrence of n (derived from markers).
    occurrences: dict[int, set[int]]
    #: original node Id n -> Ids (in P̂_v) of *all* copies of n, across
    #: every result subtree.  The engine-anchor form of the paper's
    #: ``Id(n)``-marker device: pinning a pattern node to this Id set is
    #: equivalent to requiring an ``Id(n)`` marker child, and it keeps
    #: per-candidate goal tables identical so anchored evaluations share
    #: canonical store keys.
    copies: dict[int, list[int]] = field(default_factory=dict)
    #: lazily built cache of result p-subdocuments; rewriting plans request
    #: the same holder's subdocument once per candidate below it, and each
    #: build is a deep copy.
    _subdocuments: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def selected_ids(self) -> list[int]:
        return sorted(self.selection)

    def result_subdocument(self, original_id: int) -> PDocument:
        """``P̂_v^{n}``: the p-subdocument rooted at ``n``'s own result copy.

        Cached per holder: repeated requests return the same
        :class:`PDocument` object, so session-level memos keyed on it
        survive across the candidates of a plan evaluation.
        """
        cached = self._subdocuments.get(original_id)
        if cached is None:
            cached = self._subdocuments[original_id] = self.pdocument.subdocument(
                self.subtree_roots[original_id]
            )
        return cached

    def occurrence_copies(
        self, original_id: int, within: Optional[PDocument] = None
    ) -> tuple[int, ...]:
        """Ids of the copies of ``original_id``, optionally restricted to
        the nodes of ``within`` (a :meth:`result_subdocument`, which
        preserves extension Ids).  Empty when the node was never copied —
        a pattern anchored to the empty set cannot match, exactly like a
        marker pattern with no ``Id(n)`` node in the document."""
        ids = self.copies.get(original_id, ())
        if within is not None:
            return tuple(cid for cid in ids if within.has_node(cid))
        return tuple(ids)

    def selected_ancestors_or_self(self, original_id: int) -> list[int]:
        """Selected nodes whose result subtree contains ``original_id``,
        ordered top-down (outermost ancestor first).

        This is exactly the list ``n_1, ..., n_a`` of §4 ("the
        ancestor-or-self nodes of n that are selected by v"), recovered from
        the extension itself via the markers.
        """
        holders = self.occurrences.get(original_id, set())
        # A selected node m1 is an ancestor-or-self of m2 iff m1's result
        # subtree contains an occurrence of m2; the topmost holder is thus
        # contained in the fewest holders (only itself).
        return sorted(
            holders,
            key=lambda m: (len(self.occurrences.get(m, set()) & holders), m),
        )

    def nodes_between(self, ancestor_id: int, descendant_id: int) -> int:
        """``s(i, j)``: the count of ordinary nodes from ``n_i`` down to
        ``n_j`` inclusive, measured inside ``n_i``'s result subtree."""
        sub = self.result_subdocument(ancestor_id)
        marker = marker_label(descendant_id)
        target = None
        for node in sub.ordinary_nodes():
            if node.label == marker:
                target = node.parent
                break
        if target is None:
            raise KeyError(
                f"node {descendant_id} does not occur below {ancestor_id}"
            )
        count = 0
        current = target
        while current is not None:
            if current.is_ordinary:
                count += 1
            current = current.parent
        return count


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def deterministic_extension(d: Document, view: View) -> DeterministicViewExtension:
    """Build ``d_v`` (copy semantics: fresh Ids, identity via markers)."""
    fresh = itertools.count(1)
    root = DocNode(0, view.doc_label)
    subtree_roots: dict[int, int] = {}
    for selected in sorted(evaluate_deterministic(view.pattern, d)):
        copy = _copy_doc_with_markers(d.node(selected), fresh)
        root.add_child(copy)
        subtree_roots[selected] = copy.node_id
    return DeterministicViewExtension(view, Document(root), subtree_roots)


def _copy_doc_with_markers(source, fresh) -> DocNode:
    copy = DocNode(next(fresh), source.label)
    copy.add_child(DocNode(next(fresh), marker_label(source.node_id)))
    for child in source.children:
        copy.add_child(_copy_doc_with_markers(child, fresh))
    return copy


def probabilistic_extension(
    p: PDocument,
    view: View,
    backend: BackendLike = "exact",
    session: Optional[QuerySession] = None,
) -> ProbabilisticViewExtension:
    """Build ``P̂_v`` per §3.1 (ind-bundled result subtrees + Id markers).

    The view's selection probabilities are computed by the single-pass
    engine in the given numeric backend; with ``"fast"`` the extension's
    ind-edge probabilities are floats instead of exact Fractions.

    ``session`` may supply a caller-owned :class:`QuerySession` over ``p``
    (its backend then wins): materializing several views through one
    session shares per-subtree work between their selection queries.
    """
    if session is not None:
        if session.p is not p:
            raise PDocumentError(
                "probabilistic_extension: session is bound to a different "
                "p-document"
            )
        answer = session.answer(view.pattern)
    else:
        answer = query_answer(p, view.pattern, backend=backend)
    fresh = itertools.count(1)
    root = PNode(0, PNodeKind.ORDINARY, view.doc_label)
    bundle = PNode(next(fresh), PNodeKind.IND)
    subtree_roots: dict[int, int] = {}
    occurrences: dict[int, set[int]] = {}
    copies: dict[int, list[int]] = {}
    for selected in sorted(answer):
        copy = _copy_pnode_with_markers(
            p.node(selected), fresh, selected, occurrences, copies
        )
        bundle.add_child(copy, answer[selected])
        subtree_roots[selected] = copy.node_id
    if subtree_roots:
        root.add_child(bundle)
    return ProbabilisticViewExtension(
        view=view,
        pdocument=PDocument(root),
        selection=dict(answer),
        subtree_roots=subtree_roots,
        occurrences=occurrences,
        copies=copies,
    )


def _copy_pnode_with_markers(
    source: PNode,
    fresh,
    holder: int,
    occurrences: dict[int, set[int]],
    copies: dict[int, list[int]],
) -> PNode:
    copy = PNode(next(fresh), source.kind, source.label)
    if source.is_ordinary:
        occurrences.setdefault(source.node_id, set()).add(holder)
        copies.setdefault(source.node_id, []).append(copy.node_id)
        copy.add_child(PNode(next(fresh), PNodeKind.ORDINARY, marker_label(source.node_id)))
    for child in source.children:
        probability = (
            source.probabilities[child.node_id]
            if source.probabilities is not None
            else None
        )
        copy.add_child(
            _copy_pnode_with_markers(child, fresh, holder, occurrences, copies),
            probability,
        )
    return copy


# ----------------------------------------------------------------------
# Marker anchoring
# ----------------------------------------------------------------------
def anchor_via_marker(pattern: TreePattern, original_id: int) -> TreePattern:
    """Pin a pattern's output node to an original node inside an extension.

    Returns a copy of ``pattern`` whose output node gains a ``/``-child with
    label ``Id(original_id)`` — the paper's device for identifying the
    multiple occurrences of a node in view outputs.
    """
    copied, mapping = pattern.copy_with_mapping()
    out = mapping[id(pattern.out)]
    out.add_child(PatternNode(marker_label(original_id), Axis.CHILD))
    return copied
