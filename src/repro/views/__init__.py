"""Views and their (deterministic / probabilistic) extensions (paper §3, §3.1)."""

from .view import View, doc_label, marker_label, parse_marker_label
from .extension import (
    DeterministicViewExtension,
    ProbabilisticViewExtension,
    deterministic_extension,
    probabilistic_extension,
    anchor_via_marker,
)

__all__ = [
    "View",
    "doc_label",
    "marker_label",
    "parse_marker_label",
    "DeterministicViewExtension",
    "ProbabilisticViewExtension",
    "deterministic_extension",
    "probabilistic_extension",
    "anchor_via_marker",
]
