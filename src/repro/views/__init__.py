"""Views and their (deterministic / probabilistic) extensions (paper §3, §3.1).

Extensions are **Id-free**: original node identity lives in a provenance
side table (:mod:`repro.views.provenance`), not in ``Id(n)`` marker
nodes; ``marker_label`` / ``anchor_via_marker`` survive only as
deprecated legacy shims.
"""

from .view import View, doc_label, marker_label, parse_marker_label
from .provenance import ProvenanceTable
from .extension import (
    DeterministicViewExtension,
    ProbabilisticViewExtension,
    deterministic_extension,
    probabilistic_extension,
    anchor_via_marker,
)

__all__ = [
    "View",
    "doc_label",
    "marker_label",
    "parse_marker_label",
    "ProvenanceTable",
    "DeterministicViewExtension",
    "ProbabilisticViewExtension",
    "deterministic_extension",
    "probabilistic_extension",
    "anchor_via_marker",
]
