"""Provenance layer for view extensions: identity *beside* the tree.

The paper's §3.1 construction exposes original node identity by planting
a fresh ``Id(n)`` marker child under every copied node.  That bakes
*identity* into *structure*: extensions built over isomorphic base
documents get distinct Merkle digests (every marker label names a
concrete original Id) and never share content-addressed memo entries —
exactly where the structural store should pay off most.  Following the
structural-sharing line of work (Amarilli, "Structurally Tractable
Uncertain Data"; Amarilli–Bourhis–Senellart, "Tractable Lineages on
Treelike Instances"), tractability and reuse come from *shape*, so
identity must live outside the tree.

This module is that outside place.  A :class:`ProvenanceTable` is a side
table carried by every extension, recording for each copied node

* which **original** node it is a copy of (``original_of``),
* which **holder** (selected original) roots the result subtree it lives
  in (``holder_of``), and
* the **canonical rank path** locating it inside the extension document
  (:meth:`rank_path` — reusing :func:`repro.store.digest.
  compute_positions`), an isomorphism-*invariant* coordinate: equal rank
  paths in digest-equal extensions name corresponding nodes.

The ``Id(n)``-equivalent anchoring device becomes "pin this pattern node
to this Id set": :meth:`copies_of` / :meth:`ProbabilisticViewExtension.
occurrence_copies` feed engine anchor sets
(:data:`repro.prob.engine.AnchorsLike`), which the evaluation engine and
the canonical anchor-position store keys already support — with zero
structural residue in the extension document itself.

Legacy marker-bearing documents (e.g. re-parsed from old SQLite-warmed
runs or serialized extensions) are still *readable*:
:meth:`ProvenanceTable.from_markers` decodes the markers through the one
sanctioned shim (:func:`repro.views.view.parse_marker_label`) into an
equivalent table.  Marker-bearing and marker-free extensions have
different structural digests by construction (the marker children are
extra nodes), so old store entries can never be silently mis-shared with
Id-free ones — they simply stop matching.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import PDocumentError

__all__ = ["ProvenanceTable"]


class ProvenanceTable:
    """Copy provenance of one view extension (the ``Id(n)`` replacement).

    Built incrementally by the marker-free extension builders
    (:func:`repro.views.extension.probabilistic_extension` /
    :func:`~repro.views.extension.deterministic_extension`): one
    :meth:`record` call per copied ordinary node, then one :meth:`bind`
    call attaching the finished extension document (rank paths are
    derived from it lazily).
    """

    __slots__ = ("_copies", "_originals", "_holders", "_occurrences", "document")

    def __init__(self, document=None) -> None:
        #: original Id -> copy Ids, in holder (top-down selection) order.
        self._copies: dict[int, list[int]] = {}
        #: copy Id -> original Id.
        self._originals: dict[int, int] = {}
        #: copy Id -> holder: the selected original whose result subtree
        #: contains the copy.
        self._holders: dict[int, int] = {}
        #: original Id -> holders whose result subtree contains a copy of
        #: it (the paper's occurrence information, §4).
        self._occurrences: dict[int, set[int]] = {}
        #: the extension (p-)document, attached by :meth:`bind`.
        self.document = document

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def record(self, original_id: int, copy_id: int, holder: int) -> None:
        """Register that ``copy_id`` is the copy of ``original_id`` inside
        ``holder``'s result subtree."""
        self._copies.setdefault(original_id, []).append(copy_id)
        self._originals[copy_id] = original_id
        self._holders[copy_id] = holder
        self._occurrences.setdefault(original_id, set()).add(holder)

    def bind(self, document) -> "ProvenanceTable":
        """Attach the finished extension document (enables rank paths)."""
        self.document = document
        return self

    # ------------------------------------------------------------------
    # Identity queries (the Id(n) device, Id-free)
    # ------------------------------------------------------------------
    def copies_of(self, original_id: int) -> tuple[int, ...]:
        """Ids of *all* copies of ``original_id`` across result subtrees.

        Empty when the node was never copied — a pattern anchored to the
        empty set cannot match, exactly like a marker pattern with no
        ``Id(n)`` node in the document.
        """
        return tuple(self._copies.get(original_id, ()))

    def original_of(self, copy_id: int) -> Optional[int]:
        """The original node a copy stands for; ``None`` for non-copies
        (the ``doc(v)`` root, the ``ind`` bundle)."""
        return self._originals.get(copy_id)

    def holder_of(self, copy_id: int) -> Optional[int]:
        """The selected original whose result subtree holds ``copy_id``."""
        return self._holders.get(copy_id)

    def occurrences_of(self, original_id: int) -> frozenset:
        """Holders whose result subtree contains a copy of ``original_id``."""
        return frozenset(self._occurrences.get(original_id, ()))

    def copy_within(self, holder: int, original_id: int) -> Optional[int]:
        """The unique copy of ``original_id`` inside ``holder``'s result
        subtree, or ``None`` when the original does not occur below it."""
        for copy_id in self._copies.get(original_id, ()):
            if self._holders.get(copy_id) == holder:
                return copy_id
        return None

    def originals_of(self, copy_ids: Iterable[int]) -> set[int]:
        """Map extension node Ids back to original Ids (non-copies skipped).

        The marker-free form of candidate extraction: where the rewrite
        layer used to scan ``Id(n)`` marker children of the selected
        nodes, it now resolves the selected copies through this table.
        """
        originals: set[int] = set()
        for copy_id in copy_ids:
            original = self._originals.get(copy_id)
            if original is not None:
                originals.add(original)
        return originals

    # Mapping views used by the extension object's back-compat surface.
    @property
    def occurrence_index(self) -> dict[int, set[int]]:
        """``original Id -> set of holders`` (live, do not mutate)."""
        return self._occurrences

    @property
    def copy_index(self) -> dict[int, list[int]]:
        """``original Id -> copy Ids`` (live, do not mutate)."""
        return self._copies

    def __len__(self) -> int:
        return len(self._originals)

    # ------------------------------------------------------------------
    # Canonical rank paths (isomorphism-invariant coordinates)
    # ------------------------------------------------------------------
    def rank_path(self, copy_id: int) -> tuple:
        """The canonical rank path of a copy inside the extension document.

        Rank paths (:func:`repro.store.digest.compute_positions`, served
        from the document's epoch-cached
        :meth:`~repro.pxml.pdocument.PDocument.anchor_index`) order
        siblings by digest sort key, so they are invariant under
        isomorphism: the twin of an extension assigns the *same* path to
        the corresponding copy even though every node Id differs.  They
        are the Id-free serialization coordinate — what a wire format or
        a cross-process anchor exchange should name instead of node Ids.
        """
        document = self.document
        if document is None or not hasattr(document, "anchor_index"):
            raise PDocumentError(
                "provenance table is not bound to a p-document; rank paths "
                "need the extension's anchor index"
            )
        return document.anchor_index()[copy_id]

    def anchor_positions(self, original_id: int) -> tuple[tuple, ...]:
        """Sorted canonical rank paths of every copy of ``original_id``.

        The fully Id-free form of the ``Id(n)`` device: two isomorphic
        extensions agree on these tuples for corresponding originals, so
        they key anchored store entries identically
        (:class:`repro.store.keys.SubtreeKeyer`).
        """
        return tuple(
            sorted(self.rank_path(copy_id) for copy_id in self.copies_of(original_id))
        )

    # ------------------------------------------------------------------
    # Legacy decode
    # ------------------------------------------------------------------
    @classmethod
    def from_markers(cls, pdocument) -> "ProvenanceTable":
        """Decode a legacy marker-bearing extension p-document.

        Walks the §3.1 shape — ``doc(v)`` root, one ``ind`` bundle, one
        result subtree per selected node — and rebuilds the provenance
        table from the ``Id(n)`` marker children via the sanctioned
        legacy shim (:func:`repro.views.view.parse_marker_label`).  The
        marker nodes themselves are *not* recorded as copies.
        """
        from .view import parse_marker_label

        table = cls(pdocument)
        marker_ids = {
            node.node_id
            for node in pdocument.ordinary_nodes()
            if node.label is not None
            and parse_marker_label(node.label) is not None
        }
        for bundle in pdocument.root.children:
            for subtree_root in bundle.children:
                holder: Optional[int] = None
                for child in subtree_root.children:
                    decoded = (
                        parse_marker_label(child.label)
                        if child.label is not None
                        else None
                    )
                    if decoded is not None:
                        holder = decoded
                        break
                if holder is None:
                    continue
                for node in subtree_root.iter_subtree():
                    if not node.is_ordinary or node.node_id in marker_ids:
                        continue
                    original = next(
                        (
                            decoded
                            for child in node.children
                            if child.label is not None
                            and (decoded := parse_marker_label(child.label))
                            is not None
                        ),
                        None,
                    )
                    if original is not None:
                        table.record(original, node.node_id, holder)
        return table
