"""Views: named tree-pattern queries (paper §3).

A view is a TP query together with a name drawn from a set ``V`` disjoint
from the label alphabet.  Its extension over a document is rooted at the
special label ``doc(v)``; original node identity is exposed through fresh
``Id(n)`` marker children (paper §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tp.pattern import TreePattern

__all__ = ["View", "doc_label", "marker_label", "parse_marker_label"]


def doc_label(view_name: str) -> str:
    """The special root label ``doc(v)`` of a view extension."""
    return f"doc({view_name})"


def marker_label(original_node_id: int) -> str:
    """The fresh label ``Id(n)`` marking an occurrence of original node ``n``."""
    return f"Id({original_node_id})"


def parse_marker_label(label: str) -> int | None:
    """Inverse of :func:`marker_label`; ``None`` if the label is not a marker."""
    if label.startswith("Id(") and label.endswith(")"):
        try:
            return int(label[3:-1])
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class View:
    """A named view.

    Attributes:
        name: the view name from ``V``.
        pattern: the TP query defining the view.
    """

    name: str
    pattern: TreePattern = field(compare=False)

    @property
    def doc_label(self) -> str:
        return doc_label(self.name)

    def __repr__(self) -> str:
        return f"View({self.name}: {self.pattern.xpath()})"
