"""Views: named tree-pattern queries (paper §3).

A view is a TP query together with a name drawn from a set ``V`` disjoint
from the label alphabet.  Its extension over a document is rooted at the
special label ``doc(v)``; original node identity is exposed through a
*provenance* side table (:mod:`repro.views.provenance`) instead of the
paper's structural ``Id(n)`` marker children — extensions are Id-free,
so isomorphic base documents yield digest-identical extensions that
share content-addressed memo entries.

**Legacy markers.**  The §3.1 marker scheme survives only as a decode
shim: :func:`parse_marker_label` recognizes ``Id(n)`` labels in old
marker-bearing documents (e.g. serialized extensions from pre-Id-free
runs) and is the *single* place in the production code that knows the
marker prefix.  :func:`marker_label` still produces the legacy label but
is deprecated — new code pins pattern nodes to provenance anchor sets
(:meth:`repro.views.extension.ProbabilisticViewExtension.
occurrence_copies`, :meth:`repro.views.provenance.ProvenanceTable.
anchor_positions`) instead of planting marker nodes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..tp.pattern import TreePattern

__all__ = ["View", "doc_label", "marker_label", "parse_marker_label"]


def doc_label(view_name: str) -> str:
    """The special root label ``doc(v)`` of a view extension."""
    return f"doc({view_name})"


def _marker_label(original_node_id: int) -> str:
    """The legacy ``Id(n)`` label (internal; no deprecation warning)."""
    return f"Id({original_node_id})"


def marker_label(original_node_id: int) -> str:
    """The legacy ``Id(n)`` marker label.  **Deprecated.**

    Extensions are Id-free: identity lives in the provenance side table,
    not in marker nodes.  Pin pattern nodes to provenance anchor sets
    (``ProbabilisticViewExtension.occurrence_copies`` /
    ``ProvenanceTable.anchor_positions``) instead of matching ``Id(n)``
    labels; this helper remains only for writing legacy-format documents.
    """
    warnings.warn(
        "marker_label is deprecated: extensions are Id-free — pin pattern "
        "nodes to provenance anchor sets (ProbabilisticViewExtension."
        "occurrence_copies / ProvenanceTable.anchor_positions) instead of "
        "matching Id(n) marker nodes",
        DeprecationWarning,
        stacklevel=2,
    )
    return _marker_label(original_node_id)


def parse_marker_label(label: str) -> int | None:
    """Decode a legacy ``Id(n)`` marker label; ``None`` if not a marker.

    The one sanctioned legacy shim: marker-bearing documents written by
    pre-Id-free versions still *parse* through it (see
    :meth:`repro.views.provenance.ProvenanceTable.from_markers`), and any
    remaining marker-label sniffing must route through this function
    rather than re-deriving the prefix.  Marker-bearing and Id-free
    extensions have different structural digests by construction, so the
    two generations can never silently share store entries.
    """
    if label.startswith("Id(") and label.endswith(")"):
        try:
            return int(label[3:-1])
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class View:
    """A named view.

    Attributes:
        name: the view name from ``V``.
        pattern: the TP query defining the view.
    """

    name: str
    pattern: TreePattern = field(compare=False)

    @property
    def doc_label(self) -> str:
        return doc_label(self.name)

    def __repr__(self) -> str:
        return f"View({self.name}: {self.pattern.xpath()})"
