"""A view cache with automatic rewriting — the paper's optimization story.

``RewritingCache`` materializes probabilistic view extensions once and then
answers TP queries from the cache whenever the paper's machinery proves it
possible, trying in order:

1. single-view probabilistic TP-rewritings (``TPrewrite``, §4);
2. multi-view TP∩-rewritings through the canonical plan and the ``S(q, V)``
   system (``TPIrewrite``, §5);
3. optionally, direct evaluation over the base p-document (disabled when
   the cache is *strict*, e.g. when the base document is no longer
   available — the situation Definition 4 models).

The cache owns one :class:`repro.prob.session.QuerySession` over the base
p-document for its whole lifetime: view materializations and direct
evaluations share the session's structural subtree memo (one
:class:`repro.store.MemoStore`, persistable across restarts via
``store=SqliteStore(path)``), and
:meth:`RewritingCache.answer_many` evaluates a whole workload batch of
direct-path queries in a single shared traversal.  Rewriting plans are
built with the cache's numeric backend, so ``backend="fast"`` flows into
the plans' numerators, denominators and α-pattern evaluations too.

Every answer records which strategy produced it, and :meth:`RewritingCache.
stats` exposes per-source hit counts plus the session counters, so the
cache doubles as an instrument for the cost experiments in
``benchmarks/``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Union

import weakref

from .errors import NoRewritingError, UnknownViewError
from .obs.registry import Sample, get_registry
from .probability import BackendLike, get_backend
from .prob.session import QuerySession
from .pxml.pdocument import PDocument
from .store import MemoStore
from .rewrite.multi_view import tpi_rewrite
from .rewrite.single_view import probabilistic_tp_plan
from .tp.pattern import TreePattern
from .views.extension import ProbabilisticViewExtension, probabilistic_extension
from .views.view import View

__all__ = ["AnswerSource", "CachedAnswer", "RewritingCache"]


class AnswerSource(enum.Enum):
    """How an answer was obtained."""

    SINGLE_VIEW = "single-view rewriting"
    MULTI_VIEW = "multi-view rewriting"
    DIRECT = "direct evaluation"


@dataclass
class CachedAnswer:
    """An answer together with its provenance.

    Probability values are in the cache backend's domain —
    :class:`Fraction` for ``exact``, ``float`` for ``fast``.
    """

    answer: dict[int, Union[Fraction, float]]
    source: AnswerSource
    plan_description: str = ""


class RewritingCache:
    """Materialized views over one p-document, with automatic rewriting.

    Args:
        p: the base p-document (kept only when ``strict`` is false).
        strict: when true, queries that admit no probabilistic rewriting
            raise :class:`NoRewritingError` instead of falling back to
            direct evaluation — extensions are then the *only* data source,
            exactly the access model of Definition 4.
        backend: numeric backend (name or instance) used whenever the
            cache evaluates probabilities — materializing extensions,
            rewriting-plan probability functions, and direct evaluation.
            ``"exact"`` (default) keeps everything bit-exact; ``"fast"``
            trades exactness for float throughput.
        store: optional :class:`repro.store.MemoStore` backing the
            cache's session — view materialization and direct answers
            then share one structural memo, and a
            :class:`repro.store.SqliteStore` makes it survive restarts.
        anchored_store: content-address anchored evaluations under
            canonical anchor-position keys (default) — the rewriting
            plans' per-extension sessions then share anchored Theorem-1/2
            entries with the base document's store.  ``False`` restores
            the node-keyed local memos (the baseline measured by
            ``benchmarks/bench_anchored.py``).
    """

    def __init__(
        self,
        p: PDocument,
        strict: bool = False,
        backend: BackendLike = "exact",
        store: Optional[MemoStore] = None,
        anchored_store: bool = True,
    ) -> None:
        self._p: Optional[PDocument] = None if strict else p
        self._build_source = p
        self.strict = strict
        self.backend = get_backend(backend)
        self.anchored_store = anchored_store
        self._session = QuerySession(
            p, backend=self.backend, store=store, anchored_store=anchored_store
        )
        self._views: dict[str, View] = {}
        self._extensions: dict[str, ProbabilisticViewExtension] = {}
        self._source_counts: dict[AnswerSource, int] = {
            source: 0 for source in AnswerSource
        }
        _LIVE_CACHES.add(self)
        weakref.finalize(self, _retire_cache_counts, self._source_counts)

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    def materialize(self, view: View) -> ProbabilisticViewExtension:
        """Evaluate the view over the base document and cache its extension.

        Runs through the cache's query session, so several
        ``materialize`` calls share per-subtree evaluation work.
        """
        if view.name in self._views:
            raise ValueError(f"view {view.name!r} is already materialized")
        extension = probabilistic_extension(
            self._build_source, view, session=self._session
        )
        self._views[view.name] = view
        self._extensions[view.name] = extension
        return extension

    def views(self) -> list[View]:
        return list(self._views.values())

    def extension(self, name: str) -> ProbabilisticViewExtension:
        return self._extensions[name]

    def drop(self, name: str) -> None:
        """Discard a materialized view and its extension.

        Raises:
            UnknownViewError: when no view of that name is materialized
                (also a :class:`KeyError`, wrapping the underlying lookup
                failure).
        """
        try:
            del self._views[name]
        except KeyError as exc:
            raise UnknownViewError(
                f"no materialized view named {name!r}; materialized views: "
                f"{sorted(self._views) or '(none)'}"
            ) from exc
        del self._extensions[name]

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, q: TreePattern) -> CachedAnswer:
        """Answer ``q`` from the cache, falling back per the cache policy.

        Raises:
            NoRewritingError: in strict mode, when no rewriting exists.
        """
        result = self._try_single_view(q)
        if result is None:
            result = self._try_multi_view(q)
        if result is None:
            if self._p is None:
                raise NoRewritingError(
                    f"no probabilistic rewriting of {q.xpath()} over "
                    f"{sorted(self._views)} and the cache is strict"
                )
            result = CachedAnswer(
                answer=self._session.answer(q),
                source=AnswerSource.DIRECT,
                plan_description="evaluated on the base p-document "
                f"({self.backend.name} backend, session single-pass engine)",
            )
        self._source_counts[result.source] += 1
        return result

    def answer_many(self, queries: Sequence[TreePattern]) -> list[CachedAnswer]:
        """Answer a whole workload batch, in input order.

        Queries that rewrite over the extensions are answered by their
        plans; all remaining (direct-path) queries are evaluated together
        in **one** shared session traversal of the base p-document with
        cross-query subtree memoization.

        Raises:
            NoRewritingError: in strict mode, as soon as any query of the
                batch admits no rewriting.
        """
        queries = list(queries)
        results: list[Optional[CachedAnswer]] = [None] * len(queries)
        direct_indices: list[int] = []
        for index, q in enumerate(queries):
            result = self._try_single_view(q)
            if result is None:
                result = self._try_multi_view(q)
            if result is not None:
                results[index] = result
            elif self._p is None:
                raise NoRewritingError(
                    f"no probabilistic rewriting of {q.xpath()} over "
                    f"{sorted(self._views)} and the cache is strict"
                )
            else:
                direct_indices.append(index)
        # Count sources only once the whole batch is known answerable, so a
        # strict-mode raise above leaves the instrumentation untouched.
        for result in results:
            if result is not None:
                self._source_counts[result.source] += 1
        if direct_indices:
            answers = self._session.answer_many(
                [queries[index] for index in direct_indices]
            )
            for index, answer in zip(direct_indices, answers):
                self._source_counts[AnswerSource.DIRECT] += 1
                results[index] = CachedAnswer(
                    answer=answer,
                    source=AnswerSource.DIRECT,
                    plan_description="batched direct evaluation "
                    f"({self.backend.name} backend, "
                    f"{len(direct_indices)} queries in one session pass)",
                )
        return results  # type: ignore[return-value]

    def answerable(self, q: TreePattern) -> bool:
        """Decision only: can ``q`` be answered from the extensions alone?"""
        if self._try_single_view(q, decide_only=True) is not None:
            return True
        return self._try_multi_view(q, decide_only=True) is not None

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-source answer counts plus the session's cache counters.

        Keys ``"SINGLE_VIEW"`` / ``"MULTI_VIEW"`` / ``"DIRECT"`` count the
        answers produced by each strategy (decisions via ``answerable``
        are not counted); ``"total"`` sums them; ``"session"`` is a
        snapshot of :class:`repro.prob.session.SessionStats` for the
        cache's base-document session; ``"store"`` holds the structural
        memo store's counters (``None`` when memoization is off);
        ``"anchored"`` aggregates the anchored hit/miss/put traffic —
        store-level counters cover every session sharing the store (the
        plans' per-extension sessions included), the session-level pair
        covers the base-document session alone.
        """
        counts = {
            source.name: count for source, count in self._source_counts.items()
        }
        counts["total"] = sum(self._source_counts.values())
        counts["session"] = self._session.stats.snapshot()
        store = self._session.store
        counts["store"] = store.stats() if store is not None else None
        counts["anchored"] = {
            "store_hits": store.anchored_hits if store is not None else 0,
            "store_misses": store.anchored_misses if store is not None else 0,
            "store_puts": store.anchored_puts if store is not None else 0,
            "session_hits": self._session.stats.anchored_hits,
            "session_misses": self._session.stats.anchored_misses,
        }
        return counts

    @property
    def session(self) -> QuerySession:
        """The cache-owned query session over the base p-document."""
        return self._session

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _try_single_view(
        self, q: TreePattern, decide_only: bool = False
    ) -> Optional[CachedAnswer]:
        for view in self._views.values():
            plan = probabilistic_tp_plan(
                q,
                view,
                backend=self.backend,
                store=self._session.store,
                anchored_store=self.anchored_store,
            )
            if plan is None:
                continue
            if decide_only:
                return CachedAnswer({}, AnswerSource.SINGLE_VIEW, plan.describe())
            return CachedAnswer(
                answer=plan.evaluate(self._extensions[view.name]),
                source=AnswerSource.SINGLE_VIEW,
                plan_description=plan.describe(),
            )
        return None

    def _try_multi_view(
        self, q: TreePattern, decide_only: bool = False
    ) -> Optional[CachedAnswer]:
        if not self._views:
            return None
        plan = tpi_rewrite(
            q,
            list(self._views.values()),
            self._extensions,
            backend=self.backend,
            store=self._session.store,
            anchored_store=self.anchored_store,
        )
        if plan is None:
            return None
        if decide_only:
            return CachedAnswer({}, AnswerSource.MULTI_VIEW, plan.description)
        return CachedAnswer(
            answer=plan.evaluate(),
            source=AnswerSource.MULTI_VIEW,
            plan_description=plan.description,
        )


#: Live caches feeding the process registry (pull collector): answer
#: counts stay plain ints per instance; the registry aggregates at read,
#: folding in the counts of garbage-collected caches (retired by a
#: finalizer that holds only the counts dict, never the cache).
_LIVE_CACHES: "weakref.WeakSet[RewritingCache]" = weakref.WeakSet()

_RETIRED_COUNTS: dict = {source: 0 for source in AnswerSource}


def _retire_cache_counts(counts: dict) -> None:
    for source, count in counts.items():
        _RETIRED_COUNTS[source] += count


def _collect_cache_samples():
    totals = dict(_RETIRED_COUNTS)
    for cache in list(_LIVE_CACHES):
        for source, count in cache._source_counts.items():
            totals[source] += count
    for source in AnswerSource:
        yield Sample(
            "repro_cache_answers_total",
            "counter",
            (("source", source.name.lower()),),
            totals[source],
            "answers produced per rewriting-cache strategy",
        )


get_registry().register_collector(_collect_cache_samples)
