"""A view cache with automatic rewriting — the paper's optimization story.

``RewritingCache`` materializes probabilistic view extensions once and then
answers TP queries from the cache whenever the paper's machinery proves it
possible, trying in order:

1. single-view probabilistic TP-rewritings (``TPrewrite``, §4);
2. multi-view TP∩-rewritings through the canonical plan and the ``S(q, V)``
   system (``TPIrewrite``, §5);
3. optionally, direct evaluation over the base p-document (disabled when
   the cache is *strict*, e.g. when the base document is no longer
   available — the situation Definition 4 models).

Every answer records which strategy produced it, so the cache doubles as an
instrument for the cost experiments in ``benchmarks/``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from .errors import NoRewritingError
from .probability import BackendLike, get_backend
from .prob.engine import query_answer
from .pxml.pdocument import PDocument
from .rewrite.multi_view import tpi_rewrite
from .rewrite.single_view import probabilistic_tp_plan
from .tp.pattern import TreePattern
from .views.extension import ProbabilisticViewExtension, probabilistic_extension
from .views.view import View

__all__ = ["AnswerSource", "CachedAnswer", "RewritingCache"]


class AnswerSource(enum.Enum):
    """How an answer was obtained."""

    SINGLE_VIEW = "single-view rewriting"
    MULTI_VIEW = "multi-view rewriting"
    DIRECT = "direct evaluation"


@dataclass
class CachedAnswer:
    """An answer together with its provenance.

    Probability values are in the cache backend's domain —
    :class:`Fraction` for ``exact``, ``float`` for ``fast``.
    """

    answer: dict[int, Union[Fraction, float]]
    source: AnswerSource
    plan_description: str = ""


class RewritingCache:
    """Materialized views over one p-document, with automatic rewriting.

    Args:
        p: the base p-document (kept only when ``strict`` is false).
        strict: when true, queries that admit no probabilistic rewriting
            raise :class:`NoRewritingError` instead of falling back to
            direct evaluation — extensions are then the *only* data source,
            exactly the access model of Definition 4.
        backend: numeric backend (name or instance) used when the cache
            evaluates probabilities itself — materializing extensions and
            direct evaluation.  ``"exact"`` (default) keeps everything
            bit-exact; ``"fast"`` trades exactness for float throughput.
    """

    def __init__(
        self,
        p: PDocument,
        strict: bool = False,
        backend: BackendLike = "exact",
    ) -> None:
        self._p: Optional[PDocument] = None if strict else p
        self._build_source = p
        self.strict = strict
        self.backend = get_backend(backend)
        self._views: dict[str, View] = {}
        self._extensions: dict[str, ProbabilisticViewExtension] = {}

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    def materialize(self, view: View) -> ProbabilisticViewExtension:
        """Evaluate the view over the base document and cache its extension."""
        if view.name in self._views:
            raise ValueError(f"view {view.name!r} is already materialized")
        extension = probabilistic_extension(
            self._build_source, view, backend=self.backend
        )
        self._views[view.name] = view
        self._extensions[view.name] = extension
        return extension

    def views(self) -> list[View]:
        return list(self._views.values())

    def extension(self, name: str) -> ProbabilisticViewExtension:
        return self._extensions[name]

    def drop(self, name: str) -> None:
        del self._views[name]
        del self._extensions[name]

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, q: TreePattern) -> CachedAnswer:
        """Answer ``q`` from the cache, falling back per the cache policy.

        Raises:
            NoRewritingError: in strict mode, when no rewriting exists.
        """
        single = self._try_single_view(q)
        if single is not None:
            return single
        multi = self._try_multi_view(q)
        if multi is not None:
            return multi
        if self._p is None:
            raise NoRewritingError(
                f"no probabilistic rewriting of {q.xpath()} over "
                f"{sorted(self._views)} and the cache is strict"
            )
        return CachedAnswer(
            answer=query_answer(self._p, q, backend=self.backend),
            source=AnswerSource.DIRECT,
            plan_description="evaluated on the base p-document "
            f"({self.backend.name} backend, single-pass engine)",
        )

    def answerable(self, q: TreePattern) -> bool:
        """Decision only: can ``q`` be answered from the extensions alone?"""
        if self._try_single_view(q, decide_only=True) is not None:
            return True
        return self._try_multi_view(q, decide_only=True) is not None

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _try_single_view(
        self, q: TreePattern, decide_only: bool = False
    ) -> Optional[CachedAnswer]:
        for view in self._views.values():
            plan = probabilistic_tp_plan(q, view)
            if plan is None:
                continue
            if decide_only:
                return CachedAnswer({}, AnswerSource.SINGLE_VIEW, plan.describe())
            return CachedAnswer(
                answer=plan.evaluate(self._extensions[view.name]),
                source=AnswerSource.SINGLE_VIEW,
                plan_description=plan.describe(),
            )
        return None

    def _try_multi_view(
        self, q: TreePattern, decide_only: bool = False
    ) -> Optional[CachedAnswer]:
        if not self._views:
            return None
        plan = tpi_rewrite(q, list(self._views.values()), self._extensions)
        if plan is None:
            return None
        if decide_only:
            return CachedAnswer({}, AnswerSource.MULTI_VIEW, plan.description)
        return CachedAnswer(
            answer=plan.evaluate(),
            source=AnswerSource.MULTI_VIEW,
            plan_description=plan.description,
        )
