"""Theorem 4's reduction: k-DIMENSIONAL PERFECT MATCHING → view selection.

Given a k-uniform hypergraph ``H = (U, E)`` with ``s = |U|`` vertices and
``m = |E|`` hyperedges, the reduction builds

* the query ``q = a[1]/a[2]/.../a[s]//b``;
* for every hyperedge ``e_i`` a view ``v_i``: a ``/``-chain of ``s``
  ``a``-nodes followed by ``//b``, with predicate ``[j]`` on the ``j``-th
  ``a``-node for every vertex ``j ∈ e_i``.

Two views are c-independent iff their hyperedges are disjoint, and a subset
of pairwise c-independent views rewrites ``q`` iff the corresponding edges
form a perfect matching.  Deciding the existence of such a subset is hence
NP-hard (Theorem 4) — ``benchmarks/bench_hardness.py`` charts the blow-up of
the brute-force search on these instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..tp.parser import parse_pattern
from ..tp.pattern import TreePattern
from ..views.view import View

__all__ = [
    "Hypergraph",
    "reduction_query",
    "reduction_views",
    "random_hypergraph",
    "matching_hypergraph",
    "has_perfect_matching",
]


@dataclass(frozen=True)
class Hypergraph:
    """A k-uniform hypergraph over vertices ``1..s``."""

    s: int
    edges: tuple[frozenset[int], ...]

    @property
    def k(self) -> int:
        return len(self.edges[0]) if self.edges else 0


def reduction_query(h: Hypergraph) -> TreePattern:
    """``q = a[1]/a[2]/.../a[s]//b``."""
    steps = "/".join(f"a[{j}]" for j in range(1, h.s + 1))
    return parse_pattern(f"{steps}//b")


def reduction_views(h: Hypergraph) -> list[View]:
    """One view per hyperedge, named ``e1..em``."""
    views = []
    for index, edge in enumerate(h.edges, start=1):
        steps = "/".join(
            f"a[{j}]" if j in edge else "a" for j in range(1, h.s + 1)
        )
        views.append(View(f"e{index}", parse_pattern(f"{steps}//b")))
    return views


def has_perfect_matching(h: Hypergraph) -> bool:
    """Exhaustive reference solver for k-dimensional perfect matching."""
    universe = frozenset(range(1, h.s + 1))

    def search(remaining: frozenset[int], start: int) -> bool:
        if not remaining:
            return True
        for index in range(start, len(h.edges)):
            edge = h.edges[index]
            if edge <= remaining:
                if search(remaining - edge, index + 1):
                    return True
        return False

    if h.k == 0 or h.s % h.k != 0:
        return not universe
    return search(universe, 0)


def matching_hypergraph(
    k: int, groups: int, extra_edges: int = 0, seed: int = 0
) -> Hypergraph:
    """A k-uniform hypergraph that *has* a perfect matching by construction.

    ``groups`` disjoint edges cover ``s = k·groups`` vertices; ``extra_edges``
    random distractor edges are mixed in.
    """
    rng = random.Random(seed)
    s = k * groups
    edges = [frozenset(range(g * k + 1, g * k + k + 1)) for g in range(groups)]
    vertices = list(range(1, s + 1))
    for _ in range(extra_edges):
        edges.append(frozenset(rng.sample(vertices, k)))
    rng.shuffle(edges)
    return Hypergraph(s, tuple(edges))


def random_hypergraph(k: int, s: int, m: int, seed: int = 0) -> Hypergraph:
    """``m`` uniformly random k-subsets of ``1..s`` (may lack a matching)."""
    rng = random.Random(seed)
    vertices = list(range(1, s + 1))
    edges = tuple(frozenset(rng.sample(vertices, k)) for _ in range(m))
    return Hypergraph(s, edges)
