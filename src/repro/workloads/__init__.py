"""Workloads: the paper's figures as exact fixtures, plus synthetic generators."""

from . import paper
from . import synthetic
from . import hypergraph

__all__ = ["paper", "synthetic", "hypergraph"]
