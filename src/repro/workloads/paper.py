"""Exact fixtures for every figure and worked example of the paper.

* Figure 1 — the deterministic document ``d_PER``;
* Figure 2 — the p-document ``P̂_PER``;
* Figure 3 — the queries ``q_RBON``, ``q_BON`` and views ``v1_BON``, ``v2_BON``;
* Figure 5 — the counterexample p-documents ``P̂1``/``P̂2`` (Example 11) and
  ``P̂3``/``P̂4`` (Example 12);
* Example 16 — the query and four views of the view-decomposition example.

The probability values are the paper's, stored exactly.  Structural choices
that the figures leave ambiguous (the rasterized figures interleave node
rows) are pinned down by the worked numbers:

* In ``P̂_PER`` the mux ``n11`` selects Rick (0.75) vs John (0.25) *under*
  ``name[4]``; this is the only reading under which Example 3 gives
  ``Pr(d_PER) = 0.4725``, Example 6 gives ``v1_BON(P̂) = {(n5, 0.75)}``
  *and* ``v2_BON(P̂) = {(n5, 1), (n7, 1)}`` simultaneously.
* In ``P̂3``/``P̂4`` the shared presence choice is an ``ind`` above the second
  ``c``-node; with ``(p_e1, p_e2, π) = (0.3, 0.6, 0.4)`` and
  ``(0.4, 0.8, 0.3)`` respectively, one gets exactly the paper's
  ``Pr(n_d ∈ q(P3)) = 0.288``, ``Pr(n_d ∈ q(P4)) = 0.264`` and equal view
  extensions with subtree probabilities 0.12 and 0.24.
"""

from __future__ import annotations

from ..probability import ProbabilityLike
from ..pxml.builder import ind, mux, ordinary, pdoc
from ..pxml.pdocument import PDocument
from ..tp.parser import parse_pattern
from ..tp.pattern import TreePattern
from ..xml.builder import doc, node
from ..xml.document import Document

__all__ = [
    "d_per",
    "p_per",
    "q_rbon",
    "q_bon",
    "v1_bon",
    "v2_bon",
    "example11_query",
    "example11_view",
    "p1_example11",
    "p2_example11",
    "example12_query",
    "example12_view",
    "p3_example12",
    "p4_example12",
    "example12_family",
    "example16_query",
    "example16_views",
]


# ----------------------------------------------------------------------
# Figure 1: the deterministic document d_PER
# ----------------------------------------------------------------------
def d_per() -> Document:
    """Figure 1: the personnel/bonuses document."""
    return doc(
        node(1, "IT-personnel",
             node(2, "person",
                  node(4, "name", node(8, "Rick")),
                  node(5, "bonus",
                       node(24, "laptop", node(25, "44"), node(26, "50")),
                       node(31, "pda", node(32, "50")))),
             node(3, "person",
                  node(6, "name", node(41, "Mary")),
                  node(7, "bonus",
                       node(51, "pda", node(54, "15"), node(55, "44"))))))


# ----------------------------------------------------------------------
# Figure 2: the p-document P̂_PER
# ----------------------------------------------------------------------
def p_per() -> PDocument:
    """Figure 2: the probabilistic personnel document."""
    return pdoc(
        ordinary(1, "IT-personnel",
                 ordinary(2, "person",
                          ordinary(4, "name",
                                   mux(11,
                                       (ordinary(8, "Rick"), "0.75"),
                                       (ordinary(13, "John"), "0.25"))),
                          ordinary(5, "bonus",
                                   mux(21,
                                       (ordinary(22, "pda",
                                                 ordinary(23, "25")), "0.1"),
                                       (ordinary(24, "laptop",
                                                 ordinary(25, "44"),
                                                 ordinary(26, "50")), "0.9")),
                                   ordinary(31, "pda", ordinary(32, "50")))),
                 ordinary(3, "person",
                          ordinary(6, "name", ordinary(41, "Mary")),
                          ordinary(7, "bonus",
                                   ordinary(51, "pda",
                                            mux(52,
                                                (ind(53,
                                                     (ordinary(54, "15"), 1),
                                                     (ordinary(55, "44"), 1)),
                                                 "0.7"),
                                                (ordinary(56, "15"), "0.3")))))))


# ----------------------------------------------------------------------
# Figure 3: queries and views
# ----------------------------------------------------------------------
def q_rbon() -> TreePattern:
    """Rick's bonuses for the Laptop project."""
    return parse_pattern("IT-personnel//person[name/Rick]/bonus[laptop]")


def q_bon() -> TreePattern:
    """Bonuses for the Laptop project."""
    return parse_pattern("IT-personnel//person/bonus[laptop]")


def v1_bon() -> TreePattern:
    """Rick's bonuses."""
    return parse_pattern("IT-personnel//person[name/Rick]/bonus")


def v2_bon() -> TreePattern:
    """All bonuses."""
    return parse_pattern("IT-personnel//person/bonus")


# ----------------------------------------------------------------------
# Example 11 / Figure 5 (left): q = a/b[c], v = a[.//c]/b
# ----------------------------------------------------------------------
def example11_query() -> TreePattern:
    return parse_pattern("a/b[c]")


def example11_view() -> TreePattern:
    return parse_pattern("a[.//c]/b")


def p1_example11() -> PDocument:
    """``P̂1``: a sure ``c`` beside a 0.65-mux ``b`` that holds a 0.5-mux ``c``.

    ``Pr(b ∈ q(P1)) = 0.65 × 0.5 = 0.325`` while ``Pr(b ∈ v(P1)) = 0.65``.
    """
    return pdoc(
        ordinary(0, "a",
                 ordinary(1, "c"),
                 mux(2, (ordinary(3, "b",
                                  mux(4, (ordinary(5, "c"), "0.5"))), "0.65"))))


def p2_example11() -> PDocument:
    """``P̂2``: sure ``b``; two independent ``c`` chances (0.3 beside, 0.5 below).

    ``Pr(b ∈ q(P2)) = 0.5`` while ``Pr(b ∈ v(P2)) = 1 − 0.7×0.5 = 0.65``,
    and the view extension equals ``(P̂1)_v`` exactly.
    """
    return pdoc(
        ordinary(0, "a",
                 mux(1, (ordinary(2, "c"), "0.3")),
                 ordinary(3, "b",
                          mux(4, (ordinary(5, "c"), "0.5")))))


# ----------------------------------------------------------------------
# Example 12 / Figure 5 (right): q = a//b[e]/c/b/c//d, v = a//b[e]/c/b/c
# ----------------------------------------------------------------------
def example12_query() -> TreePattern:
    return parse_pattern("a//b[e]/c/b/c//d")


def example12_view() -> TreePattern:
    return parse_pattern("a//b[e]/c/b/c")


def example12_family(
    p_e1: ProbabilityLike, p_e2: ProbabilityLike, p_gate: ProbabilityLike
) -> PDocument:
    """The Figure-5-right family: overlapping images of ``b[e]/c/b/c``.

    Structure (ordinary spine ``a/b1/c1/b2/[gate]c2/b3/c3/d``)::

        a ── b1 ──┬── ind{e : p_e1}
                  └── c1 ── b2 ──┬── ind{e : p_e2}
                                 └── ind{c2 : p_gate} ── b3 ── c3 ── d

    The view selects ``c2`` with probability ``p_gate·p_e1`` and ``c3`` with
    ``p_gate·p_e2`` — with *identical* result subtrees for any parameters
    with equal products — while
    ``Pr(n_d ∈ q(P)) = p_gate · (p_e1 + p_e2 − p_e1·p_e2)`` differs.
    """
    return pdoc(
        ordinary(0, "a",
                 ordinary(1, "b",
                          ind(2, (ordinary(3, "e"), p_e1)),
                          ordinary(4, "c",
                                   ordinary(5, "b",
                                            ind(6, (ordinary(7, "e"), p_e2)),
                                            ind(8, (ordinary(9, "c",
                                                             ordinary(10, "b",
                                                                      ordinary(11, "c",
                                                                               ordinary(12, "d")))),
                                                    p_gate)))))))


def p3_example12() -> PDocument:
    """``P̂3``: parameters (0.3, 0.6, 0.4) — ``Pr(n_d ∈ q(P3)) = 0.288``."""
    return example12_family("0.3", "0.6", "0.4")


def p4_example12() -> PDocument:
    """``P̂4``: parameters (0.4, 0.8, 0.3) — ``Pr(n_d ∈ q(P4)) = 0.264``."""
    return example12_family("0.4", "0.8", "0.3")


# ----------------------------------------------------------------------
# Example 16: view decompositions
# ----------------------------------------------------------------------
def example16_query() -> TreePattern:
    return parse_pattern("a[1]/b[2]/c[3]/d")


def example16_views() -> list[TreePattern]:
    """``v1..v4`` of Example 16 (pairwise dependent but decomposable)."""
    return [
        parse_pattern("a[1]/b/c[3]/d"),
        parse_pattern("a/b[2]/c[3]/d"),
        parse_pattern("a[1]/b[2]/c/d"),
        parse_pattern("a//d"),
    ]
