"""Parameterized synthetic workloads for benchmarks and property tests.

Three families:

* random p-documents and random tree patterns (property tests, fuzzing);
* *personnel*-style documents scaling Figure 1/2's scenario to ``n`` persons
  and ``p`` projects (the rewrite-vs-direct evaluation benchmarks);
* structured query/view families with known rewriting behaviour (the
  PTime-scaling benchmarks for ``TPrewrite``/``TPIrewrite``).
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..pxml.builder import ind, mux, ordinary, pdoc
from ..pxml.pdocument import PDocument, PNode, PNodeKind
from ..tp import ops
from ..tp.parser import parse_pattern
from ..tp.pattern import Axis, PatternNode, TreePattern
from ..views.view import View

__all__ = [
    "random_pdocument",
    "random_tree_pattern",
    "prefix_views",
    "personnel_pdocument",
    "personnel_query",
    "personnel_views",
    "batch_workload",
    "churn_workload",
    "chain_query",
    "chain_views",
    "adversarial_intersection",
    "isomorphic_twin",
]


# ----------------------------------------------------------------------
# Random instances (property tests)
# ----------------------------------------------------------------------
def random_pdocument(
    rng: random.Random,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    max_depth: int = 4,
    max_children: int = 3,
    distributional_bias: float = 0.5,
) -> PDocument:
    """A small random p-document over ``labels`` with mux/ind gadgets."""
    counter = itertools.count(0)
    probabilities = ["0.2", "0.25", "0.5", "0.75", "0.8"]

    def build_ordinary(depth: int) -> PNode:
        label = labels[0] if depth == 0 else rng.choice(labels)
        children = []
        if depth < max_depth:
            for _ in range(rng.randint(0, max_children)):
                children.append(build_child(depth + 1))
        return ordinary(next(counter), label, *children)

    def build_child(depth: int) -> PNode:
        roll = rng.random()
        if roll < distributional_bias / 2:
            choices = [
                (build_ordinary(depth), rng.choice(["0.2", "0.3", "0.4"]))
                for _ in range(rng.randint(1, 2))
            ]
            return mux(next(counter), *choices)
        if roll < distributional_bias:
            return ind(
                next(counter), (build_ordinary(depth), rng.choice(probabilities))
            )
        return build_ordinary(depth)

    return pdoc(build_ordinary(0))


def random_tree_pattern(
    rng: random.Random,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    mb_length: int = 3,
    desc_probability: float = 0.3,
    predicate_probability: float = 0.5,
    max_predicate_size: int = 2,
) -> TreePattern:
    """A random TP query with the given main-branch length."""
    root = PatternNode(labels[0], Axis.CHILD)
    current = root
    for _ in range(mb_length - 1):
        axis = Axis.DESC if rng.random() < desc_probability else Axis.CHILD
        current = current.add_child(PatternNode(rng.choice(labels), axis))
    out = current
    # Snapshot before decorating: predicates must not themselves sprout
    # predicates, or the walk would chase its own insertions.
    for node in list(root.iter_subtree()):
        if rng.random() < predicate_probability:
            pred = PatternNode(
                rng.choice(labels),
                Axis.DESC if rng.random() < desc_probability else Axis.CHILD,
            )
            node.add_child(pred)
            for _ in range(rng.randint(0, max_predicate_size - 1)):
                pred = pred.add_child(
                    PatternNode(
                        rng.choice(labels),
                        Axis.DESC
                        if rng.random() < desc_probability
                        else Axis.CHILD,
                    )
                )
    return TreePattern(root, out)


def prefix_views(q: TreePattern, name_prefix: str = "v") -> list[View]:
    """All prefix views ``q^(k)`` of a query — each satisfies Fact 1 by
    construction (``comp(q^(k), q_(k)) ≡ q``)."""
    views = []
    for k in range(1, q.main_branch_length() + 1):
        views.append(View(f"{name_prefix}{k}", ops.prefix(q, k)))
    return views


# ----------------------------------------------------------------------
# Personnel-style scaling family (Figures 1/2 writ large)
# ----------------------------------------------------------------------
def personnel_pdocument(
    persons: int, projects: int = 3, seed: int = 0
) -> PDocument:
    """A scaled ``P̂_PER``: ``persons`` persons, probabilistic names/bonuses.

    Node Ids: person ``i`` has id ``100·i``, its bonus ``100·i + 1``;
    project nodes get sequential ids above ``10^6``.
    """
    rng = random.Random(seed)
    counter = itertools.count(1_000_000)
    project_names = [f"project{j}" for j in range(projects)]
    people = []
    for i in range(1, persons + 1):
        name_choice = mux(
            next(counter),
            (ordinary(next(counter), "Rick"), "0.5"),
            (ordinary(next(counter), f"emp{i}"), "0.5"),
        )
        bonus_children: list[PNode] = []
        for project in rng.sample(project_names, rng.randint(1, projects)):
            amount = ordinary(next(counter), str(rng.randint(10, 99)))
            project_node = ordinary(next(counter), project, amount)
            if rng.random() < 0.5:
                bonus_children.append(
                    mux(next(counter), (project_node, "0.8"))
                )
            else:
                bonus_children.append(project_node)
        people.append(
            ordinary(
                100 * i,
                "person",
                ordinary(next(counter), "name", name_choice),
                ordinary(100 * i + 1, "bonus", *bonus_children),
            )
        )
    return pdoc(ordinary(1, "IT-personnel", *people))


def personnel_query(project: str = "project0") -> TreePattern:
    return parse_pattern(f"IT-personnel//person[name/Rick]/bonus[{project}]")


def personnel_views() -> list[View]:
    return [
        View("rickbonus", parse_pattern("IT-personnel//person[name/Rick]/bonus")),
        View("allbonus", parse_pattern("IT-personnel//person/bonus")),
    ]


# ----------------------------------------------------------------------
# Batched-workload family (multi-query sessions)
# ----------------------------------------------------------------------
def batch_workload(
    persons: int, projects: int = 8, seed: int = 0, profile: int = 6
) -> tuple[PDocument, list[TreePattern]]:
    """A view-cache style workload: one personnel query per project.

    Models the batched-evaluation regime of ``QuerySession.answer_many``:
    ``projects`` structurally identical queries (differing only in the
    project label) over one p-document where each person holds exactly one
    project — so every query's answers touch ``1/projects`` of the
    document — plus a query-neutral probabilistic ``profile`` subtree of
    ``profile`` log entries per person, whose evaluation is shared by
    every query of a batch.

    Node Ids follow :func:`personnel_pdocument`: person ``i`` is
    ``100·i``, its bonus ``100·i + 1``.

    Returns ``(pdocument, queries)``.
    """
    rng = random.Random(seed)
    counter = itertools.count(1_000_000)
    people = []
    for i in range(1, persons + 1):
        project = f"project{(i - 1) % projects}"
        amount = ordinary(next(counter), str(rng.randint(10, 99)))
        project_node = ordinary(next(counter), project, amount)
        if rng.random() < 0.5:
            bonus_children = [mux(next(counter), (project_node, "0.8"))]
        else:
            bonus_children = [project_node]
        entries = []
        for _ in range(profile):
            entry = ordinary(
                next(counter),
                "entry",
                ordinary(next(counter), f"day{rng.randint(1, 28)}"),
                ordinary(next(counter), "note"),
            )
            entries.append(
                ind(next(counter), (entry, rng.choice(["0.25", "0.5", "0.75"])))
            )
        people.append(
            ordinary(
                100 * i,
                "person",
                ordinary(
                    next(counter),
                    "name",
                    mux(
                        next(counter),
                        (ordinary(next(counter), "Rick"), "0.5"),
                        (ordinary(next(counter), f"emp{i}"), "0.5"),
                    ),
                ),
                ordinary(100 * i + 1, "bonus", *bonus_children),
                ordinary(next(counter), "profile", *entries),
            )
        )
    p = pdoc(ordinary(1, "IT-personnel", *people))
    queries = [personnel_query(f"project{j}") for j in range(projects)]
    return p, queries


def churn_workload(
    persons: int,
    projects: int = 4,
    rounds: int = 3,
    seed: int = 0,
    *,
    write_ratio: Optional[float] = None,
    hot_fraction: float = 0.25,
    skew: float = 0.9,
    bump_share: float = 0.25,
) -> tuple[PDocument, list[tuple[str, object]]]:
    """A mutating workload: query batches interleaved with in-place edits.

    Models a long-lived session over a document that keeps changing under
    it — the regime that exercises spine-only index maintenance and
    memo-entry survival (``PDocument.mark_mutated(node)``).  Built on
    :func:`batch_workload`; returns ``(p, steps)`` where each step is

    * ``("queries", [TreePattern, ...])`` — evaluate the per-project
      batch (through a session, a cache, or per-query calls), or
    * ``("mutate", mutate)`` — ``mutate()`` edits the document in place
      and records the mutated node via ``p.mark_mutated(node)``;
      ``mutate(full=True)`` performs the identical edit but invalidates
      the whole document (``mark_all_mutated()``), the baseline arm of
      ``benchmarks/bench_churn.py``.  Two edit kinds occur: scaling a
      mux child probability by 3/4 (changes answer probabilities *and*
      the digests on the mutated path, but not the maximal world) and
      bumping a bonus-amount label (changes digests and the world —
      answer probabilities must stay put).

    With the default ``write_ratio=None`` the historical shape is kept:
    ``rounds`` rounds of exactly ``mutate(prob), queries, mutate(label),
    queries`` with uniformly random targets.  Passing ``write_ratio``
    switches to a mixed read/write stream of ``rounds`` steps: each step
    is a mutation with probability ``write_ratio`` (else a query batch),
    and mutation targets follow a *skewed hot-subtree* distribution —
    with probability ``skew`` the target comes from the "hot" first
    ``hot_fraction`` of the document's mux nodes (early persons), which
    is the regime where spine-only maintenance pays: the same short
    spine churns while everything else stays warm.  Label bumps (which
    change the maximal world, unlike probability scalings) make up
    ``bump_share`` of the mutations — default a quarter; the rest are
    probability scalings.

    Drivers replay the steps in order and can check, after every batch,
    that session/store answers equal fresh store-free evaluation.
    """
    p, queries = batch_workload(persons, projects=projects, seed=seed)
    rng = random.Random(seed + 1)
    muxes = sorted(
        (n for n in p.nodes() if n.kind is PNodeKind.MUX),
        key=lambda n: n.node_id,
    )
    amounts = sorted(
        (n for n in p.ordinary_nodes() if n.label is not None and n.label.isdigit()),
        key=lambda n: n.node_id,
    )

    def scale_probability(target: PNode) -> Callable[..., None]:
        def mutate(full: bool = False) -> None:
            child = target.children[0]
            assert target.probabilities is not None
            target.probabilities[child.node_id] *= Fraction(3, 4)
            if full:
                p.mark_all_mutated()
            else:
                p.mark_mutated(target)

        return mutate

    def bump_amount(target: PNode) -> Callable[..., None]:
        def mutate(full: bool = False) -> None:
            target.label = str(int(target.label) + 1)
            if full:
                p.mark_all_mutated()
            else:
                p.mark_mutated(target)

        return mutate

    steps: list[tuple[str, object]] = [("queries", queries)]
    if write_ratio is None:
        for _ in range(rounds):
            steps.append(("mutate", scale_probability(rng.choice(muxes))))
            steps.append(("queries", queries))
            steps.append(("mutate", bump_amount(rng.choice(amounts))))
            steps.append(("queries", queries))
        return p, steps
    hot = muxes[: max(1, int(len(muxes) * hot_fraction))]
    for _ in range(rounds):
        if rng.random() >= write_ratio:
            steps.append(("queries", queries))
            continue
        if rng.random() < bump_share:
            steps.append(("mutate", bump_amount(rng.choice(amounts))))
            continue
        pool = hot if rng.random() < skew else muxes
        steps.append(("mutate", scale_probability(rng.choice(pool))))
    return p, steps


def isomorphic_twin(p: PDocument, offset: Optional[int] = None) -> PDocument:
    """An isomorphic copy of ``p`` with every node Id shifted by ``offset``.

    Same shapes, labels, probabilities and child order — only the Ids
    differ — so structural digests and canonical anchor positions match
    node-for-node while identity-keyed state (candidate sets, node-keyed
    memos) cannot accidentally collide.  The workload for testing and
    benchmarking content-addressed sharing across lookalike documents.

    By default the offset is derived from the source document's largest
    node Id (the next power of ten past it), so twin Ids can never
    collide with source Ids no matter how large the generated document
    grew; pass ``offset`` explicitly to pin the historical shift.
    """
    if offset is None:
        top = max(n.node_id for n in p.nodes())
        offset = 10
        while offset <= top:
            offset *= 10

    def copy(node: PNode) -> PNode:
        duplicate = PNode(node.node_id + offset, node.kind, node.label)
        for child in node.children:
            probability = (
                node.probabilities[child.node_id]
                if node.probabilities is not None
                else None
            )
            duplicate.add_child(copy(child), probability)
        return duplicate

    return PDocument(copy(p.root))


# ----------------------------------------------------------------------
# Structured families for decision-procedure scaling
# ----------------------------------------------------------------------
def chain_query(length: int, predicate_every: int = 2) -> TreePattern:
    """``a1/a2[p2]/a3/a4[p4]/...`` — a /-chain with periodic predicates."""
    steps = []
    for i in range(1, length + 1):
        step = f"l{i}"
        if predicate_every and i % predicate_every == 0:
            step += f"[p{i}]"
        steps.append(step)
    return parse_pattern("/".join(steps))


def chain_views(q: TreePattern) -> list[View]:
    """Prefix views of a chain query (all admit deterministic rewritings)."""
    return prefix_views(q)


def adversarial_intersection(k: int) -> list[TreePattern]:
    """``a//x1//z ∩ a//x2//z ∩ ...`` — ``k`` patterns whose interleavings
    are the permutations of ``x1..xk`` (``k!`` of them): the coNP-hardness
    driver of TP∩ equivalence, measured in ``bench_scaling.py``."""
    return [parse_pattern(f"a//x{i}//z") for i in range(1, k + 1)]
