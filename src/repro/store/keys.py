"""Store-key derivation shared by the engine and session layers.

A :class:`SubtreeKeyer` binds one evaluation (an
:class:`~repro.prob.engine.EvaluationEngine` over one p-document and one
numeric backend) and produces the canonical content-addressed keys of
:mod:`repro.store.api` for its subtree evaluations:

* the *structure* component comes from the document's cached
  :meth:`~repro.pxml.pdocument.PDocument.structural_index`;
* the *fingerprint* component is the engine's goal table restricted to
  the subtree's labels, with anchor values abstracted into slots, hashed
  — cached per relevant-label set, which repeats heavily across
  subtrees;
* the *anchor* component re-binds the fingerprint's anchor slots to
  canonical *positions*: for each slot, the sorted tuple of rank paths
  (:meth:`~repro.pxml.pdocument.PDocument.anchor_index`) of the
  admissible document nodes lying *inside* the keyed subtree, relative
  to its root.  Admissible nodes outside the subtree are dropped — they
  can never be granted below it, so the restricted evaluation does not
  depend on them — and a slot whose nodes all lie outside encodes as the
  empty tuple (pinned to nothing, which is *not* the same as
  unanchored).  ``None`` marks a genuinely unanchored restriction;
* the *gate* collapses to ``None`` for restrictions without output-node
  entries (blocked and unpinned evaluations coincide there).

**Why anchored sharing is sound.**  Equal structural digests admit a
rank-respecting isomorphism (children of equal rank have equal digests
and edge probabilities — see :func:`repro.store.digest.
compute_positions`), and that single isomorphism maps the admissible
node set of *every* slot onto its counterpart when the per-slot relative
position tuples agree.  The DP below a subtree depends only on the
subtree's structure, the abstract restricted table, and which concrete
subtree nodes each anchored entry admits — all preserved — so equal
keys imply equal distributions, exactly as in the unanchored case.

With ``anchored=False`` the keyer reproduces the historical behaviour:
anchored restrictions get no store key (:meth:`SubtreeKeyer.store_key`
returns ``None``) and callers fall back to a node-identity local memo.
This is the *node-keyed baseline* of ``benchmarks/bench_anchored.py``.
"""

from __future__ import annotations

from typing import Optional

from .api import StoreKey
from .digest import fingerprint_digest

__all__ = ["SubtreeKeyer"]


class SubtreeKeyer:
    """Canonical store keys for one engine's subtree evaluations.

    Args:
        p: the p-document being traversed.
        engine: the evaluating engine (supplies ``table_labels`` and
            ``goal_table_fingerprint``).
        backend: the numeric backend (its ``name`` enters every key).
        anchored: derive canonical position-encoded store keys for
            anchored restrictions (default).  ``False`` = node-keyed
            baseline: anchored restrictions yield local tokens only.
    """

    __slots__ = (
        "p", "digests", "sizes", "backend_name", "table_labels", "anchored",
        "_fingerprint", "_described", "_positions",
    )

    def __init__(self, p, engine, backend, anchored: bool = True) -> None:
        self.p = p
        self.digests, self.sizes = p.structural_index()
        self.backend_name = backend.name
        self.table_labels = engine.table_labels
        self.anchored = anchored
        self._fingerprint = engine.goal_table_fingerprint
        # relevant-label frozenset -> (fp digest, out_sensitive, targets)
        self._described: dict[frozenset, tuple] = {}
        self._positions: Optional[dict] = None  # built on first anchored key

    def describe(self, label_set: frozenset) -> tuple:
        """``(fingerprint digest, out_sensitive, anchor_targets)`` for a
        subtree whose ordinary labels are ``label_set`` (cached per
        restriction).  ``anchor_targets`` is one sorted document-Id tuple
        per anchored entry of the restriction — empty when unanchored."""
        relevant = self.table_labels & label_set
        entry = self._described.get(relevant)
        if entry is None:
            table, out_sensitive, targets = self._fingerprint(relevant)
            entry = (fingerprint_digest(table), out_sensitive, targets)
            self._described[relevant] = entry
        return entry

    def token(
        self, node_id: int, label_set: frozenset, gate: str
    ) -> tuple:
        """``(key, is_local, is_anchored)`` for the subtree at ``node_id``.

        Unanchored restrictions and (by default) anchored ones get a
        canonical 5-part store key; with ``anchored=False`` an anchored
        restriction instead gets a node-identity key for a session-local
        memo (``is_local`` true).
        """
        fingerprint, out_sensitive, targets = self.describe(label_set)
        effective = gate if out_sensitive else None
        if not targets:
            return (
                (self.digests[node_id], fingerprint, None, effective,
                 self.backend_name),
                False,
                False,
            )
        if not self.anchored:
            return ((node_id, fingerprint, targets, effective), True, True)
        return (
            (self.digests[node_id], fingerprint,
             self._encode(node_id, targets), effective, self.backend_name),
            False,
            True,
        )

    def store_key(
        self, node_id: int, label_set: frozenset, gate: str
    ) -> Optional[StoreKey]:
        """The canonical store key for the subtree at ``node_id`` under
        ``gate``, or ``None`` when the restriction is anchored and
        position keying is disabled (node-keyed baseline)."""
        key, is_local, _ = self.token(node_id, label_set, gate)
        return None if is_local else key

    def plan_keys(self, labels: dict, live: frozenset, gate: str) -> tuple:
        """``(probe_keys, guard_keys)`` for a whole store-consulting pass.

        ``probe_keys`` are the canonical store keys of every non-neutral,
        non-live subtree — the keys a :func:`~repro.prob.traversal.
        stored_postorder` pass may probe; ``guard_keys`` are the keys of
        the live-spine subtrees, whose saves are presence-guarded but
        never probed.  Local (node-keyed baseline) tokens are excluded —
        they stay on the per-key path.  ``labels`` is the document's
        ``label_index()`` mapping.
        """
        probe: set = set()
        guard: set = set()
        table_labels = self.table_labels
        for node_id, label_set in labels.items():
            if node_id in live:
                key, is_local, _ = self.token(node_id, label_set, gate)
                if not is_local:
                    guard.add(key)
            elif table_labels & label_set:
                key, is_local, _ = self.token(node_id, label_set, gate)
                if not is_local:
                    probe.add(key)
        return probe, guard

    def _encode(self, root_id: int, targets: tuple) -> tuple:
        """Per-slot sorted relative rank paths of the admissible nodes."""
        positions = self._positions
        if positions is None:
            positions = self._positions = self.p.anchor_index()
        root_path = positions[root_id]
        depth = len(root_path)
        encoded = []
        for members in targets:
            inside = []
            for doc_id in members:
                path = positions.get(doc_id)
                if path is not None and path[:depth] == root_path:
                    inside.append(path[depth:])
            inside.sort()
            encoded.append(tuple(inside))
        return tuple(encoded)

    def weight(self, node_id: int, distribution: dict) -> int:
        """Recomputation-cost estimate: support size × subtree size."""
        return len(distribution) * self.sizes[node_id]
