"""Store-key derivation shared by the engine and session layers.

A :class:`SubtreeKeyer` binds one evaluation (an
:class:`~repro.prob.engine.EvaluationEngine` over one p-document and one
numeric backend) and produces the canonical content-addressed keys of
:mod:`repro.store.api` for its subtree evaluations:

* the *structure* component comes from the document's cached
  :meth:`~repro.pxml.pdocument.PDocument.structural_index`;
* the *fingerprint* component is the engine's goal table restricted to
  the subtree's labels, hashed — cached per relevant-label set, which
  repeats heavily across subtrees;
* the *gate* collapses to ``None`` for restrictions without output-node
  entries (blocked and unpinned evaluations coincide there).

**Anchored restrictions are never given store keys.**  An anchor pins a
pattern node to a concrete document node *Id* — document identity, not
structure — so a distribution computed under an anchored table is only
valid for the one subtree it was computed in (an isomorphic subtree
elsewhere does not contain the pinned node).  :meth:`SubtreeKeyer.
store_key` returns ``None`` for those; callers either skip caching
(engine) or fall back to a session-local, node-keyed memo
(:class:`repro.prob.session.QuerySession`).
"""

from __future__ import annotations

from typing import Optional

from .api import StoreKey
from .digest import fingerprint_digest

__all__ = ["SubtreeKeyer"]


class SubtreeKeyer:
    """Canonical store keys for one engine's subtree evaluations.

    Args:
        p: the p-document being traversed.
        engine: the evaluating engine (supplies ``table_labels`` and
            ``goal_table_fingerprint``).
        backend: the numeric backend (its ``name`` enters every key).
    """

    __slots__ = (
        "digests", "sizes", "backend_name", "table_labels",
        "_fingerprint", "_described",
    )

    def __init__(self, p, engine, backend) -> None:
        self.digests, self.sizes = p.structural_index()
        self.backend_name = backend.name
        self.table_labels = engine.table_labels
        self._fingerprint = engine.goal_table_fingerprint
        # relevant-label frozenset -> (fp digest, out_sensitive, anchored)
        self._described: dict[frozenset, tuple] = {}

    def describe(self, label_set: frozenset) -> tuple:
        """``(fingerprint digest, out_sensitive, anchored)`` for a subtree
        whose ordinary labels are ``label_set`` (cached per restriction)."""
        relevant = self.table_labels & label_set
        entry = self._described.get(relevant)
        if entry is None:
            table, out_sensitive = self._fingerprint(relevant)
            anchored = any(
                item[3] is not None
                for _, entries in table
                for item in entries
            )
            entry = (fingerprint_digest(table), out_sensitive, anchored)
            self._described[relevant] = entry
        return entry

    def store_key(
        self, node_id: int, label_set: frozenset, gate: str
    ) -> Optional[StoreKey]:
        """The store key for the subtree at ``node_id`` under ``gate``,
        or ``None`` when the restricted table is anchored (not shareable
        by structure)."""
        fingerprint, out_sensitive, anchored = self.describe(label_set)
        if anchored:
            return None
        return (
            self.digests[node_id],
            fingerprint,
            gate if out_sensitive else None,
            self.backend_name,
        )

    def weight(self, node_id: int, distribution: dict) -> int:
        """Recomputation-cost estimate: support size × subtree size."""
        return len(distribution) * self.sizes[node_id]
