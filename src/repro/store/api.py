"""The memo-store API: content-addressed caching of subtree distributions.

A *memo store* maps canonical keys to goal-set distributions (the
per-subtree blocked / unpinned evaluations of :mod:`repro.prob.engine`).
Keys are 5-tuples

    ``(structure, fingerprint, anchor, gate, backend)``

* ``structure`` — the structural digest of the p-subtree
  (:meth:`repro.pxml.pdocument.PDocument.structural_digest`): node kinds,
  labels, distribution parameters, order-insensitive, node-Id-free;
* ``fingerprint`` — the digest of the evaluating engine's goal table
  restricted to the labels occurring in the subtree
  (:meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint`
  hashed by :func:`repro.store.digest.fingerprint_digest`), with anchor
  *values* abstracted into slots;
* ``anchor`` — ``None`` for unanchored restrictions; for anchored ones
  the canonical anchor-position encoding: one tuple per anchor slot
  holding the sorted *rank paths* (digest-sorted child order, relative
  to the keyed subtree's root) of the admissible document nodes inside
  the subtree.  Positions are isomorphism-invariant, which is what turns
  the rewrite layer's anchored Theorem-1/2 traffic into shareable
  content-addressed entries (see :mod:`repro.store.keys`);
* ``gate`` — :data:`GATE_BLOCKED` / :data:`GATE_UNPINNED`, or ``None``
  when the restriction holds no output-node entry and the two evaluations
  coincide;
* ``backend`` — the numeric backend name (``"exact"`` / ``"fast"``):
  distributions live in the backend's value domain and must not mix.

Equal keys imply equal distributions (bit-identical on the ``exact``
backend; up to summation order on ``fast``), so entries may be shared
across queries with equal restricted tables, across isomorphic subtrees
of one document or of a document and its probabilistic extensions, and —
through :class:`repro.store.sqlite.SqliteStore` — across process
restarts.  No document identity enters a subtree key: those entries form
a pure content-addressed function table.

One deliberate exception rides in the same store:
:class:`repro.prob.session.QuerySession` caches per-query *candidate-Id
sets* under ``(identity digest, full-table fingerprint, None,
"candidates", "node-ids")``.  Those values name node Ids, so their first
component is the Id-*aware*
:meth:`~repro.pxml.pdocument.PDocument.identity_digest` (two isomorphic
documents with different Id assignments never share them), and the
payload is the ``{node_id: 1.0}`` indicator map.

Every ``put`` carries a *weight* — by convention the distribution's
support size times the subtree size, an estimate of the recomputation
cost the entry saves — which cost-aware eviction policies
(:class:`repro.store.memory.InMemoryStore`) use to decide what survives
memory pressure.

**The bulk protocol.**  Store-consulting traversals
(:func:`repro.prob.traversal.stored_postorder` and the stacked pass of
:mod:`repro.prob.stacked`) can compute a whole pass's candidate key set
*before* touching any probability — the same structural-tractability
bet the paper's rewritings rest on — and ship it as one request instead
of one round trip per node:

* :meth:`MemoStore.get_many` — one probe over many keys, returning the
  hit subset as a dict;
* :meth:`MemoStore.contains_many` — bulk presence check (uncounted,
  like :meth:`MemoStore.contains`), guarding redundant re-saves;
* :meth:`MemoStore.put_many` — many entries in one write batch (for
  :class:`~repro.store.sqlite.SqliteStore`, one ``executemany``
  transaction, optionally staged through a bounded write-behind
  buffer that is drained on :meth:`MemoStore.flush` / ``close``).

The base class provides per-key fallback implementations, so
third-party stores that only implement the point operations keep
working; stores whose bulk paths genuinely beat per-key probing
(disk- or network-backed) advertise it via
:attr:`MemoStore.prefers_bulk`, which lets traversals auto-enable the
probe-plan prefetch.  Every bulk call counts one ``bulk_probes``
increment and ``len(keys)`` ``bulk_probe_keys``, and observes the
process-wide ``repro_store_bulk_batch_keys`` batch-size histogram.

**The unified ``stats()`` schema.**  Every concrete store's
:meth:`MemoStore.stats` returns the *same key set*, so tooling
(``repro store stats``, benchmark reports, dashboards) never branches on
the store kind:

========================  ====================================================
key                       meaning
========================  ====================================================
``hits`` / ``misses``     ``get`` probes answered / not answered
``puts``                  entries written
``evictions``             entries dropped under memory pressure
``entries``               entries currently visible to ``get``
``anchored_hits`` /       the anchored-key subset of the probe/put traffic
``anchored_misses`` /
``anchored_puts``
``spine_recomputes`` /    spine-only mutations lived through, and entries
``survived_entries``      cumulatively kept live across them
``bulk_probes`` /         bulk protocol calls (``get_many`` /
``bulk_probe_keys``       ``contains_many`` / ``put_many``), and keys
                          carried by them in total
``flushes``               pending-write batches made durable (write-behind
                          drains and explicit ``flush()`` commits)
``kind``                  ``"memory"`` / ``"sqlite"`` (implementation tag)
``weight``                summed entry weights (``None`` when unknown)
``anchored_entries``      entries under anchored keys (``None`` when unknown)
``path``                  backing file (``None`` for purely in-memory stores)
``degraded``              persistence lost, running memory-only
``cached_entries``        entries resident in process memory
``max_weight`` /          eviction caps (``None`` = uncapped / not
``max_entries``           applicable)
``write_behind_pending``  buffered writes awaiting a flush (``None`` when
                          the store has no write-behind stage)
========================  ====================================================

Values that a given implementation cannot know are ``None`` — never
missing — and renderers should still tolerate older/foreign stats dicts
via ``dict.get``.

**Registry publication.**  Live stores are tracked in a weak set and a
pull collector registered with the process-wide metrics registry
(:mod:`repro.obs.registry`) aggregates their counters at read time as
``repro_store_*`` series labelled by ``kind``.  The per-instance
counters stay plain ints on the hot path; ``stats()`` and the registry
are two views over the same numbers.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from typing import Optional

from ..obs.registry import Sample, get_registry

__all__ = [
    "GATE_BLOCKED",
    "GATE_UNPINNED",
    "StoreKey",
    "MemoStore",
    "is_anchored_key",
]

#: Gate tag: output-node D-goals suppressed (the "blocked" evaluations of
#: the single-pass answer DP).
GATE_BLOCKED = "blocked"
#: Gate tag: output-node D-goals granted normally (Boolean / anchored runs).
GATE_UNPINNED = "unpinned"

#: ``(structure, fingerprint, Optional[anchor], Optional[gate], backend)``.
StoreKey = tuple

#: Batch sizes of bulk protocol calls (get_many / contains_many /
#: put_many), observed once per call — a handful per traversal.
_BULK_BATCH_KEYS = get_registry().histogram(
    "repro_store_bulk_batch_keys",
    help="keys carried per bulk store call (get_many/contains_many/put_many)",
    buckets=(1, 4, 16, 64, 256, 1024, 4096, 16384),
)


def is_anchored_key(key: StoreKey) -> bool:
    """Whether a store key carries an anchor-position component.

    Stores use this to split their hit/miss/put counters into anchored
    and unanchored traffic (surfaced by :meth:`MemoStore.stats`,
    :meth:`repro.cache.RewritingCache.stats` and ``repro store stats``).
    """
    return len(key) == 5 and key[2] is not None


class MemoStore(ABC):
    """Abstract memo store; see the module docstring for key semantics.

    Implementations are single-process, single-thread consumers of the
    hot evaluation path: ``get`` / ``put`` must be cheap.  Distributions
    are immutable by convention (the engine never mutates a distribution
    after building it), so stores hand out the cached object itself.

    Attributes:
        hits / misses / puts / evictions: cumulative counters, also
            surfaced by :meth:`stats`.
        anchored_hits / anchored_misses / anchored_puts: the subset of the
            traffic whose keys carry an anchor-position component
            (:func:`is_anchored_key`) — the rewrite layer's Theorem-1/2
            anchored evaluations.  Concrete ``get``/``put``
            implementations maintain them via :meth:`_count_get` /
            :meth:`_count_put`.
        spine_recomputes / survived_entries: write-path counters
            maintained by :meth:`record_spine_recompute` — how many
            spine-only document mutations this store lived through, and
            the cumulative number of entries that stayed live across
            them (content addressing never purges; mutated subtrees just
            stop matching).  Surfaced by ``repro store stats``.
        bulk_probes / bulk_probe_keys / flushes: bulk-protocol traffic —
            calls to :meth:`get_many` / :meth:`contains_many` /
            :meth:`put_many`, the keys they carried in total, and
            pending-write batches made durable (write-behind drains and
            committing ``flush()`` calls).
    """

    #: Implementation tag entering ``stats()["kind"]`` and the registry
    #: ``kind`` label; concrete stores override it.
    store_kind = "memory"

    #: Whether this store's bulk protocol genuinely beats per-key probing
    #: (disk- or network-backed I/O).  Traversals consult it to
    #: auto-enable the probe-plan prefetch of
    #: :func:`repro.prob.traversal.stored_postorder`; purely in-memory
    #: stores leave it ``False`` — their point probes are dict lookups,
    #: and planning every key up front would cost more than it saves.
    prefers_bulk = False

    def __init__(self) -> None:
        # One mutable bag instead of nine attributes: the bag outlives
        # the store (a finalizer retires it into the per-kind process
        # totals), so registry counters stay monotone across instance
        # garbage collection.  Hot-path cost is one dict item add.
        self._counts = {field: 0 for field in COUNTER_FIELDS}
        _LIVE_STORES.add(self)
        weakref.finalize(
            self, _retire_store_counts, self.store_kind, self._counts
        )

    hits = property(lambda self: self._counts["hits"])
    misses = property(lambda self: self._counts["misses"])
    puts = property(lambda self: self._counts["puts"])
    evictions = property(lambda self: self._counts["evictions"])
    anchored_hits = property(lambda self: self._counts["anchored_hits"])
    anchored_misses = property(lambda self: self._counts["anchored_misses"])
    anchored_puts = property(lambda self: self._counts["anchored_puts"])
    spine_recomputes = property(lambda self: self._counts["spine_recomputes"])
    survived_entries = property(lambda self: self._counts["survived_entries"])
    bulk_probes = property(lambda self: self._counts["bulk_probes"])
    bulk_probe_keys = property(lambda self: self._counts["bulk_probe_keys"])
    flushes = property(lambda self: self._counts["flushes"])

    def _count_get(self, key: StoreKey, hit: bool) -> None:
        """Update the hit/miss counters for one ``get`` probe."""
        counts = self._counts
        if hit:
            counts["hits"] += 1
            if is_anchored_key(key):
                counts["anchored_hits"] += 1
        else:
            counts["misses"] += 1
            if is_anchored_key(key):
                counts["anchored_misses"] += 1

    def _count_put(self, key: StoreKey) -> None:
        """Update the put counters for one ``put``."""
        self._counts["puts"] += 1
        if is_anchored_key(key):
            self._counts["anchored_puts"] += 1

    def _count_eviction(self) -> None:
        """Count one entry dropped under memory pressure."""
        self._counts["evictions"] += 1

    def _count_bulk(self, key_count: int) -> None:
        """Count one bulk protocol call carrying ``key_count`` keys."""
        self._counts["bulk_probes"] += 1
        self._counts["bulk_probe_keys"] += key_count
        _BULK_BATCH_KEYS.observe(key_count)

    def _count_flush(self) -> None:
        """Count one pending-write batch made durable."""
        self._counts["flushes"] += 1

    def record_probe(self, key: StoreKey, hit: bool) -> None:
        """Account one probe answered from prefetched bulk results.

        A probe-plan traversal fetches every candidate key up front with
        ``get_many(keys, record=False)`` — an uncounted snapshot, since
        the per-key path would never probe keys under skipped subtrees —
        and then calls this per probe it actually resolves, so hit/miss
        accounting stays *identical* to the per-key path's.
        """
        self._count_get(key, hit)

    def record_spine_recompute(self, survived: int) -> None:
        """Record one spine-only document mutation against this store.

        ``survived`` is the number of entries still live after the
        mutation (all of them, for a content-addressed store — nothing
        is purged; stale digests simply stop matching).  Sessions call
        this from their spine refresh so ``repro store stats`` can show
        how much cached work churn preserved.
        """
        self._counts["spine_recomputes"] += 1
        self._counts["survived_entries"] += survived

    @abstractmethod
    def get(self, key: StoreKey) -> Optional[dict]:
        """The cached distribution for ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        """Cache ``distribution`` under ``key`` with recomputation ``weight``."""

    @abstractmethod
    def contains(self, key: StoreKey) -> bool:
        """Whether ``key`` is cached — no hit/miss counting, no LRU touch.

        Writers use this to skip redundant ``put`` calls: equal keys map
        to equal distributions, so re-storing a present entry is wasted
        work (for persistent stores, a wasted disk write per node).
        """

    def reprobe(self, key: StoreKey) -> Optional[dict]:
        """Second-chance ``get``: a hit counts, a miss does not.

        Traversals use this for re-probes of keys that already missed
        once in the same pass (the miss was counted then); re-counting
        the repeat would inflate the miss rate.  The default falls back
        to the historical ``contains``-then-``get`` pair; concrete
        stores override it with a single probe.
        """
        if not self.contains(key):
            return None
        return self.get(key)

    # ------------------------------------------------------------------
    # Bulk protocol (see the module docstring).  The defaults fall back
    # to the point operations so third-party stores keep working; the
    # built-in stores override them with genuinely batched I/O.
    # ------------------------------------------------------------------
    def get_many(self, keys, record: bool = True) -> dict:
        """Probe many keys at once; returns ``{key: distribution}`` hits.

        With ``record`` (the default) every key counts one hit or miss,
        exactly as a loop of :meth:`get` calls would.  ``record=False``
        is the probe-plan *prefetch* mode: the snapshot is taken without
        touching the hit/miss counters, and the consuming traversal
        accounts each probe it actually resolves via
        :meth:`record_probe`.  Either way the call itself counts as one
        bulk probe over ``len(keys)`` keys.
        """
        keys = list(keys)
        self._count_bulk(len(keys))
        if record:
            return {
                key: value
                for key in keys
                if (value := self.get(key)) is not None
            }
        # Per-key fallback for stores without a native uncounted path:
        # restore the get-side counters around the loop (they live in
        # the shared ``_counts`` bag, so this is exact for every
        # MemoStore subclass).
        counts = self._counts
        saved = {field: counts[field] for field in _GET_COUNTER_FIELDS}
        try:
            return {
                key: value
                for key in keys
                if (value := self.get(key)) is not None
            }
        finally:
            counts.update(saved)

    def contains_many(self, keys) -> set:
        """The subset of ``keys`` that is cached — uncounted, like
        :meth:`contains` (one bulk probe is still recorded)."""
        keys = list(keys)
        self._count_bulk(len(keys))
        return {key for key in keys if self.contains(key)}

    def put_many(self, entries) -> None:
        """Write many ``(key, distribution, weight)`` entries in one batch.

        Counts one put per entry (identical to a loop of :meth:`put`
        calls) plus one bulk probe over the batch.  Persistent stores
        override this to issue a single write transaction — optionally
        staged through a bounded write-behind buffer drained on
        :meth:`flush` / :meth:`close`.
        """
        entries = list(entries)
        self._count_bulk(len(entries))
        for key, distribution, weight in entries:
            self.put(key, distribution, weight)

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached entries."""

    def stats(self) -> dict:
        """Counters and gauges in the unified schema (module docstring).

        Subclasses overwrite the gauges they can measure (``weight``,
        ``anchored_entries``, ``path``, ...) but keep the key set.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": len(self),
            "anchored_hits": self.anchored_hits,
            "anchored_misses": self.anchored_misses,
            "anchored_puts": self.anchored_puts,
            "spine_recomputes": self.spine_recomputes,
            "survived_entries": self.survived_entries,
            "bulk_probes": self.bulk_probes,
            "bulk_probe_keys": self.bulk_probe_keys,
            "flushes": self.flushes,
            "kind": self.store_kind,
            "weight": None,
            "anchored_entries": None,
            "path": None,
            "degraded": False,
            "cached_entries": len(self),
            "max_weight": None,
            "max_entries": None,
            "write_behind_pending": None,
        }

    def flush(self) -> None:
        """Make pending writes durable (no-op for purely in-memory stores)."""

    def close(self) -> None:
        """Flush and release resources; the store degrades to memory-only."""
        self.flush()


#: Counter fields of the unified store instrumentation (one bag slot and
#: one ``repro_store_<field>_total`` registry series each).
COUNTER_FIELDS = (
    "hits",
    "misses",
    "puts",
    "evictions",
    "anchored_hits",
    "anchored_misses",
    "anchored_puts",
    "spine_recomputes",
    "survived_entries",
    "bulk_probes",
    "bulk_probe_keys",
    "flushes",
)

#: The get-side counters restored by the uncounted bulk-prefetch
#: fallback (``get_many(..., record=False)``).
_GET_COUNTER_FIELDS = ("hits", "misses", "anchored_hits", "anchored_misses")

_STORE_COUNTER_HELP = {
    "hits": "memo store get probes answered",
    "misses": "memo store get probes missed",
    "puts": "memo store entries written",
    "evictions": "memo store entries evicted under pressure",
    "anchored_hits": "anchored-key subset of the store hits",
    "anchored_misses": "anchored-key subset of the store misses",
    "anchored_puts": "anchored-key subset of the store puts",
    "spine_recomputes": "spine-only document mutations recorded against stores",
    "survived_entries": "entries kept live across spine-only mutations",
    "bulk_probes": "bulk store calls (get_many/contains_many/put_many)",
    "bulk_probe_keys": "keys carried by bulk store calls in total",
    "flushes": "pending-write batches made durable",
}

#: Live stores feeding the process registry via the pull collector below.
_LIVE_STORES: "weakref.WeakSet[MemoStore]" = weakref.WeakSet()

#: Counters of garbage-collected stores, by kind — keeps the registry
#: series monotone across instance lifetimes.
_RETIRED_COUNTS: dict = {}


def _retire_store_counts(kind: str, counts: dict) -> None:
    totals = _RETIRED_COUNTS.setdefault(kind, dict.fromkeys(COUNTER_FIELDS, 0))
    for field in COUNTER_FIELDS:
        totals[field] += counts[field]


def _collect_store_samples():
    """Live + retired store counters by kind (registry collector)."""
    by_kind: dict[str, dict] = {
        kind: dict(totals) for kind, totals in _RETIRED_COUNTS.items()
    }
    entries: dict[str, int] = {}
    for store in list(_LIVE_STORES):
        totals = by_kind.setdefault(
            store.store_kind, dict.fromkeys(COUNTER_FIELDS, 0)
        )
        for field in COUNTER_FIELDS:
            totals[field] += store._counts[field]
        try:
            count = len(store)
        except Exception:  # reading metrics must never break on a store
            count = 0
        entries[store.store_kind] = entries.get(store.store_kind, 0) + count
    for kind, totals in sorted(by_kind.items()):
        labels = (("kind", kind),)
        for field in COUNTER_FIELDS:
            yield Sample(
                f"repro_store_{field}_total", "counter", labels,
                totals[field], _STORE_COUNTER_HELP[field],
            )
        yield Sample(
            "repro_store_entries", "gauge", labels, entries.get(kind, 0),
            "entries live across the process's memo stores",
        )


get_registry().register_collector(_collect_store_samples)
