"""The memo-store API: content-addressed caching of subtree distributions.

A *memo store* maps canonical keys to goal-set distributions (the
per-subtree blocked / unpinned evaluations of :mod:`repro.prob.engine`).
Keys are 5-tuples

    ``(structure, fingerprint, anchor, gate, backend)``

* ``structure`` — the structural digest of the p-subtree
  (:meth:`repro.pxml.pdocument.PDocument.structural_digest`): node kinds,
  labels, distribution parameters, order-insensitive, node-Id-free;
* ``fingerprint`` — the digest of the evaluating engine's goal table
  restricted to the labels occurring in the subtree
  (:meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint`
  hashed by :func:`repro.store.digest.fingerprint_digest`), with anchor
  *values* abstracted into slots;
* ``anchor`` — ``None`` for unanchored restrictions; for anchored ones
  the canonical anchor-position encoding: one tuple per anchor slot
  holding the sorted *rank paths* (digest-sorted child order, relative
  to the keyed subtree's root) of the admissible document nodes inside
  the subtree.  Positions are isomorphism-invariant, which is what turns
  the rewrite layer's anchored Theorem-1/2 traffic into shareable
  content-addressed entries (see :mod:`repro.store.keys`);
* ``gate`` — :data:`GATE_BLOCKED` / :data:`GATE_UNPINNED`, or ``None``
  when the restriction holds no output-node entry and the two evaluations
  coincide;
* ``backend`` — the numeric backend name (``"exact"`` / ``"fast"``):
  distributions live in the backend's value domain and must not mix.

Equal keys imply equal distributions (bit-identical on the ``exact``
backend; up to summation order on ``fast``), so entries may be shared
across queries with equal restricted tables, across isomorphic subtrees
of one document or of a document and its probabilistic extensions, and —
through :class:`repro.store.sqlite.SqliteStore` — across process
restarts.  No document identity enters a subtree key: those entries form
a pure content-addressed function table.

One deliberate exception rides in the same store:
:class:`repro.prob.session.QuerySession` caches per-query *candidate-Id
sets* under ``(identity digest, full-table fingerprint, None,
"candidates", "node-ids")``.  Those values name node Ids, so their first
component is the Id-*aware*
:meth:`~repro.pxml.pdocument.PDocument.identity_digest` (two isomorphic
documents with different Id assignments never share them), and the
payload is the ``{node_id: 1.0}`` indicator map.

Every ``put`` carries a *weight* — by convention the distribution's
support size times the subtree size, an estimate of the recomputation
cost the entry saves — which cost-aware eviction policies
(:class:`repro.store.memory.InMemoryStore`) use to decide what survives
memory pressure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

__all__ = [
    "GATE_BLOCKED",
    "GATE_UNPINNED",
    "StoreKey",
    "MemoStore",
    "is_anchored_key",
]

#: Gate tag: output-node D-goals suppressed (the "blocked" evaluations of
#: the single-pass answer DP).
GATE_BLOCKED = "blocked"
#: Gate tag: output-node D-goals granted normally (Boolean / anchored runs).
GATE_UNPINNED = "unpinned"

#: ``(structure, fingerprint, Optional[anchor], Optional[gate], backend)``.
StoreKey = tuple


def is_anchored_key(key: StoreKey) -> bool:
    """Whether a store key carries an anchor-position component.

    Stores use this to split their hit/miss/put counters into anchored
    and unanchored traffic (surfaced by :meth:`MemoStore.stats`,
    :meth:`repro.cache.RewritingCache.stats` and ``repro store stats``).
    """
    return len(key) == 5 and key[2] is not None


class MemoStore(ABC):
    """Abstract memo store; see the module docstring for key semantics.

    Implementations are single-process, single-thread consumers of the
    hot evaluation path: ``get`` / ``put`` must be cheap.  Distributions
    are immutable by convention (the engine never mutates a distribution
    after building it), so stores hand out the cached object itself.

    Attributes:
        hits / misses / puts / evictions: cumulative counters, also
            surfaced by :meth:`stats`.
        anchored_hits / anchored_misses / anchored_puts: the subset of the
            traffic whose keys carry an anchor-position component
            (:func:`is_anchored_key`) — the rewrite layer's Theorem-1/2
            anchored evaluations.  Concrete ``get``/``put``
            implementations maintain them via :meth:`_count_get` /
            :meth:`_count_put`.
        spine_recomputes / survived_entries: write-path counters
            maintained by :meth:`record_spine_recompute` — how many
            spine-only document mutations this store lived through, and
            the cumulative number of entries that stayed live across
            them (content addressing never purges; mutated subtrees just
            stop matching).  Surfaced by ``repro store stats``.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.anchored_hits = 0
        self.anchored_misses = 0
        self.anchored_puts = 0
        self.spine_recomputes = 0
        self.survived_entries = 0

    def _count_get(self, key: StoreKey, hit: bool) -> None:
        """Update the hit/miss counters for one ``get`` probe."""
        if hit:
            self.hits += 1
            if is_anchored_key(key):
                self.anchored_hits += 1
        else:
            self.misses += 1
            if is_anchored_key(key):
                self.anchored_misses += 1

    def _count_put(self, key: StoreKey) -> None:
        """Update the put counters for one ``put``."""
        self.puts += 1
        if is_anchored_key(key):
            self.anchored_puts += 1

    def record_spine_recompute(self, survived: int) -> None:
        """Record one spine-only document mutation against this store.

        ``survived`` is the number of entries still live after the
        mutation (all of them, for a content-addressed store — nothing
        is purged; stale digests simply stop matching).  Sessions call
        this from their spine refresh so ``repro store stats`` can show
        how much cached work churn preserved.
        """
        self.spine_recomputes += 1
        self.survived_entries += survived

    @abstractmethod
    def get(self, key: StoreKey) -> Optional[dict]:
        """The cached distribution for ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        """Cache ``distribution`` under ``key`` with recomputation ``weight``."""

    @abstractmethod
    def contains(self, key: StoreKey) -> bool:
        """Whether ``key`` is cached — no hit/miss counting, no LRU touch.

        Writers use this to skip redundant ``put`` calls: equal keys map
        to equal distributions, so re-storing a present entry is wasted
        work (for persistent stores, a wasted disk write per node).
        """

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached entries."""

    def stats(self) -> dict:
        """Counters plus implementation-specific gauges."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": len(self),
            "anchored_hits": self.anchored_hits,
            "anchored_misses": self.anchored_misses,
            "anchored_puts": self.anchored_puts,
            "spine_recomputes": self.spine_recomputes,
            "survived_entries": self.survived_entries,
        }

    def flush(self) -> None:
        """Make pending writes durable (no-op for purely in-memory stores)."""

    def close(self) -> None:
        """Flush and release resources; the store degrades to memory-only."""
        self.flush()
