"""The memo-store API: content-addressed caching of subtree distributions.

A *memo store* maps canonical keys to goal-set distributions (the
per-subtree blocked / unpinned evaluations of :mod:`repro.prob.engine`).
Keys are 4-tuples

    ``(structure, fingerprint, gate, backend)``

* ``structure`` — the structural digest of the p-subtree
  (:meth:`repro.pxml.pdocument.PDocument.structural_digest`): node kinds,
  labels, distribution parameters, order-insensitive, node-Id-free;
* ``fingerprint`` — the digest of the evaluating engine's goal table
  restricted to the labels occurring in the subtree
  (:meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint`
  hashed by :func:`repro.store.digest.fingerprint_digest`);
* ``gate`` — :data:`GATE_BLOCKED` / :data:`GATE_UNPINNED`, or ``None``
  when the restriction holds no output-node entry and the two evaluations
  coincide;
* ``backend`` — the numeric backend name (``"exact"`` / ``"fast"``):
  distributions live in the backend's value domain and must not mix.

Equal keys imply equal distributions (bit-identical on the ``exact``
backend; up to summation order on ``fast``), so entries may be shared
across queries with equal restricted tables, across isomorphic subtrees
of one document or of a document and its probabilistic extensions, and —
through :class:`repro.store.sqlite.SqliteStore` — across process
restarts.  No document identity enters a subtree key: those entries form
a pure content-addressed function table.

One deliberate exception rides in the same store:
:class:`repro.prob.session.QuerySession` caches per-query *candidate-Id
sets* under ``(identity digest, full-table fingerprint, "candidates",
"node-ids")``.  Those values name node Ids, so their first component is
the Id-*aware* :meth:`~repro.pxml.pdocument.PDocument.identity_digest`
(two isomorphic documents with different Id assignments never share
them), and the payload is the ``{node_id: 1.0}`` indicator map.

Every ``put`` carries a *weight* — by convention the distribution's
support size times the subtree size, an estimate of the recomputation
cost the entry saves — which cost-aware eviction policies
(:class:`repro.store.memory.InMemoryStore`) use to decide what survives
memory pressure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

__all__ = ["GATE_BLOCKED", "GATE_UNPINNED", "StoreKey", "MemoStore"]

#: Gate tag: output-node D-goals suppressed (the "blocked" evaluations of
#: the single-pass answer DP).
GATE_BLOCKED = "blocked"
#: Gate tag: output-node D-goals granted normally (Boolean / anchored runs).
GATE_UNPINNED = "unpinned"

#: ``(structure, fingerprint, Optional[gate], backend)``.
StoreKey = tuple


class MemoStore(ABC):
    """Abstract memo store; see the module docstring for key semantics.

    Implementations are single-process, single-thread consumers of the
    hot evaluation path: ``get`` / ``put`` must be cheap.  Distributions
    are immutable by convention (the engine never mutates a distribution
    after building it), so stores hand out the cached object itself.

    Attributes:
        hits / misses / puts / evictions: cumulative counters, also
            surfaced by :meth:`stats`.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    @abstractmethod
    def get(self, key: StoreKey) -> Optional[dict]:
        """The cached distribution for ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        """Cache ``distribution`` under ``key`` with recomputation ``weight``."""

    @abstractmethod
    def contains(self, key: StoreKey) -> bool:
        """Whether ``key`` is cached — no hit/miss counting, no LRU touch.

        Writers use this to skip redundant ``put`` calls: equal keys map
        to equal distributions, so re-storing a present entry is wasted
        work (for persistent stores, a wasted disk write per node).
        """

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached entries."""

    def stats(self) -> dict:
        """Counters plus implementation-specific gauges."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": len(self),
        }

    def flush(self) -> None:
        """Make pending writes durable (no-op for purely in-memory stores)."""

    def close(self) -> None:
        """Flush and release resources; the store degrades to memory-only."""
        self.flush()
