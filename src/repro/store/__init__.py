"""Persistent structural memo stores: content-addressed subtree caching.

The store subsystem turns the per-subtree memoization of
:mod:`repro.prob.session` from a node-identity cache into a
content-addressed one.  ``digest`` computes canonical structural digests
of p-subtrees (Merkle-style, order- and Id-insensitive); ``api`` defines
the :class:`MemoStore` contract and the canonical ``(structure,
fingerprint, gate, backend)`` key; ``memory`` implements cost-aware LRU
eviction (GreedyDual-Size); ``sqlite`` persists entries across process
restarts with graceful degradation; ``keys`` derives keys on the hot
evaluation path.

Because keys carry no document or node identity, one store may be shared
across queries, across documents (a document and its probabilistic
extensions, or any documents with isomorphic subtrees), across
:class:`~repro.prob.session.QuerySession` instances, and — via
:class:`SqliteStore` — across process restarts.
"""

from .api import (
    GATE_BLOCKED,
    GATE_UNPINNED,
    MemoStore,
    StoreKey,
    is_anchored_key,
)
from .digest import (
    compute_identity_index,
    compute_index,
    compute_positions,
    fingerprint_digest,
    identity_spine,
    recompute_spine,
)
from .keys import SubtreeKeyer
from .memory import InMemoryStore
from .sqlite import SqliteStore, open_store

__all__ = [
    "MemoStore",
    "StoreKey",
    "GATE_BLOCKED",
    "GATE_UNPINNED",
    "InMemoryStore",
    "SqliteStore",
    "open_store",
    "SubtreeKeyer",
    "compute_identity_index",
    "compute_index",
    "compute_positions",
    "fingerprint_digest",
    "identity_spine",
    "is_anchored_key",
    "recompute_spine",
]
