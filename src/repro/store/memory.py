"""In-memory memo store with cost-aware LRU eviction (GreedyDual-Size).

The old session memo bounded memory by *clearing everything* at a fixed
entry cap — one oversized workload threw away every hot entry.  This
store instead evicts entry-by-entry under a priority that blends recency
with recomputation cost:

    ``priority(e) = clock + weight(e)``

assigned on insertion and refreshed on every hit.  Eviction pops the
minimum-priority entry and advances the *clock* to that priority (the
classic GreedyDual-Size aging trick: the clock inflates every future
priority, so an entry not touched for a while gradually loses its head
start).  An entry therefore survives pressure if it is *recently used*
or *expensive to recompute* — weight is by convention the distribution's
support size times the subtree size it summarizes — whereas plain LRU
ignores cost and clear-at-capacity keeps nothing.

The priority queue is a lazy heap: stale records (superseded by a later
refresh, or pointing at an evicted key) are skipped on pop.  While the
store sits below its caps, hits refresh priorities without touching the
heap at all (the clock only moves on eviction), so the hot-path ``get``
is one dict lookup plus one comparison.
"""

from __future__ import annotations

import heapq
from typing import Optional

from .api import MemoStore, StoreKey, is_anchored_key

__all__ = ["InMemoryStore"]

# Entry layout: [distribution, weight, priority, stamp].
_VALUE, _WEIGHT, _PRIORITY, _STAMP = range(4)


class InMemoryStore(MemoStore):
    """Cost-aware LRU memo store bounded by total weight and entry count.

    Args:
        max_weight: cap on the summed entry weights (≈ recomputation-cost
            units, not bytes).
        max_entries: cap on the entry count.
    """

    def __init__(
        self, max_weight: int = 1 << 26, max_entries: int = 1 << 18
    ) -> None:
        super().__init__()
        self.max_weight = max_weight
        self.max_entries = max_entries
        self._entries: dict[StoreKey, list] = {}
        self._heap: list[tuple[float, int, StoreKey]] = []
        self._clock = 0.0
        self._stamp = 0
        self._weight = 0

    @property
    def weight(self) -> int:
        """Summed weight of the cached entries."""
        return self._weight

    def get(self, key: StoreKey) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self._count_get(key, hit=False)
            return None
        self._count_get(key, hit=True)
        self._touch(entry, key)
        return entry[_VALUE]

    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        weight = max(1, int(weight))
        self._count_put(key)
        self._stamp += 1
        priority = self._clock + weight
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = [distribution, weight, priority, self._stamp]
            self._weight += weight
        else:
            self._weight += weight - entry[_WEIGHT]
            entry[_VALUE] = distribution
            entry[_WEIGHT] = weight
            entry[_PRIORITY] = priority
            entry[_STAMP] = self._stamp
        heapq.heappush(self._heap, (priority, self._stamp, key))
        self._evict()

    def contains(self, key: StoreKey) -> bool:
        return key in self._entries

    def reprobe(self, key: StoreKey) -> Optional[dict]:
        """Single-probe second chance: one dict lookup, hit-only counting."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._count_get(key, hit=True)
        self._touch(entry, key)
        return entry[_VALUE]

    def _touch(self, entry: list, key: StoreKey) -> None:
        """Refresh an entry's GreedyDual-Size priority (a hit's side
        effect, shared by the point and bulk read paths)."""
        priority = self._clock + entry[_WEIGHT]
        if priority > entry[_PRIORITY]:
            self._stamp += 1
            entry[_PRIORITY] = priority
            entry[_STAMP] = self._stamp
            heapq.heappush(self._heap, (priority, self._stamp, key))

    # ------------------------------------------------------------------
    # Bulk protocol: O(len(keys)) direct dict operations
    # ------------------------------------------------------------------
    def get_many(self, keys, record: bool = True) -> dict:
        keys = list(keys)
        self._count_bulk(len(keys))
        entries = self._entries
        out = {}
        for key in keys:
            entry = entries.get(key)
            if entry is None:
                if record:
                    self._count_get(key, hit=False)
                continue
            if record:
                self._count_get(key, hit=True)
            self._touch(entry, key)
            out[key] = entry[_VALUE]
        return out

    def contains_many(self, keys) -> set:
        keys = list(keys)
        self._count_bulk(len(keys))
        entries = self._entries
        return {key for key in keys if key in entries}

    def put_many(self, entries) -> None:
        entries = list(entries)
        self._count_bulk(len(entries))
        for key, distribution, weight in entries:
            self.put(key, distribution, weight)

    def discard(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Sessions use this for targeted invalidation of node-keyed local
        memos after a spine-only mutation (drop the keys naming dirty
        node Ids, keep the rest).  Heap records of dropped keys go stale
        and are skipped by the usual lazy-eviction pop.  Returns the
        number of entries removed (not counted as evictions — these are
        invalidations, not pressure).
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            entry = self._entries.pop(key)
            self._weight -= entry[_WEIGHT]
        return len(doomed)

    def _evict(self) -> None:
        while (
            self._weight > self.max_weight
            or len(self._entries) > self.max_entries
        ):
            if not self._heap:  # pragma: no cover - every entry has a record
                break
            priority, stamp, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry[_STAMP] != stamp:
                continue  # stale record, superseded by a refresh
            del self._entries[key]
            self._weight -= entry[_WEIGHT]
            self._clock = priority
            self._count_eviction()

    def clear(self) -> None:
        self._entries.clear()
        self._heap.clear()
        self._clock = 0.0
        self._weight = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        gauges = super().stats()
        gauges.update(
            weight=self._weight,
            max_weight=self.max_weight,
            max_entries=self.max_entries,
            anchored_entries=sum(
                1 for key in self._entries if is_anchored_key(key)
            ),
        )
        return gauges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InMemoryStore(entries={len(self._entries)}, "
            f"weight={self._weight}/{self.max_weight})"
        )
