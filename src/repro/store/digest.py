"""Canonical structural digests for p-document subtrees.

The digest of a subtree is a Merkle-style hash over everything the
goal-set dynamic program of :mod:`repro.prob.engine` reads below a node:
the node kind, its label (for ordinary nodes), and — recursively — the
digests of its children paired with their edge probabilities (for
distributional nodes).  Children are hashed as a *sorted multiset*:
p-documents are unordered and every combine step of the DP (union
convolution, ind mixtures, mux sums) is commutative, so two subtrees
with equal digests produce identical blocked / unpinned distributions
for any goal table restricted to their labels.  That is the soundness
argument behind content-addressed memo sharing (compare the
structure-based tractability results of Amarilli et al. on treelike
uncertain data): work is keyed by subtree *shape*, not by node identity,
so isomorphic subtrees — within one document, between a document and its
probabilistic extensions, or across process restarts — share one
evaluation.

Digests are cached on :class:`repro.pxml.pdocument.PNode` (the
``_digest`` slot, tagged with the owning document's ``mutation_epoch``)
and recomputed lazily after a whole-document
:meth:`PDocument.mark_all_mutated`; a *node-scoped*
:meth:`PDocument.mark_mutated` instead calls :func:`recompute_spine`,
which re-derives the mutated subtree and then walks the ancestor chain
— O(depth) hash recomputations with an early exit as soon as an
ancestor's digest is unchanged — splicing fresh values into the cached
maps in place.  This module is deliberately ignorant of the pxml
classes — it reads ``kind`` / ``label`` / ``children`` /
``probabilities`` duck-typed, so the store package never imports the
document layer.

**Shape digests.**  Alongside the structural digest,
:func:`compute_index` derives a probability-*free* *shape* digest per
node (kind, label, sorted child shapes — no edge probabilities).  The
shape digest answers one question cheaply during a spine splice: did
this mutation change :meth:`PDocument.max_world` (and therefore
candidate sets), or only probability mass?  A probability-only edit
changes every structural digest on its spine but no shape digest, so
sessions keep their candidate caches and stacked batch plans warm.

**Identity digests.**  :func:`compute_identity_index` is the Id-*aware*
Merkle twin of the structural index: the payload additionally hashes
each node's Id.  Its root entry replaces the old
``canonical_key(with_ids=True)``-based document identity digest — same
discrimination (isomorphic documents with different Id assignments
never collide), but per-node form makes it spliceable in O(depth) via
:func:`identity_spine` instead of O(n log n) per mutation.

**Canonical anchor positions.**  :func:`compute_positions` derives, from
the same digests, a canonical *rank path* for every node: at each parent
the children are ordered by their digest sort key (the digest alone for
ordinary parents; ``(digest, edge probability)`` for distributional
ones — exactly the entries the parent digest hashes), and a node's
position is the tuple of child ranks on the path from the root.  Rank
paths are what make *anchored* evaluations content-addressable (compare
the isomorphism-invariant reasoning about p-documents in Amarilli's
possibility-problem analysis, arXiv:1404.3131): two subtrees with equal
digests admit a rank-respecting isomorphism — children of equal rank
have equal digests and edge probabilities, recursively — so pinning a
pattern node to "the node at rank path ``π``" means the same thing in
both.  Ties between digest-equal siblings are broken arbitrarily (input
order); any tie-break is sound because permuting digest-equal siblings
is an automorphism, and it maps one admissible tie-breaking onto any
other together with the anchored positions.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "DIGEST_SIZE",
    "compute_index",
    "compute_identity_index",
    "compute_positions",
    "fingerprint_digest",
    "identity_spine",
    "recompute_spine",
]

#: Digest width in bytes (blake2b); 128 bits make collisions negligible
#: even for stores holding billions of subtree entries.
DIGEST_SIZE = 16

# Field / sibling separators for the hashed payload.  Labels are parsed
# tokens and never contain control characters, so the encoding is
# prefix-free in practice.
_FIELD = b"\x1f"
_SIBLING = b"\x1e"


def _hash(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def fingerprint_digest(table: tuple) -> str:
    """Digest a canonical goal-table fingerprint.

    ``table`` is the nested tuple returned by
    :meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint` —
    strings, ints, bools and ``None`` only, whose ``repr`` is identical
    across processes — so the digest is a stable cross-restart key
    component.
    """
    return _hash(repr(table).encode("utf-8"))


def _structural_payload(node, digests: dict[int, str]) -> bytes:
    """The hashed structural payload of one node, given child digests."""
    probabilities = node.probabilities
    if probabilities is None:  # ordinary node
        entries = sorted(
            digests[child.node_id].encode("ascii")
            for child in node.children
        )
        return _FIELD.join(
            (b"ordinary", node.label.encode("utf-8"), _SIBLING.join(entries))
        )
    # Distributional: the edge probability is part of the child entry.
    entries = sorted(
        b"%s:%s"
        % (
            digests[child.node_id].encode("ascii"),
            str(probabilities[child.node_id]).encode("ascii"),
        )
        for child in node.children
    )
    return _FIELD.join(
        (node.kind.value.encode("ascii"), _SIBLING.join(entries))
    )


def _shape_payload(node, shapes: dict[int, str]) -> bytes:
    """Probability-free shape payload: kind, label, sorted child shapes."""
    entries = sorted(
        shapes[child.node_id].encode("ascii") for child in node.children
    )
    if node.probabilities is None:
        head = b"o" + _FIELD + node.label.encode("utf-8")
    else:
        head = node.kind.value.encode("ascii")
    return head + _FIELD + _SIBLING.join(entries)


def _identity_payload(node, identities: dict[int, str]) -> bytes:
    """Id-aware payload: the structural payload plus the node's own Id."""
    probabilities = node.probabilities
    if probabilities is None:
        entries = sorted(
            identities[child.node_id].encode("ascii")
            for child in node.children
        )
        body = (b"ordinary", node.label.encode("utf-8"))
    else:
        entries = sorted(
            b"%s:%s"
            % (
                identities[child.node_id].encode("ascii"),
                str(probabilities[child.node_id]).encode("ascii"),
            )
            for child in node.children
        )
        body = (node.kind.value.encode("ascii"),)
    return _FIELD.join(
        (b"id:%d" % node.node_id,) + body + (_SIBLING.join(entries),)
    )


def compute_index(
    root, epoch: int
) -> tuple[dict[int, str], dict[int, int], dict[int, str]]:
    """Structural digests, subtree sizes and shape digests under ``root``.

    One iterative post-order pass; every visited node's ``_digest`` slot
    is stamped with ``(epoch, digest, size)`` so subsequent single-node
    lookups are O(1) until the document mutates.

    Returns ``(digests, sizes, shapes)`` keyed by ``node_id``; ``shapes``
    holds the probability-free shape digests (see the module docstring).
    """
    digests: dict[int, str] = {}
    sizes: dict[int, int] = {}
    shapes: dict[int, str] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        digest = _hash(_structural_payload(node, digests))
        size = 1 + sum(sizes[child.node_id] for child in node.children)
        node_id = node.node_id
        digests[node_id] = digest
        sizes[node_id] = size
        shapes[node_id] = _hash(_shape_payload(node, shapes))
        node._digest = (epoch, digest, size)
    return digests, sizes, shapes


def compute_identity_index(root) -> dict[int, str]:
    """Id-aware Merkle digests for every node under ``root``.

    Same post-order shape as :func:`compute_index` but the payload hashes
    each node's Id, so two isomorphic subtrees with different Id
    assignments get different digests.  The root entry is the document's
    identity digest (:meth:`repro.pxml.pdocument.PDocument.
    identity_digest`); the per-node form exists so :func:`identity_spine`
    can splice it in O(depth) after a localized mutation.
    """
    identities: dict[int, str] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        identities[node.node_id] = _hash(_identity_payload(node, identities))
    return identities


def recompute_spine(
    node,
    epoch: int,
    digests: dict[int, str],
    sizes: dict[int, int],
    shapes: dict[int, str],
) -> tuple[set, bool]:
    """Splice fresh digests for ``node``'s subtree and its ancestor spine.

    The maps (one document's :func:`compute_index` output) are updated
    **in place**: the mutated subtree is fully re-derived (it may hold
    new or edited nodes), then the ancestor chain is rehashed bottom-up
    with an early exit as soon as an ancestor's digest, size and shape
    are all unchanged — above that point no payload can differ.  Spine
    nodes get their ``_digest`` slot restamped with ``epoch``; untouched
    nodes keep their old stamps, which stay valid under the document's
    ``_digest_floor`` scheme.

    Returns ``(changed_ids, world_changed)``: the ids whose digest
    actually changed (untouched descendants of the mutated node — same
    Merkle digest before and after — are *not* reported, so their memo
    entries survive) and whether the mutation changed the document's
    maximal world (shape digests differ at the mutated node — label or
    child-set edits; pure probability edits keep ``world_changed``
    false).
    """
    old_shape = shapes.get(node.node_id)
    sub_digests, sub_sizes, sub_shapes = compute_index(node, epoch)
    changed = {
        node_id
        for node_id, digest in sub_digests.items()
        if digests.get(node_id) != digest
    }
    world_changed = sub_shapes[node.node_id] != old_shape
    digests.update(sub_digests)
    sizes.update(sub_sizes)
    shapes.update(sub_shapes)
    current = node.parent
    while current is not None:
        node_id = current.node_id
        digest = _hash(_structural_payload(current, digests))
        size = 1 + sum(sizes[child.node_id] for child in current.children)
        shape = _hash(_shape_payload(current, shapes))
        if (
            digests.get(node_id) == digest
            and sizes.get(node_id) == size
            and shapes.get(node_id) == shape
        ):
            break
        digests[node_id] = digest
        sizes[node_id] = size
        shapes[node_id] = shape
        current._digest = (epoch, digest, size)
        changed.add(node_id)
        current = current.parent
    return changed, world_changed


def identity_spine(node, identities: dict[int, str]) -> None:
    """Splice Id-aware digests for ``node``'s subtree and ancestors.

    The :func:`compute_identity_index` map is updated in place, with the
    same bottom-up early exit as :func:`recompute_spine`.
    """
    identities.update(compute_identity_index(node))
    current = node.parent
    while current is not None:
        digest = _hash(_identity_payload(current, identities))
        if identities.get(current.node_id) == digest:
            break
        identities[current.node_id] = digest
        current = current.parent


def compute_positions(root, digests: dict[int, str]) -> dict[int, tuple]:
    """Canonical rank path for every node under ``root``.

    ``digests`` is the :func:`compute_index` digest map for the same
    (sub)tree.  Children are ranked by their digest sort key — the same
    ordering the parent digest hashes — so ranks are invariant under
    isomorphism: nodes of equal rank path in digest-equal trees
    correspond under a (label-, kind- and probability-preserving)
    isomorphism.  The root's path is the empty tuple; a child's path
    appends its rank among its siblings.

    One O(n log n) pass; see the module docstring for the soundness
    argument behind arbitrary tie-breaking.
    """
    positions: dict[int, tuple] = {root.node_id: ()}
    stack = [root]
    while stack:
        node = stack.pop()
        children = node.children
        if not children:
            continue
        base = positions[node.node_id]
        probabilities = node.probabilities
        if probabilities is None:
            ranked = sorted(children, key=lambda c: digests[c.node_id])
        else:
            ranked = sorted(
                children,
                key=lambda c: (
                    digests[c.node_id],
                    str(probabilities[c.node_id]),
                ),
            )
        for rank, child in enumerate(ranked):
            positions[child.node_id] = base + (rank,)
            stack.append(child)
    return positions
