"""Canonical structural digests for p-document subtrees.

The digest of a subtree is a Merkle-style hash over everything the
goal-set dynamic program of :mod:`repro.prob.engine` reads below a node:
the node kind, its label (for ordinary nodes), and — recursively — the
digests of its children paired with their edge probabilities (for
distributional nodes).  Children are hashed as a *sorted multiset*:
p-documents are unordered and every combine step of the DP (union
convolution, ind mixtures, mux sums) is commutative, so two subtrees
with equal digests produce identical blocked / unpinned distributions
for any goal table restricted to their labels.  That is the soundness
argument behind content-addressed memo sharing (compare the
structure-based tractability results of Amarilli et al. on treelike
uncertain data): work is keyed by subtree *shape*, not by node identity,
so isomorphic subtrees — within one document, between a document and its
probabilistic extensions, or across process restarts — share one
evaluation.

Digests are cached on :class:`repro.pxml.pdocument.PNode` (the
``_digest`` slot, tagged with the owning document's ``mutation_epoch``)
and recomputed lazily after :meth:`PDocument.mark_mutated`.  This module
is deliberately ignorant of the pxml classes — it reads ``kind`` /
``label`` / ``children`` / ``probabilities`` duck-typed, so the store
package never imports the document layer.

**Canonical anchor positions.**  :func:`compute_positions` derives, from
the same digests, a canonical *rank path* for every node: at each parent
the children are ordered by their digest sort key (the digest alone for
ordinary parents; ``(digest, edge probability)`` for distributional
ones — exactly the entries the parent digest hashes), and a node's
position is the tuple of child ranks on the path from the root.  Rank
paths are what make *anchored* evaluations content-addressable (compare
the isomorphism-invariant reasoning about p-documents in Amarilli's
possibility-problem analysis, arXiv:1404.3131): two subtrees with equal
digests admit a rank-respecting isomorphism — children of equal rank
have equal digests and edge probabilities, recursively — so pinning a
pattern node to "the node at rank path ``π``" means the same thing in
both.  Ties between digest-equal siblings are broken arbitrarily (input
order); any tie-break is sound because permuting digest-equal siblings
is an automorphism, and it maps one admissible tie-breaking onto any
other together with the anchored positions.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "DIGEST_SIZE",
    "compute_index",
    "compute_positions",
    "fingerprint_digest",
]

#: Digest width in bytes (blake2b); 128 bits make collisions negligible
#: even for stores holding billions of subtree entries.
DIGEST_SIZE = 16

# Field / sibling separators for the hashed payload.  Labels are parsed
# tokens and never contain control characters, so the encoding is
# prefix-free in practice.
_FIELD = b"\x1f"
_SIBLING = b"\x1e"


def _hash(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def fingerprint_digest(table: tuple) -> str:
    """Digest a canonical goal-table fingerprint.

    ``table`` is the nested tuple returned by
    :meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint` —
    strings, ints, bools and ``None`` only, whose ``repr`` is identical
    across processes — so the digest is a stable cross-restart key
    component.
    """
    return _hash(repr(table).encode("utf-8"))


def compute_index(root, epoch: int) -> tuple[dict[int, str], dict[int, int]]:
    """Structural digests and subtree sizes for every node under ``root``.

    One iterative post-order pass; every visited node's ``_digest`` slot
    is stamped with ``(epoch, digest, size)`` so subsequent single-node
    lookups are O(1) until the document mutates.

    Returns ``(digests, sizes)`` keyed by ``node_id``.
    """
    digests: dict[int, str] = {}
    sizes: dict[int, int] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        probabilities = node.probabilities
        if probabilities is None:  # ordinary node
            entries = sorted(
                digests[child.node_id].encode("ascii")
                for child in node.children
            )
            payload = _FIELD.join(
                (b"ordinary", node.label.encode("utf-8"), _SIBLING.join(entries))
            )
        else:  # distributional: the edge probability is part of the child entry
            entries = sorted(
                b"%s:%s"
                % (
                    digests[child.node_id].encode("ascii"),
                    str(probabilities[child.node_id]).encode("ascii"),
                )
                for child in node.children
            )
            payload = _FIELD.join(
                (node.kind.value.encode("ascii"), _SIBLING.join(entries))
            )
        digest = _hash(payload)
        size = 1 + sum(sizes[child.node_id] for child in node.children)
        node_id = node.node_id
        digests[node_id] = digest
        sizes[node_id] = size
        node._digest = (epoch, digest, size)
    return digests, sizes


def compute_positions(root, digests: dict[int, str]) -> dict[int, tuple]:
    """Canonical rank path for every node under ``root``.

    ``digests`` is the :func:`compute_index` digest map for the same
    (sub)tree.  Children are ranked by their digest sort key — the same
    ordering the parent digest hashes — so ranks are invariant under
    isomorphism: nodes of equal rank path in digest-equal trees
    correspond under a (label-, kind- and probability-preserving)
    isomorphism.  The root's path is the empty tuple; a child's path
    appends its rank among its siblings.

    One O(n log n) pass; see the module docstring for the soundness
    argument behind arbitrary tie-breaking.
    """
    positions: dict[int, tuple] = {root.node_id: ()}
    stack = [root]
    while stack:
        node = stack.pop()
        children = node.children
        if not children:
            continue
        base = positions[node.node_id]
        probabilities = node.probabilities
        if probabilities is None:
            ranked = sorted(children, key=lambda c: digests[c.node_id])
        else:
            ranked = sorted(
                children,
                key=lambda c: (
                    digests[c.node_id],
                    str(probabilities[c.node_id]),
                ),
            )
        for rank, child in enumerate(ranked):
            positions[child.node_id] = base + (rank,)
            stack.append(child)
    return positions
