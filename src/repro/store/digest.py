"""Canonical structural digests for p-document subtrees.

The digest of a subtree is a Merkle-style hash over everything the
goal-set dynamic program of :mod:`repro.prob.engine` reads below a node:
the node kind, its label (for ordinary nodes), and — recursively — the
digests of its children paired with their edge probabilities (for
distributional nodes).  Children are hashed as a *sorted multiset*:
p-documents are unordered and every combine step of the DP (union
convolution, ind mixtures, mux sums) is commutative, so two subtrees
with equal digests produce identical blocked / unpinned distributions
for any goal table restricted to their labels.  That is the soundness
argument behind content-addressed memo sharing (compare the
structure-based tractability results of Amarilli et al. on treelike
uncertain data): work is keyed by subtree *shape*, not by node identity,
so isomorphic subtrees — within one document, between a document and its
probabilistic extensions, or across process restarts — share one
evaluation.

Digests are cached on :class:`repro.pxml.pdocument.PNode` (the
``_digest`` slot, tagged with the owning document's ``mutation_epoch``)
and recomputed lazily after :meth:`PDocument.mark_mutated`.  This module
is deliberately ignorant of the pxml classes — it reads ``kind`` /
``label`` / ``children`` / ``probabilities`` duck-typed, so the store
package never imports the document layer.
"""

from __future__ import annotations

import hashlib

__all__ = ["DIGEST_SIZE", "compute_index", "fingerprint_digest"]

#: Digest width in bytes (blake2b); 128 bits make collisions negligible
#: even for stores holding billions of subtree entries.
DIGEST_SIZE = 16

# Field / sibling separators for the hashed payload.  Labels are parsed
# tokens and never contain control characters, so the encoding is
# prefix-free in practice.
_FIELD = b"\x1f"
_SIBLING = b"\x1e"


def _hash(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def fingerprint_digest(table: tuple) -> str:
    """Digest a canonical goal-table fingerprint.

    ``table`` is the nested tuple returned by
    :meth:`repro.prob.engine.EvaluationEngine.goal_table_fingerprint` —
    strings, ints, bools and ``None`` only, whose ``repr`` is identical
    across processes — so the digest is a stable cross-restart key
    component.
    """
    return _hash(repr(table).encode("utf-8"))


def compute_index(root, epoch: int) -> tuple[dict[int, str], dict[int, int]]:
    """Structural digests and subtree sizes for every node under ``root``.

    One iterative post-order pass; every visited node's ``_digest`` slot
    is stamped with ``(epoch, digest, size)`` so subsequent single-node
    lookups are O(1) until the document mutates.

    Returns ``(digests, sizes)`` keyed by ``node_id``.
    """
    digests: dict[int, str] = {}
    sizes: dict[int, int] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in node.children)
            continue
        probabilities = node.probabilities
        if probabilities is None:  # ordinary node
            entries = sorted(
                digests[child.node_id].encode("ascii")
                for child in node.children
            )
            payload = _FIELD.join(
                (b"ordinary", node.label.encode("utf-8"), _SIBLING.join(entries))
            )
        else:  # distributional: the edge probability is part of the child entry
            entries = sorted(
                b"%s:%s"
                % (
                    digests[child.node_id].encode("ascii"),
                    str(probabilities[child.node_id]).encode("ascii"),
                )
                for child in node.children
            )
            payload = _FIELD.join(
                (node.kind.value.encode("ascii"), _SIBLING.join(entries))
            )
        digest = _hash(payload)
        size = 1 + sum(sizes[child.node_id] for child in node.children)
        node_id = node.node_id
        digests[node_id] = digest
        sizes[node_id] = size
        node._digest = (epoch, digest, size)
    return digests, sizes
