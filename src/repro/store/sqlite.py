"""File-backed (SQLite) memo store: subtree distributions that survive
process restarts.

Entries are the same content-addressed ``(structure, fingerprint, gate,
backend)`` records as :class:`repro.store.memory.InMemoryStore` holds,
persisted in a single ``memo`` table so a restarted worker — or a
different worker pointed at the same file — starts with every previously
computed subtree distribution already available ("warm-from-disk"; see
``benchmarks/bench_store.py``).

**Payload codec.**  Distributions are JSON: exact (:class:`Fraction`)
values as ``"num/den"`` strings, ``fast`` floats as JSON numbers, goal
masks as arbitrary-precision ints — version-tagged so a future format
change degrades to a cache miss rather than a wrong answer.  Entries
whose values are neither ``Fraction`` nor ``float`` (a custom backend's
domain) are kept in memory but not persisted.

**Anchored-entry codec.**  The key's anchor-position component (one
tuple of relative rank paths per anchor slot, ``None`` when unanchored —
see :mod:`repro.store.keys`) persists in its own ``anchor`` column,
serialized with a codec version prefix (``"1;@0.2,@1|@3"``: slots joined
by ``|``, positions by ``,``, ranks by ``.`` after a ``@``) so a future
encoding change turns old rows into misses instead of wrong shares.
Store files written before the anchor column existed are detected by
schema inspection and dropped — a cache format upgrade costs one cold
fill, never a wrong answer.

**Read caching.**  Decoded entries are cached in memory write-through.
By default the whole table is decoded on first access (``preload=True``)
— memo tables are tiny next to the evaluation work they encode, and one
bulk ``SELECT`` is far cheaper than per-subtree point lookups on the hot
path.  Pass ``preload=False`` for very large shared stores to fall back
to per-key lookups; note this bounds *startup* cost only — the read
cache still grows with the entries actually touched (the working set),
so a worker that sweeps an entire huge store should recycle the store
instance (or front it with an :class:`~repro.store.memory.InMemoryStore`
tier) to bound steady-state memory.

**Degradation, not failure.**  A corrupt, unreadable or write-locked
store file must never break query evaluation: every SQLite error demotes
the store to memory-only operation with a :class:`RuntimeWarning`
(``degraded`` is set), keeping results correct and merely losing
persistence.

**Bulk I/O.**  ``get_many`` answers a whole probe plan in a handful of
chunked row-value ``IN`` selects (``_READ_CHUNK`` keys per statement,
sized under SQLite's 999-parameter limit) instead of one point
``SELECT`` per key; ``put_many`` lands a pass's saves as one
``executemany`` transaction.  ``contains_many`` needs no SQL at all:
on open the store scans the table *once* for ``(key, weight)`` pairs
into an in-process row map, which thereafter answers ``contains`` /
``__len__`` / ``stats()`` and lets the lazy read path skip the SQL
round trip for keys known to be absent.  The map assumes this process
is the only writer — the documented single-writer deployment; a second
concurrent writer's rows become visible after reopen.

**Write-behind.**  ``write_behind=N`` buffers puts in process and
drains them with one ``executemany`` + commit when N accumulate, at
``flush()``, or at ``close()``.  Readers of the *same* store instance
see buffered entries immediately (they sit in the read cache); other
processes see them only after a flush.  A crash before the flush loses
the pending puts — they were never sent to SQLite, so the file is
merely stale, never corrupt.
"""

from __future__ import annotations

import json
import sqlite3
import warnings
from fractions import Fraction
from time import perf_counter
from typing import Optional, Union

from ..obs.registry import get_registry
from ..obs.trace import get_tracer
from .api import MemoStore, StoreKey, is_anchored_key

__all__ = ["SqliteStore", "open_store"]

# Probe/put latency histograms, observed only while tracing is enabled
# (two perf_counter calls would double the cost of a preloaded-cache
# get on the default no-telemetry path).
_PROBE_SECONDS = get_registry().histogram(
    "repro_store_sqlite_probe_seconds",
    help="SqliteStore.get latency (recorded while tracing is enabled)",
)
_PUT_SECONDS = get_registry().histogram(
    "repro_store_sqlite_put_seconds",
    help="SqliteStore.put latency (recorded while tracing is enabled)",
)
_BULK_SECONDS = get_registry().histogram(
    "repro_store_sqlite_bulk_seconds",
    help="SqliteStore bulk-call latency (recorded while tracing is enabled)",
)
# Counts every statement handed to SQLite (execute or executemany) — the
# store's round-trip proxy.  bench_store's round-trips column reads the
# delta of this series across a pass to show bulk probing issuing O(1)
# statements where per-key probing issues O(nodes).
_STATEMENTS = get_registry().counter(
    "repro_store_sqlite_statements_total",
    help="SQL statements issued by SqliteStore (execute + executemany)",
)

_PAYLOAD_VERSION = 1
_ANCHOR_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS memo (
    structure   TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    anchor      TEXT NOT NULL,
    gate        TEXT NOT NULL,
    backend     TEXT NOT NULL,
    payload     TEXT NOT NULL,
    weight      INTEGER NOT NULL DEFAULT 1,
    PRIMARY KEY (structure, fingerprint, anchor, gate, backend)
)
"""


def _encode_anchor(anchor) -> str:
    """Serialize a key's anchor-position component (``""`` = unanchored)."""
    if anchor is None:
        return ""
    slots = []
    for positions in anchor:
        slots.append(
            ",".join("@" + ".".join(map(str, path)) for path in positions)
        )
    return _ANCHOR_VERSION + ";" + "|".join(slots)


def _decode_anchor(text: str):
    """Inverse of :func:`_encode_anchor`; raises ``ValueError`` on foreign
    or future-versioned encodings."""
    if text == "":
        return None
    version, _, body = text.partition(";")
    if version != _ANCHOR_VERSION:
        raise ValueError(f"unsupported anchor encoding: {text[:40]!r}")
    slots = []
    for slot in body.split("|"):
        positions = []
        for entry in slot.split(","):
            if not entry:
                continue
            if not entry.startswith("@"):
                raise ValueError(f"malformed anchor position {entry!r}")
            ranks = entry[1:]
            positions.append(
                tuple(int(rank) for rank in ranks.split(".")) if ranks else ()
            )
        slots.append(tuple(positions))
    return tuple(slots)


def _encode(distribution) -> Optional[str]:
    """JSON payload for a distribution, or ``None`` if not serializable.

    Two payload generations coexist in one table:

    * **v1** — scalar dicts.  Exact values travel as ``[numerator,
      denominator]`` pairs (faster to revive than ``"num/den"`` strings
      — decode speed is what bounds the warm-from-disk preload), floats
      as plain JSON numbers.
    * **v2** — packed-array distributions from the ``array`` backend,
      duck-typed by their aligned ``masks``/``values`` arrays: kind
      ``"a"`` for a 1-D :class:`~repro.probability_array.ArrayDistribution`,
      kind ``"s"`` for a 2-D lane-batched
      :class:`~repro.probability_array.StackedDistribution`.
    """
    masks = getattr(distribution, "masks", None)
    if masks is not None:
        kind = "a" if getattr(masks, "ndim", 0) == 1 else "s"
        return json.dumps(
            {
                "v": 2,
                "k": kind,
                "m": masks.tolist(),
                "p": distribution.values.tolist(),
            }
        )
    items = []
    for mask, value in distribution.items():
        if isinstance(value, Fraction):
            items.append((mask, (value.numerator, value.denominator)))
        elif isinstance(value, float):
            items.append((mask, value))
        else:
            return None
    return json.dumps({"v": _PAYLOAD_VERSION, "d": items})


def _decode(payload: str):
    """Inverse of :func:`_encode`; raises ``ValueError`` on foreign data.

    v2 payloads revive through :mod:`repro.probability_array`; when
    numpy is unavailable in the reading process the payload is treated
    as foreign (``ValueError`` → miss) rather than failing the query.
    """
    data = json.loads(payload)
    if not isinstance(data, dict):
        raise ValueError(f"unsupported memo payload: {payload[:40]!r}")
    version = data.get("v")
    if version == 2:
        return _decode_array(data, payload)
    if version != _PAYLOAD_VERSION:
        raise ValueError(f"unsupported memo payload version: {payload[:40]!r}")
    return {
        int(mask): Fraction(*value) if isinstance(value, list) else float(value)
        for mask, value in data["d"]
    }


def _decode_array(data: dict, payload: str):
    """Revive a v2 packed-array payload (see :func:`_encode`)."""
    try:
        import numpy

        from ..probability_array import ArrayDistribution, StackedDistribution
    except ImportError as exc:
        raise ValueError(
            f"array memo payload needs numpy to decode: {exc}"
        ) from exc
    kind = data.get("k")
    try:
        masks = numpy.asarray(data["m"], dtype=numpy.int64)
        values = numpy.asarray(data["p"], dtype=numpy.float64)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed array memo payload: {payload[:40]!r}") from exc
    if kind == "a" and masks.ndim == 1 and masks.shape == values.shape:
        return ArrayDistribution(masks, values)
    if kind == "s" and masks.ndim == 2 and masks.shape == values.shape:
        return StackedDistribution(masks, values)
    raise ValueError(f"malformed array memo payload: {payload[:40]!r}")


class SqliteStore(MemoStore):
    """Persistent memo store over a single SQLite file.

    Args:
        path: the store file (created if missing).
        preload: decode the whole table into memory on first access.
        commit_every: pending writes accumulated before an implicit
            commit; :meth:`flush`/:meth:`close` always commit.
        write_behind: when positive, buffer puts in process and drain
            them with one ``executemany`` + commit once this many
            accumulate (or on :meth:`flush`/:meth:`close`).  ``0``
            (default) writes through per put.

    Attributes:
        degraded: true once persistence failed and the store fell back
            to memory-only operation (a warning was emitted).
    """

    # Keys per IN-clause chunk in bulk reads: 5 bound parameters per key,
    # kept well under SQLite's historical 999-variable ceiling.
    _READ_CHUNK = 160

    _INSERT_SQL = (
        "INSERT OR REPLACE INTO memo"
        " (structure, fingerprint, anchor, gate, backend, payload, weight)"
        " VALUES (?, ?, ?, ?, ?, ?, ?)"
    )

    def __init__(
        self,
        path: Union[str, "object"],
        preload: bool = True,
        commit_every: int = 256,
        write_behind: int = 0,
    ) -> None:
        super().__init__()
        self.path = str(path)
        self.preload = preload
        self.commit_every = commit_every
        self.write_behind = max(0, int(write_behind))
        self.degraded = False
        self._cache: dict[StoreKey, dict] = {}
        self._complete = False  # cache mirrors the whole table
        self._pending = 0
        self._buffer: list[tuple] = []  # write-behind rows awaiting drain
        # In-process row gauges, maintained from one scan on open and
        # updated on put/delete/clear — ``contains``/``__len__``/``stats``
        # never re-run COUNT(*)/SUM(weight) against the file.
        self._row_weights: dict[StoreKey, int] = {}
        self._row_count = 0
        self._row_weight = 0
        self._anchored_rows = 0
        self._conn: Optional[sqlite3.Connection] = None
        try:
            conn = sqlite3.connect(self.path)
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(memo)")
            }
            if columns and "anchor" not in columns:
                # Pre-anchor schema: the key format changed, so the cached
                # entries are unreachable anyway — drop and refill cold.
                conn.execute("DROP TABLE memo")
            conn.execute(_SCHEMA)
            conn.commit()
            self._conn = conn
            for structure, fingerprint, anchor, gate, backend, weight in (
                conn.execute(
                    "SELECT structure, fingerprint, anchor, gate, backend,"
                    " weight FROM memo"
                )
            ):
                self._row_count += 1
                self._row_weight += weight
                if anchor != "":
                    self._anchored_rows += 1
                try:
                    decoded = _decode_anchor(anchor)
                except ValueError:
                    continue  # foreign encoding: counted, never probed
                key = (structure, fingerprint, decoded, gate or None, backend)
                self._row_weights[key] = weight
        except sqlite3.Error as exc:
            self._degrade(exc)

    # ------------------------------------------------------------------
    # MemoStore interface
    # ------------------------------------------------------------------
    store_kind = "sqlite"

    def get(self, key: StoreKey) -> Optional[dict]:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._get(key)
            finally:
                _PROBE_SECONDS.observe(perf_counter() - start)
        return self._get(key)

    def _get(self, key: StoreKey) -> Optional[dict]:
        if self.preload and not self._complete:
            self._preload()
        cached = self._cache.get(key)
        if cached is not None:
            self._count_get(key, hit=True)
            return cached
        if (
            not self._complete
            and self._conn is not None
            and key in self._row_weights
        ):
            distribution = self._fetch_one(key)
            if distribution is not None:
                self._count_get(key, hit=True)
                return distribution
        self._count_get(key, hit=False)
        return None

    def _fetch_one(self, key: StoreKey) -> Optional[dict]:
        """Point-read one row known to exist (per the row map); repairs
        undecodable rows by dropping them so ``contains`` agrees and the
        next computation's ``put`` refills the entry."""
        row = self._execute(
            "SELECT payload FROM memo WHERE structure = ? AND fingerprint = ?"
            " AND anchor = ? AND gate = ? AND backend = ?",
            self._row_key(key),
        )
        row = row.fetchone() if row is not None else None
        if row is None:
            return None
        try:
            distribution = _decode(row[0])
        except (ValueError, TypeError, KeyError):
            self._drop_row(key)
            return None
        self._cache[key] = distribution
        return distribution

    def reprobe(self, key: StoreKey) -> Optional[dict]:
        """Single-probe second chance: a hit counts, a miss does not.

        Collapses the old ``contains``-then-``get`` double round trip —
        the row map answers presence in process, so at most one SQL
        statement runs, and only for a key the map says is present.
        """
        if self.preload and not self._complete:
            self._preload()
        cached = self._cache.get(key)
        if cached is not None:
            self._count_get(key, hit=True)
            return cached
        if (
            not self._complete
            and self._conn is not None
            and key in self._row_weights
        ):
            distribution = self._fetch_one(key)
            if distribution is not None:
                self._count_get(key, hit=True)
                return distribution
        return None

    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._put(key, distribution, weight)
            finally:
                _PUT_SECONDS.observe(perf_counter() - start)
        return self._put(key, distribution, weight)

    def _put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        if self.preload and not self._complete:
            self._preload()
        self._count_put(key)
        self._cache[key] = distribution
        if self._conn is None:
            return
        payload = _encode(distribution)
        if payload is None:
            return  # non-serializable backend domain: memory-only entry
        weight = max(1, int(weight))
        self._account_row(key, weight)
        row = self._row_key(key) + (payload, weight)
        if self.write_behind:
            self._buffer.append(row)
            if len(self._buffer) >= self.write_behind:
                self.flush()
            return
        self._execute(self._INSERT_SQL, row)
        self._pending += 1
        if self._pending >= self.commit_every:
            self.flush()

    def contains(self, key: StoreKey) -> bool:
        if self.preload and not self._complete:
            self._preload()
        if key in self._cache:
            return True
        if self._complete or self._conn is None:
            return False
        return key in self._row_weights  # row map: presence without SQL

    @property
    def prefers_bulk(self) -> bool:
        """Traversals should plan bulk probes while rows are reachable."""
        return self._conn is not None

    # ------------------------------------------------------------------
    # Bulk protocol: chunked IN-clause reads, executemany writes
    # ------------------------------------------------------------------
    def get_many(self, keys, record: bool = True) -> dict:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._get_many(keys, record)
            finally:
                _BULK_SECONDS.observe(perf_counter() - start)
        return self._get_many(keys, record)

    def _get_many(self, keys, record: bool) -> dict:
        keys = list(keys)
        self._count_bulk(len(keys))
        if self.preload and not self._complete:
            self._preload()
        found: dict[StoreKey, dict] = {}
        missing: list[StoreKey] = []
        cache = self._cache
        lazy = not self._complete and self._conn is not None
        for key in keys:
            value = cache.get(key)
            if value is not None:
                found[key] = value
            elif lazy and key in self._row_weights:
                missing.append(key)
        if missing:
            self._fetch_rows(missing, found)
        if record:
            for key in keys:
                self._count_get(key, hit=key in found)
        return found

    def _fetch_rows(self, keys: list, found: dict) -> None:
        """Chunked row-value ``IN`` reads for keys the row map says exist."""
        for lo in range(0, len(keys), self._READ_CHUNK):
            chunk = keys[lo : lo + self._READ_CHUNK]
            row_keys = [self._row_key(key) for key in chunk]
            by_row = dict(zip(row_keys, chunk))
            placeholders = ", ".join(["(?, ?, ?, ?, ?)"] * len(chunk))
            rows = self._execute(
                "SELECT structure, fingerprint, anchor, gate, backend,"
                " payload FROM memo WHERE"
                " (structure, fingerprint, anchor, gate, backend)"
                f" IN (VALUES {placeholders})",
                tuple(value for row_key in row_keys for value in row_key),
            )
            if rows is None:
                return  # degraded mid-plan: remaining keys become misses
            doomed = []
            for structure, fingerprint, anchor, gate, backend, payload in (
                rows.fetchall()
            ):
                key = by_row.get((structure, fingerprint, anchor, gate, backend))
                if key is None:  # pragma: no cover - IN returns only asked rows
                    continue
                try:
                    value = _decode(payload)
                except (ValueError, TypeError, KeyError):
                    doomed.append(key)
                    continue
                self._cache[key] = value
                found[key] = value
            for key in doomed:
                self._drop_row(key)

    def contains_many(self, keys) -> set:
        keys = list(keys)
        self._count_bulk(len(keys))
        if self.preload and not self._complete:
            self._preload()
        cache = self._cache
        if self._complete or self._conn is None:
            return {key for key in keys if key in cache}
        row_map = self._row_weights
        return {key for key in keys if key in cache or key in row_map}

    def put_many(self, entries) -> None:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._put_many(entries)
            finally:
                _BULK_SECONDS.observe(perf_counter() - start)
        return self._put_many(entries)

    def _put_many(self, entries) -> None:
        entries = list(entries)
        self._count_bulk(len(entries))
        if self.preload and not self._complete:
            self._preload()
        rows = []
        for key, distribution, weight in entries:
            self._count_put(key)
            self._cache[key] = distribution
            if self._conn is None:
                continue
            payload = _encode(distribution)
            if payload is None:
                continue  # non-serializable: memory-only entry
            weight = max(1, int(weight))
            self._account_row(key, weight)
            rows.append(self._row_key(key) + (payload, weight))
        if not rows or self._conn is None:
            return
        if self.write_behind:
            self._buffer.extend(rows)
            if len(self._buffer) >= self.write_behind:
                self.flush()
            return
        # One executemany + one commit: the whole batch is one transaction.
        if self._executemany(self._INSERT_SQL, rows) is not None:
            self._pending += len(rows)
            self.flush()

    def clear(self) -> None:
        self._cache.clear()
        self._buffer.clear()
        self._row_weights.clear()
        self._row_count = 0
        self._row_weight = 0
        self._anchored_rows = 0
        self._complete = self._conn is None
        if self._conn is not None:
            self._execute("DELETE FROM memo")
            self.flush()

    def __len__(self) -> int:
        """Entries visible to :meth:`get`.

        In preloading mode (the default) the whole table is decoded
        first, so the count is the same whichever access path ran before
        — undecodable foreign rows are excluded.  In lazy mode the count
        is approximate: the larger of the row count (maintained in
        process, no SQL) and the cache size, which over-counts foreign
        payloads and under-counts memory-only (non-serializable) entries
        coexisting with persisted rows.
        """
        if self.preload and not self._complete:
            self._preload()
        if self._conn is None or self._complete:
            return len(self._cache)
        return max(self._row_count, len(self._cache))

    def stats(self) -> dict:
        gauges = super().stats()
        weight = None
        anchored_entries = None
        write_behind_pending = None
        if self._conn is not None:
            # In-process row gauges (one scan on open keeps them exact —
            # no COUNT(*)/SUM(weight) per call).
            weight = self._row_weight
            anchored_entries = self._anchored_rows
            if self.write_behind:
                write_behind_pending = len(self._buffer)
        gauges.update(
            path=self.path,
            degraded=self.degraded,
            cached_entries=len(self._cache),
            weight=weight,
            anchored_entries=anchored_entries,
            write_behind_pending=write_behind_pending,
        )
        return gauges

    def flush(self) -> None:
        """Drain the write-behind buffer (if any) and commit.

        Counted in ``stats()["flushes"]`` only when work was pending —
        an idle flush is free and invisible.
        """
        if self._conn is None:
            return
        rows = self._buffer
        flushed = bool(rows) or self._pending > 0
        if rows:
            self._buffer = []
            if self._executemany(self._INSERT_SQL, rows) is None:
                return  # degraded: the pending puts are lost, file intact
        try:
            self._conn.commit()
        except sqlite3.Error as exc:
            self._degrade(exc)
            return
        self._pending = 0
        if flushed:
            self._count_flush()

    def close(self) -> None:
        """Commit and detach from the file; the store stays usable in memory."""
        self.flush()
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._complete = True  # only the cache remains visible

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _row_key(key: StoreKey) -> tuple:
        structure, fingerprint, anchor, gate, backend = key
        return (structure, fingerprint, _encode_anchor(anchor), gate or "", backend)

    def _execute(self, sql: str, parameters: tuple = ()):
        assert self._conn is not None
        _STATEMENTS.inc()
        try:
            return self._conn.execute(sql, parameters)
        except sqlite3.Error as exc:
            self._degrade(exc)
            return None

    def _executemany(self, sql: str, rows: list):
        assert self._conn is not None
        _STATEMENTS.inc()
        try:
            return self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            self._degrade(exc)
            return None

    def _account_row(self, key: StoreKey, weight: int) -> None:
        """Track a put's effect on the in-process row gauges."""
        old = self._row_weights.get(key)
        if old is None:
            self._row_count += 1
            self._row_weight += weight
            if is_anchored_key(key):
                self._anchored_rows += 1
        else:
            self._row_weight += weight - old
        self._row_weights[key] = weight

    def _drop_row(self, key: StoreKey) -> None:
        """Delete an undecodable row and back its weight out of the gauges."""
        self._execute(
            "DELETE FROM memo WHERE structure = ? AND fingerprint = ?"
            " AND anchor = ? AND gate = ? AND backend = ?",
            self._row_key(key),
        )
        old = self._row_weights.pop(key, None)
        if old is not None:
            self._row_count -= 1
            self._row_weight -= old
            if is_anchored_key(key):
                self._anchored_rows -= 1

    def _preload(self) -> None:
        self._complete = True
        if self._conn is None:
            return
        rows = self._execute(
            "SELECT structure, fingerprint, anchor, gate, backend, payload"
            " FROM memo"
        )
        if rows is None:
            return
        try:
            for structure, fingerprint, anchor, gate, backend, payload in rows:
                try:
                    key = (
                        structure,
                        fingerprint,
                        _decode_anchor(anchor),
                        gate or None,
                        backend,
                    )
                    if key in self._cache:
                        continue
                    self._cache[key] = _decode(payload)
                except (ValueError, TypeError, KeyError):
                    continue  # foreign payloads/encodings degrade to misses
        except sqlite3.Error as exc:  # corruption discovered mid-scan
            self._degrade(exc)

    def _degrade(self, exc: sqlite3.Error) -> None:
        """Fall back to memory-only operation, keeping evaluation alive."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass
            self._conn = None
        self._pending = 0
        self._buffer.clear()  # pending write-behind puts are lost, not corrupt
        self._row_weights.clear()
        self._row_count = 0
        self._row_weight = 0
        self._anchored_rows = 0
        if not self.degraded:
            self.degraded = True
            warnings.warn(
                f"memo store {self.path!r} is unusable ({exc}); continuing "
                "without persistence (in-memory only)",
                RuntimeWarning,
                stacklevel=3,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "degraded" if self.degraded else (
            "closed" if self._conn is None else "open"
        )
        return f"SqliteStore(path={self.path!r}, {state})"


def open_store(path: Optional[str] = None, **kwargs) -> MemoStore:
    """``SqliteStore(path)`` when a path is given, else an ``InMemoryStore``.

    Keyword arguments are forwarded to the chosen constructor.
    """
    if path is None:
        from .memory import InMemoryStore

        return InMemoryStore(**kwargs)
    return SqliteStore(path, **kwargs)
