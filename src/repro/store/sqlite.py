"""File-backed (SQLite) memo store: subtree distributions that survive
process restarts.

Entries are the same content-addressed ``(structure, fingerprint, gate,
backend)`` records as :class:`repro.store.memory.InMemoryStore` holds,
persisted in a single ``memo`` table so a restarted worker — or a
different worker pointed at the same file — starts with every previously
computed subtree distribution already available ("warm-from-disk"; see
``benchmarks/bench_store.py``).

**Payload codec.**  Distributions are JSON: exact (:class:`Fraction`)
values as ``"num/den"`` strings, ``fast`` floats as JSON numbers, goal
masks as arbitrary-precision ints — version-tagged so a future format
change degrades to a cache miss rather than a wrong answer.  Entries
whose values are neither ``Fraction`` nor ``float`` (a custom backend's
domain) are kept in memory but not persisted.

**Anchored-entry codec.**  The key's anchor-position component (one
tuple of relative rank paths per anchor slot, ``None`` when unanchored —
see :mod:`repro.store.keys`) persists in its own ``anchor`` column,
serialized with a codec version prefix (``"1;@0.2,@1|@3"``: slots joined
by ``|``, positions by ``,``, ranks by ``.`` after a ``@``) so a future
encoding change turns old rows into misses instead of wrong shares.
Store files written before the anchor column existed are detected by
schema inspection and dropped — a cache format upgrade costs one cold
fill, never a wrong answer.

**Read caching.**  Decoded entries are cached in memory write-through.
By default the whole table is decoded on first access (``preload=True``)
— memo tables are tiny next to the evaluation work they encode, and one
bulk ``SELECT`` is far cheaper than per-subtree point lookups on the hot
path.  Pass ``preload=False`` for very large shared stores to fall back
to per-key lookups; note this bounds *startup* cost only — the read
cache still grows with the entries actually touched (the working set),
so a worker that sweeps an entire huge store should recycle the store
instance (or front it with an :class:`~repro.store.memory.InMemoryStore`
tier) to bound steady-state memory.

**Degradation, not failure.**  A corrupt, unreadable or write-locked
store file must never break query evaluation: every SQLite error demotes
the store to memory-only operation with a :class:`RuntimeWarning`
(``degraded`` is set), keeping results correct and merely losing
persistence.
"""

from __future__ import annotations

import json
import sqlite3
import warnings
from fractions import Fraction
from time import perf_counter
from typing import Optional, Union

from ..obs.registry import get_registry
from ..obs.trace import get_tracer
from .api import MemoStore, StoreKey

__all__ = ["SqliteStore", "open_store"]

# Probe/put latency histograms, observed only while tracing is enabled
# (two perf_counter calls would double the cost of a preloaded-cache
# get on the default no-telemetry path).
_PROBE_SECONDS = get_registry().histogram(
    "repro_store_sqlite_probe_seconds",
    help="SqliteStore.get latency (recorded while tracing is enabled)",
)
_PUT_SECONDS = get_registry().histogram(
    "repro_store_sqlite_put_seconds",
    help="SqliteStore.put latency (recorded while tracing is enabled)",
)

_PAYLOAD_VERSION = 1
_ANCHOR_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS memo (
    structure   TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    anchor      TEXT NOT NULL,
    gate        TEXT NOT NULL,
    backend     TEXT NOT NULL,
    payload     TEXT NOT NULL,
    weight      INTEGER NOT NULL DEFAULT 1,
    PRIMARY KEY (structure, fingerprint, anchor, gate, backend)
)
"""


def _encode_anchor(anchor) -> str:
    """Serialize a key's anchor-position component (``""`` = unanchored)."""
    if anchor is None:
        return ""
    slots = []
    for positions in anchor:
        slots.append(
            ",".join("@" + ".".join(map(str, path)) for path in positions)
        )
    return _ANCHOR_VERSION + ";" + "|".join(slots)


def _decode_anchor(text: str):
    """Inverse of :func:`_encode_anchor`; raises ``ValueError`` on foreign
    or future-versioned encodings."""
    if text == "":
        return None
    version, _, body = text.partition(";")
    if version != _ANCHOR_VERSION:
        raise ValueError(f"unsupported anchor encoding: {text[:40]!r}")
    slots = []
    for slot in body.split("|"):
        positions = []
        for entry in slot.split(","):
            if not entry:
                continue
            if not entry.startswith("@"):
                raise ValueError(f"malformed anchor position {entry!r}")
            ranks = entry[1:]
            positions.append(
                tuple(int(rank) for rank in ranks.split(".")) if ranks else ()
            )
        slots.append(tuple(positions))
    return tuple(slots)


def _encode(distribution) -> Optional[str]:
    """JSON payload for a distribution, or ``None`` if not serializable.

    Two payload generations coexist in one table:

    * **v1** — scalar dicts.  Exact values travel as ``[numerator,
      denominator]`` pairs (faster to revive than ``"num/den"`` strings
      — decode speed is what bounds the warm-from-disk preload), floats
      as plain JSON numbers.
    * **v2** — packed-array distributions from the ``array`` backend,
      duck-typed by their aligned ``masks``/``values`` arrays: kind
      ``"a"`` for a 1-D :class:`~repro.probability_array.ArrayDistribution`,
      kind ``"s"`` for a 2-D lane-batched
      :class:`~repro.probability_array.StackedDistribution`.
    """
    masks = getattr(distribution, "masks", None)
    if masks is not None:
        kind = "a" if getattr(masks, "ndim", 0) == 1 else "s"
        return json.dumps(
            {
                "v": 2,
                "k": kind,
                "m": masks.tolist(),
                "p": distribution.values.tolist(),
            }
        )
    items = []
    for mask, value in distribution.items():
        if isinstance(value, Fraction):
            items.append((mask, (value.numerator, value.denominator)))
        elif isinstance(value, float):
            items.append((mask, value))
        else:
            return None
    return json.dumps({"v": _PAYLOAD_VERSION, "d": items})


def _decode(payload: str):
    """Inverse of :func:`_encode`; raises ``ValueError`` on foreign data.

    v2 payloads revive through :mod:`repro.probability_array`; when
    numpy is unavailable in the reading process the payload is treated
    as foreign (``ValueError`` → miss) rather than failing the query.
    """
    data = json.loads(payload)
    if not isinstance(data, dict):
        raise ValueError(f"unsupported memo payload: {payload[:40]!r}")
    version = data.get("v")
    if version == 2:
        return _decode_array(data, payload)
    if version != _PAYLOAD_VERSION:
        raise ValueError(f"unsupported memo payload version: {payload[:40]!r}")
    return {
        int(mask): Fraction(*value) if isinstance(value, list) else float(value)
        for mask, value in data["d"]
    }


def _decode_array(data: dict, payload: str):
    """Revive a v2 packed-array payload (see :func:`_encode`)."""
    try:
        import numpy

        from ..probability_array import ArrayDistribution, StackedDistribution
    except ImportError as exc:
        raise ValueError(
            f"array memo payload needs numpy to decode: {exc}"
        ) from exc
    kind = data.get("k")
    try:
        masks = numpy.asarray(data["m"], dtype=numpy.int64)
        values = numpy.asarray(data["p"], dtype=numpy.float64)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed array memo payload: {payload[:40]!r}") from exc
    if kind == "a" and masks.ndim == 1 and masks.shape == values.shape:
        return ArrayDistribution(masks, values)
    if kind == "s" and masks.ndim == 2 and masks.shape == values.shape:
        return StackedDistribution(masks, values)
    raise ValueError(f"malformed array memo payload: {payload[:40]!r}")


class SqliteStore(MemoStore):
    """Persistent memo store over a single SQLite file.

    Args:
        path: the store file (created if missing).
        preload: decode the whole table into memory on first access.
        commit_every: pending writes accumulated before an implicit
            commit; :meth:`flush`/:meth:`close` always commit.

    Attributes:
        degraded: true once persistence failed and the store fell back
            to memory-only operation (a warning was emitted).
    """

    def __init__(
        self,
        path: Union[str, "object"],
        preload: bool = True,
        commit_every: int = 256,
    ) -> None:
        super().__init__()
        self.path = str(path)
        self.preload = preload
        self.commit_every = commit_every
        self.degraded = False
        self._cache: dict[StoreKey, dict] = {}
        self._complete = False  # cache mirrors the whole table
        self._pending = 0
        self._conn: Optional[sqlite3.Connection] = None
        try:
            conn = sqlite3.connect(self.path)
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(memo)")
            }
            if columns and "anchor" not in columns:
                # Pre-anchor schema: the key format changed, so the cached
                # entries are unreachable anyway — drop and refill cold.
                conn.execute("DROP TABLE memo")
            conn.execute(_SCHEMA)
            conn.commit()
            self._conn = conn
        except sqlite3.Error as exc:
            self._degrade(exc)

    # ------------------------------------------------------------------
    # MemoStore interface
    # ------------------------------------------------------------------
    store_kind = "sqlite"

    def get(self, key: StoreKey) -> Optional[dict]:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._get(key)
            finally:
                _PROBE_SECONDS.observe(perf_counter() - start)
        return self._get(key)

    def _get(self, key: StoreKey) -> Optional[dict]:
        if self.preload and not self._complete:
            self._preload()
        cached = self._cache.get(key)
        if cached is not None:
            self._count_get(key, hit=True)
            return cached
        if self._complete or self._conn is None:
            self._count_get(key, hit=False)
            return None
        row = self._execute(
            "SELECT payload FROM memo WHERE structure = ? AND fingerprint = ?"
            " AND anchor = ? AND gate = ? AND backend = ?",
            self._row_key(key),
        )
        row = row.fetchone() if row is not None else None
        if row is not None:
            try:
                distribution = _decode(row[0])
            except (ValueError, TypeError, KeyError):
                # Foreign/undecodable payload: treat as a miss AND drop the
                # row, so ``contains`` agrees and the next computation's
                # ``put`` repairs the entry instead of being skipped.
                distribution = None
                self._execute(
                    "DELETE FROM memo WHERE structure = ? AND fingerprint = ?"
                    " AND anchor = ? AND gate = ? AND backend = ?",
                    self._row_key(key),
                )
            if distribution is not None:
                self._cache[key] = distribution
                self._count_get(key, hit=True)
                return distribution
        self._count_get(key, hit=False)
        return None

    def put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        if get_tracer().enabled:
            start = perf_counter()
            try:
                return self._put(key, distribution, weight)
            finally:
                _PUT_SECONDS.observe(perf_counter() - start)
        return self._put(key, distribution, weight)

    def _put(self, key: StoreKey, distribution: dict, weight: int = 1) -> None:
        if self.preload and not self._complete:
            self._preload()
        self._count_put(key)
        self._cache[key] = distribution
        if self._conn is None:
            return
        payload = _encode(distribution)
        if payload is None:
            return  # non-serializable backend domain: memory-only entry
        self._execute(
            "INSERT OR REPLACE INTO memo"
            " (structure, fingerprint, anchor, gate, backend, payload, weight)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            self._row_key(key) + (payload, max(1, int(weight))),
        )
        self._pending += 1
        if self._pending >= self.commit_every:
            self.flush()

    def contains(self, key: StoreKey) -> bool:
        if self.preload and not self._complete:
            self._preload()
        if key in self._cache:
            return True
        if self._complete or self._conn is None:
            return False
        row = self._execute(
            "SELECT 1 FROM memo WHERE structure = ? AND fingerprint = ?"
            " AND anchor = ? AND gate = ? AND backend = ?",
            self._row_key(key),
        )
        return row is not None and row.fetchone() is not None

    def clear(self) -> None:
        self._cache.clear()
        self._complete = self._conn is None
        if self._conn is not None:
            self._execute("DELETE FROM memo")
            self.flush()

    def __len__(self) -> int:
        """Entries visible to :meth:`get`.

        In preloading mode (the default) the whole table is decoded
        first, so the count is the same whichever access path ran before
        — undecodable foreign rows are excluded.  In lazy mode the count
        is approximate: the larger of the raw row count and the cache
        size, which over-counts foreign payloads and under-counts
        memory-only (non-serializable) entries coexisting with persisted
        rows.
        """
        if self.preload and not self._complete:
            self._preload()
        if self._conn is None or self._complete:
            return len(self._cache)
        row = self._execute("SELECT COUNT(*) FROM memo")
        if row is None:
            return len(self._cache)
        return max(row.fetchone()[0], len(self._cache))

    def stats(self) -> dict:
        gauges = super().stats()
        weight = None
        anchored_entries = None
        if self._conn is not None:
            row = self._execute("SELECT COALESCE(SUM(weight), 0) FROM memo")
            if row is not None:
                weight = row.fetchone()[0]
            row = self._execute(
                "SELECT COUNT(*) FROM memo WHERE anchor != ''"
            )
            if row is not None:
                anchored_entries = row.fetchone()[0]
        gauges.update(
            path=self.path,
            degraded=self.degraded,
            cached_entries=len(self._cache),
            weight=weight,
            anchored_entries=anchored_entries,
        )
        return gauges

    def flush(self) -> None:
        if self._conn is not None:
            try:
                self._conn.commit()
            except sqlite3.Error as exc:
                self._degrade(exc)
                return
            self._pending = 0

    def close(self) -> None:
        """Commit and detach from the file; the store stays usable in memory."""
        self.flush()
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._complete = True  # only the cache remains visible

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _row_key(key: StoreKey) -> tuple:
        structure, fingerprint, anchor, gate, backend = key
        return (structure, fingerprint, _encode_anchor(anchor), gate or "", backend)

    def _execute(self, sql: str, parameters: tuple = ()):
        assert self._conn is not None
        try:
            return self._conn.execute(sql, parameters)
        except sqlite3.Error as exc:
            self._degrade(exc)
            return None

    def _preload(self) -> None:
        self._complete = True
        if self._conn is None:
            return
        rows = self._execute(
            "SELECT structure, fingerprint, anchor, gate, backend, payload"
            " FROM memo"
        )
        if rows is None:
            return
        try:
            for structure, fingerprint, anchor, gate, backend, payload in rows:
                try:
                    key = (
                        structure,
                        fingerprint,
                        _decode_anchor(anchor),
                        gate or None,
                        backend,
                    )
                    if key in self._cache:
                        continue
                    self._cache[key] = _decode(payload)
                except (ValueError, TypeError, KeyError):
                    continue  # foreign payloads/encodings degrade to misses
        except sqlite3.Error as exc:  # corruption discovered mid-scan
            self._degrade(exc)

    def _degrade(self, exc: sqlite3.Error) -> None:
        """Fall back to memory-only operation, keeping evaluation alive."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass
            self._conn = None
        self._pending = 0
        if not self.degraded:
            self.degraded = True
            warnings.warn(
                f"memo store {self.path!r} is unusable ({exc}); continuing "
                "without persistence (in-memory only)",
                RuntimeWarning,
                stacklevel=3,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "degraded" if self.degraded else (
            "closed" if self._conn is None else "open"
        )
        return f"SqliteStore(path={self.path!r}, {state})"


def open_store(path: Optional[str] = None, **kwargs) -> MemoStore:
    """``SqliteStore(path)`` when a path is given, else an ``InMemoryStore``.

    Keyword arguments are forwarded to the chosen constructor.
    """
    if path is None:
        from .memory import InMemoryStore

        return InMemoryStore(**kwargs)
    return SqliteStore(path, **kwargs)
