"""Exact rational linear algebra for the ``S(q, V)`` systems (§5.3).

The logarithm of each view equation (6) is linear over the variables
``{log x_j} ∪ {log Pr(n ∈ P)}`` with 0/1 coefficients.  ``Pr(n ∈ q(P))`` is
computable iff the query row (7) lies in the row space of the view rows; the
certificate ``c`` (``Σ_i c_i · row_i = query row``) then gives
``f_r(n) = Π_i Pr(n ∈ v_i(P))^{c_i}``.

Everything is exact (`fractions.Fraction`); no floating point is involved in
either the rank tests or the certificates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..errors import LinearSystemError
from ..probability import ONE, ZERO

__all__ = ["ExactLinearSystem", "solve_exact", "exact_root", "exact_power"]


def solve_exact(
    rows: Sequence[Sequence[Fraction]], target: Sequence[Fraction]
) -> Optional[list[Fraction]]:
    """Solve ``A^T c = target`` exactly: coefficients expressing ``target``
    as a linear combination of ``rows``.  Returns ``None`` when ``target``
    is not in the row space.  Free variables are set to zero.
    """
    num_rows = len(rows)
    if num_rows == 0:
        return None
    width = len(target)
    if any(len(row) != width for row in rows):
        raise LinearSystemError("ragged system")
    # Augmented system over unknowns c_1..c_m: one equation per column.
    matrix: list[list[Fraction]] = [
        [Fraction(rows[i][col]) for i in range(num_rows)] + [Fraction(target[col])]
        for col in range(width)
    ]
    pivots: list[tuple[int, int]] = []  # (equation row, unknown column)
    row_index = 0
    for col in range(num_rows):
        pivot = next(
            (r for r in range(row_index, width) if matrix[r][col] != ZERO), None
        )
        if pivot is None:
            continue
        matrix[row_index], matrix[pivot] = matrix[pivot], matrix[row_index]
        head = matrix[row_index][col]
        matrix[row_index] = [value / head for value in matrix[row_index]]
        for r in range(width):
            if r != row_index and matrix[r][col] != ZERO:
                factor = matrix[r][col]
                matrix[r] = [
                    value - factor * base
                    for value, base in zip(matrix[r], matrix[row_index])
                ]
        pivots.append((row_index, col))
        row_index += 1
    # Inconsistent ⇔ a zero row with non-zero right-hand side.
    for r in range(row_index, width):
        if all(value == ZERO for value in matrix[r][:num_rows]) and matrix[r][
            num_rows
        ] != ZERO:
            return None
    solution = [ZERO] * num_rows
    for eq_row, col in pivots:
        solution[col] = matrix[eq_row][num_rows]
    return solution


class ExactLinearSystem:
    """A tagged exact linear system: rows carry identifiers (view names)."""

    def __init__(self, variables: Sequence[str]) -> None:
        self.variables = list(variables)
        self._index = {name: i for i, name in enumerate(self.variables)}
        self.tags: list[str] = []
        self.rows: list[list[Fraction]] = []

    def add_row(self, tag: str, support: dict[str, Fraction]) -> None:
        row = [ZERO] * len(self.variables)
        for name, coefficient in support.items():
            row[self._index[name]] = Fraction(coefficient)
        self.tags.append(tag)
        self.rows.append(row)

    def certificate(
        self, target_support: dict[str, Fraction]
    ) -> Optional[dict[str, Fraction]]:
        """Coefficients per tag expressing the target row, or ``None``."""
        target = [ZERO] * len(self.variables)
        for name, coefficient in target_support.items():
            target[self._index[name]] = Fraction(coefficient)
        solution = solve_exact(self.rows, target)
        if solution is None:
            return None
        return {
            tag: coefficient
            for tag, coefficient in zip(self.tags, solution)
        }


# ----------------------------------------------------------------------
# Exact rational powers (used by the f_r product formulas)
# ----------------------------------------------------------------------
def _integer_root(value: int, degree: int) -> Optional[int]:
    """Exact ``degree``-th root of a non-negative integer, or ``None``."""
    if value < 0:
        return None
    if value in (0, 1) or degree == 1:
        return value
    low, high = 0, 1 << ((value.bit_length() + degree - 1) // degree + 1)
    while low < high:
        mid = (low + high) // 2
        power = mid**degree
        if power == value:
            return mid
        if power < value:
            low = mid + 1
        else:
            high = mid
    return None


def exact_root(value: Fraction, degree: int) -> Fraction:
    """Exact ``degree``-th root of a rational; raises if irrational.

    Used when a certificate has fractional coefficients: consistency of
    ``S(q, V)`` with true probabilities guarantees the combined product is a
    perfect power (e.g. Example 16's certificate (1/2, 1/2, 1/2, −1/2) makes
    ``v1·v2·v3/v4`` the square of ``Pr(n ∈ q(P))``).
    """
    numerator = _integer_root(value.numerator, degree)
    denominator = _integer_root(value.denominator, degree)
    if numerator is None or denominator is None:
        raise LinearSystemError(
            f"{value} has no exact rational root of degree {degree}"
        )
    return Fraction(numerator, denominator)


def exact_power(factors: Sequence[tuple[Fraction, Fraction]]) -> Fraction:
    """``Π base_i^{exponent_i}`` exactly, for rational exponents.

    All exponents are brought to a common denominator ``D``; the integral
    product ``Π base_i^{exponent_i · D}`` is computed exactly and its
    ``D``-th root extracted.
    """
    if not factors:
        return ONE
    common = 1
    for _, exponent in factors:
        common = common * exponent.denominator // _gcd(common, exponent.denominator)
    product = ONE
    for base, exponent in factors:
        power = int(exponent * common)
        if base == ZERO and power <= 0:
            raise LinearSystemError("zero base with non-positive exponent")
        product *= base**power
    if common == 1:
        return product
    return exact_root(product, common)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
