"""Probabilistic condition-independence of TP queries (§4.1, Proposition 2).

Two TP queries are *c-independent* (``q1 ⊥ q2``) when, for every p-document
``P̂`` and node ``n``::

    Pr(n ∈ (q1 ∩ q2)(P)) = Pr(n ∈ q1(P)) · Pr(n ∈ q2(P)) / Pr(n ∈ P).

The paper proves a PTime *syntactic* characterization in its extended
technical report [11], which is not publicly available; this module
implements an equivalent test designed from the semantic definition (see
DESIGN.md §2.2 for the full argument):

Conditioning on ``n ∈ P`` fixes every distributional choice on the root→n
path, so the only randomness either query depends on lies in the *predicate*
match events.  The two queries can be probabilistically dependent in *some*
p-document iff a predicate node of ``q1`` and a predicate node of ``q2`` can
be embedded so that their images share a parent position — a ``mux``/``ind``
gadget placed there then correlates the two match events (Example 11's
counterexample is exactly this construction).  Conversely, if no such
placement exists, the two match events depend on disjoint sets of
distributional choices in every p-document and are therefore conditionally
independent.

The search enumerates co-alignments of the two main branches on a common
root→n spine (``//``-gaps stretched up to a bound that a minimal-witness
contraction argument justifies) and, for every pair of predicate nodes, all
depth placements of the two access routes on a shared root→z chain, with
label consistency enforced wherever the routes cross fixed spine positions
or each other.

Declaring *independent* is sound; declaring *dependent* may in contrived
label-coincidence cases be conservative (a missed rewriting, never a wrong
probability).  :func:`c_independent_empirical` cross-validates against the
possible-world semantics.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional, Sequence

from ..probability import BackendLike, get_backend
from ..prob.session import QuerySession
from ..pxml.builder import ind, mux, ordinary, pdoc
from ..pxml.pdocument import PDocument
from ..tp.pattern import Axis, PatternNode, TreePattern

__all__ = ["c_independent", "c_independent_empirical"]


# ----------------------------------------------------------------------
# Syntactic test
# ----------------------------------------------------------------------
def c_independent(q1: TreePattern, q2: TreePattern) -> bool:
    """Syntactic c-independence test ``q1 ⊥ q2`` (outputs co-anchored)."""
    routes1 = _predicate_routes(q1)
    routes2 = _predicate_routes(q2)
    if not routes1 or not routes2:
        return True  # a query without predicates is deterministic given n ∈ P
    max_route = max(
        [len(route) for _, route in routes1] + [len(route) for _, route in routes2]
    )
    stretch = q1.main_branch_length() + q2.main_branch_length() + max_route + 2
    for spine, depth1, depth2 in _alignments(q1, q2, stretch):
        for anchor1, route1 in routes1:
            for anchor2, route2 in routes2:
                if _shared_parent_witness(
                    spine, depth1[anchor1], route1, depth2[anchor2], route2
                ):
                    return False
    return True


def _predicate_routes(
    q: TreePattern,
) -> list[tuple[int, list[tuple[str, Axis]]]]:
    """For every predicate node ``w``: ``(main-branch anchor index, route)``.

    The route is the label/axis sequence from the first predicate node below
    the anchor down to ``w`` inclusive.
    """
    branch = q.main_branch()
    branch_ids = set(map(id, branch))
    routes: list[tuple[int, list[tuple[str, Axis]]]] = []

    def walk(node: PatternNode, anchor: int, prefix: list[tuple[str, Axis]]) -> None:
        route = prefix + [(node.label, node.axis)]
        routes.append((anchor, route))
        for child in node.children:
            walk(child, anchor, route)

    for index, mb_node in enumerate(branch):
        for child in mb_node.children:
            if id(child) not in branch_ids:
                walk(child, index, [])
    return routes


def _alignments(
    q1: TreePattern, q2: TreePattern, stretch: int
) -> Iterator[tuple[dict[int, Optional[str]], list[int], list[int]]]:
    """Co-alignments of the two main branches on a common spine.

    Yields ``(spine, depths1, depths2)`` where ``spine`` maps depth to the
    label required there (``None`` = unconstrained gap) and ``depths_i[j]``
    is the depth assigned to the ``j``-th main-branch node of ``q_i``.  Both
    roots sit at depth 0 and both outputs at the common bottom depth.
    """
    mb1, mb2 = q1.main_branch(), q2.main_branch()
    if mb1[0].label != mb2[0].label or mb1[-1].label != mb2[-1].label:
        return
    for depths1 in _depth_assignments(mb1, stretch):
        for depths2 in _depth_assignments(mb2, stretch):
            if depths1[-1] != depths2[-1]:
                continue
            spine: dict[int, Optional[str]] = {}
            ok = True
            for nodes, depths in ((mb1, depths1), (mb2, depths2)):
                for node, depth in zip(nodes, depths):
                    existing = spine.get(depth)
                    if existing is not None and existing != node.label:
                        ok = False
                        break
                    spine[depth] = node.label
                if not ok:
                    break
            if ok:
                yield spine, depths1, depths2


def _depth_assignments(mb: list[PatternNode], stretch: int) -> Iterator[list[int]]:
    """All depth vectors for a main branch: ``/`` = +1, ``//`` = +1..stretch."""
    gaps: list[range] = []
    for node in mb[1:]:
        if node.axis is Axis.CHILD:
            gaps.append(range(1, 2))
        else:
            gaps.append(range(1, stretch + 1))
    for steps in itertools.product(*gaps):
        depths = [0]
        for step in steps:
            depths.append(depths[-1] + step)
        yield depths


def _shared_parent_witness(
    spine: dict[int, Optional[str]],
    anchor1: int,
    route1: list[tuple[str, Axis]],
    anchor2: int,
    route2: list[tuple[str, Axis]],
) -> bool:
    """Can the two predicate nodes be placed with a common parent position?

    The witness chain runs root → z: it follows the spine down to a branch
    depth ``β ≥ max(anchor depths)`` and may then continue off-spine; the two
    witness nodes hang below ``z`` at depth ``π + 1``.  Route nodes occupy
    chain positions: at depths ``≤ β`` they must agree with the spine labels,
    and everywhere the two routes must agree with each other.
    """
    bottom = max(spine)
    d_max = bottom + len(route1) + len(route2) + 2
    for beta in range(max(anchor1, anchor2), bottom + 1):
        for pi in range(beta, d_max):
            for occupancy1 in _route_placements(route1, anchor1, pi, d_max):
                if not _spine_compatible(occupancy1, spine, beta):
                    continue
                for occupancy2 in _route_placements(route2, anchor2, pi, d_max):
                    if not _spine_compatible(occupancy2, spine, beta):
                        continue
                    if _routes_compatible(occupancy1, occupancy2):
                        return True
    return False


def _route_placements(
    route: list[tuple[str, Axis]], anchor: int, pi: int, d_max: int
) -> Iterator[dict[int, str]]:
    """All depth assignments placing the route's final node below depth ``π``.

    Yields ``{depth: label}`` for the route nodes *excluding* the final node
    (which sits at ``π + 1`` as a child of z and constrains nothing else).
    The final edge determines the parent: a ``/``-edge forces the previous
    route node to *be* z (depth ``π``); a ``//``-edge merely requires the
    previous node at depth ``≤ π`` (free intermediates fill the gap).
    """
    *inner, (final_label, final_axis) = route

    def assign(index: int, depth: int, occupied: dict[int, str]) -> Iterator[dict[int, str]]:
        if index == len(inner):
            if final_axis is Axis.CHILD:
                if depth == pi:
                    yield dict(occupied)
            else:
                if depth <= pi:
                    yield dict(occupied)
            return
        label, axis = inner[index]
        if axis is Axis.CHILD:
            candidates = [depth + 1]
        else:
            candidates = list(range(depth + 1, min(pi, d_max) + 1))
        for d in candidates:
            occupied[d] = label
            yield from assign(index + 1, d, occupied)
            del occupied[d]

    yield from assign(0, anchor, {})


def _spine_compatible(
    occupancy: dict[int, str], spine: dict[int, Optional[str]], beta: int
) -> bool:
    """Route nodes at depths ≤ β sit on spine positions: labels must agree."""
    for depth, label in occupancy.items():
        if depth <= beta:
            required = spine.get(depth)
            if required is not None and required != label:
                return False
    return True


def _routes_compatible(o1: dict[int, str], o2: dict[int, str]) -> bool:
    """Both routes live on the single root→z chain: shared depths must agree."""
    for depth, label in o1.items():
        other = o2.get(depth)
        if other is not None and other != label:
            return False
    return True


# ----------------------------------------------------------------------
# Empirical validation against the semantic definition
# ----------------------------------------------------------------------
def c_independent_empirical(
    q1: TreePattern,
    q2: TreePattern,
    trials: int = 40,
    seed: int = 0,
    max_depth: int = 4,
    backend: BackendLike = "exact",
    tolerance: float = 1e-9,
) -> bool:
    """Monte-Carlo check of the *semantic* definition of c-independence.

    Random small p-documents are generated over the two queries' label
    alphabet; for each ordinary node the defining equation is verified
    through a batched query session in the chosen backend — *exactly* on
    ``"exact"`` (the default), within ``tolerance`` on approximate
    backends such as ``"fast"``.  Returns ``False`` as soon as a
    counterexample p-document is found.

    A ``True`` result is evidence, not proof — the sampler may miss a
    counterexample; a ``False`` result is definitive (on the exact
    backend).
    """
    rng = random.Random(seed)
    labels = sorted(
        {node.label for node in q1.nodes()} | {node.label for node in q2.nodes()}
    )
    root_label = q1.root_label()
    for _ in range(trials):
        p = _random_pdocument(rng, labels, root_label, max_depth)
        if not _definition_holds(p, q1, q2, backend, tolerance):
            return False
    return True


def _definition_holds(
    p: PDocument,
    q1: TreePattern,
    q2: TreePattern,
    backend: BackendLike = "exact",
    tolerance: float = 1e-9,
) -> bool:
    resolved = get_backend(backend)
    # One session per sampled document: the three anchored probabilities
    # per node are content-addressed (canonical anchor positions), so
    # subtrees away from the anchored node share one store entry across
    # all nodes of the sweep instead of re-evaluating per anchor value.
    session = QuerySession(p, backend=resolved)
    for n in p.ordinary_nodes():
        appearance = p.appearance_probability(n.node_id)
        if appearance == 0:
            continue
        # The three probabilities of the defining equation, one shared pass.
        joint, p1, p2 = session.boolean_many(
            [
                ([q1, q2], {q1.out: n.node_id, q2.out: n.node_id}),
                (q1, {q1.out: n.node_id}),
                (q2, {q2.out: n.node_id}),
            ]
        )
        lhs = joint * resolved.convert(appearance)
        rhs = p1 * p2
        if resolved.name == "exact":
            if lhs != rhs:
                return False
        elif abs(lhs - rhs) > tolerance:
            return False
    return True


def _random_pdocument(
    rng: random.Random, labels: Sequence[str], root_label: str, max_depth: int
) -> PDocument:
    """A small random p-document biased toward correlation gadgets."""
    counter = itertools.count(0)
    probabilities = ["0.25", "0.5", "0.75"]

    def build(depth: int):
        label = rng.choice(labels)
        children = []
        if depth < max_depth:
            for _ in range(rng.randint(0, 2)):
                children.append(wrap(depth + 1))
        return ordinary(next(counter), label, *children)

    def wrap(depth: int):
        roll = rng.random()
        if roll < 0.35:
            return mux(
                next(counter),
                *[
                    (build(depth), rng.choice(["0.2", "0.3", "0.4"]))
                    for _ in range(rng.randint(1, 2))
                ],
            )
        if roll < 0.6:
            return ind(next(counter), (build(depth), rng.choice(probabilities)))
        return build(depth)

    children = [wrap(1) for _ in range(rng.randint(1, 3))]
    return pdoc(ordinary(next(counter), root_label, *children))
