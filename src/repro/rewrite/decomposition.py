"""View decompositions into pairwise c-independent d-views (§5.3, Steps 1–4).

Each view ``v_i = ft_i // m_i // lt_i`` is decomposed into queries whose
match probabilities (conditioned on ``n ∈ P``) are mutually independent:

1. one query per main-branch node of the first and last token, keeping only
   that node's predicates, plus one *bulk* query keeping only the middle
   part's predicates (middle predicates cannot be attributed to unambiguous
   path positions, so they stay together);
2. queries of the same view that are **not** c-independent are repeatedly
   merged (an intersection that reduces trivially to a TP query: the
   operands share the view's main branch, so predicates are simply pooled);
3. every query is intersected with the linear query ``mb(q)`` — making the
   spine explicit lets the same variable be shared across views with
   different main branches;
4. queries are grouped into equivalence classes across all views; each class
   becomes one *d-view* variable of the ``S(q, V)`` system.

The d-view *identity* (equivalence) is computed on the step-3 intersections,
which may be proper TP∩ queries: two TP∩ queries are equivalent iff their
sets of maximal interleavings coincide up to equivalence, which we canonize
by minimizing each maximal interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..errors import RewritingError
from ..probability import ONE
from ..tp import ops
from ..tp.containment import contains
from ..tp.minimize import minimize
from ..tp.pattern import PatternNode, TreePattern
from ..tpi.interleave import interleavings
from .cindep import c_independent
from .linsys import ExactLinearSystem

__all__ = ["DViewSystem", "decompose_views", "decompose_pattern"]

_APPEARANCE = "__appearance__"


@dataclass
class DViewSystem:
    """The ``S(q, V)`` system: per-view d-view supports plus the query's.

    ``supports[tag]`` maps each view tag (and the query tag ``"q"``) to the
    set of d-view keys it decomposes into; the appearance variable
    ``Pr(n ∈ P)`` implicitly joins every support with coefficient 1.
    """

    query_support: frozenset
    view_supports: dict[str, frozenset]
    dview_names: dict[frozenset, str]

    def system(self) -> ExactLinearSystem:
        variables = sorted({key for support in self.view_supports.values() for key in support}
                           | set(self.query_support), key=repr)
        system = ExactLinearSystem([repr(v) for v in variables] + [_APPEARANCE])
        for tag, support in self.view_supports.items():
            row = {repr(key): Fraction(1) for key in support}
            row[_APPEARANCE] = Fraction(1)
            system.add_row(tag, row)
        return system

    def certificate(self) -> dict[str, Fraction] | None:
        """Coefficients ``c_i`` with ``Σ c_i · row_i = query row``, if any."""
        target = {repr(key): Fraction(1) for key in self.query_support}
        target[_APPEARANCE] = Fraction(1)
        return self.system().certificate(target)

    def solvable(self) -> bool:
        return self.certificate() is not None


def decompose_views(
    q: TreePattern, tagged_views: Sequence[tuple[str, TreePattern]]
) -> DViewSystem:
    """Build the ``S(q, V)`` structure for a query and tagged view patterns."""
    mb_q = ops.mb_pattern(q)
    names: dict[frozenset, str] = {}
    query_support = frozenset(decompose_pattern(q, mb_q))
    view_supports: dict[str, frozenset] = {}
    for tag, pattern in tagged_views:
        view_supports[tag] = frozenset(decompose_pattern(pattern, mb_q))
    for index, key in enumerate(
        sorted(set().union(query_support, *view_supports.values()), key=repr)
    ):
        names[key] = f"w{index + 1}"
    return DViewSystem(query_support, view_supports, names)


def decompose_pattern(v: TreePattern, mb_q: TreePattern) -> list:
    """Steps 1–3 for a single pattern; returns canonical d-view keys."""
    units = _step1_units(v)
    units = _step2_merge(v, units)
    keys = []
    for unit in units:
        materialized = _materialize(v, unit)
        keys.append(_step3_key(materialized, mb_q))
    return keys


# ----------------------------------------------------------------------
# Step 1: per-node / bulk units
# ----------------------------------------------------------------------
def _step1_units(v: TreePattern) -> list[frozenset[int]]:
    """Units as sets of main-branch indices whose predicates are kept."""
    token_list = ops.tokens(v)
    branch_length = v.main_branch_length()
    first_len = token_list[0].main_branch_length()
    last_len = token_list[-1].main_branch_length() if len(token_list) > 1 else 0
    units: list[frozenset[int]] = []
    for index in range(first_len):
        units.append(frozenset([index]))
    for index in range(branch_length - last_len, branch_length):
        units.append(frozenset([index]))
    middle = frozenset(range(first_len, branch_length - last_len))
    if middle:
        units.append(middle)
    return units


# ----------------------------------------------------------------------
# Step 2: merge probabilistically dependent units of the same view
# ----------------------------------------------------------------------
def _step2_merge(v: TreePattern, units: list[frozenset[int]]) -> list[frozenset[int]]:
    current = list(dict.fromkeys(units))
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                if current[i] == current[j]:
                    merged = current[i]
                elif c_independent(
                    _materialize(v, current[i]), _materialize(v, current[j])
                ):
                    continue
                else:
                    merged = current[i] | current[j]
                rest = [
                    unit
                    for index, unit in enumerate(current)
                    if index not in (i, j)
                ]
                current = rest + [merged]
                changed = True
                break
            if changed:
                break
    return current


def _materialize(v: TreePattern, unit: frozenset[int]) -> TreePattern:
    """The view with predicates kept only on the unit's main-branch nodes."""
    copied, mapping = v.copy_with_mapping()
    branch = v.main_branch()
    branch_copy_ids = {id(mapping[id(node)]) for node in branch}
    for index, node in enumerate(branch):
        if index in unit:
            continue
        holder = mapping[id(node)]
        for child in list(holder.children):
            if id(child) not in branch_copy_ids:
                holder.remove_child(child)
    return TreePattern(copied.root, mapping[id(v.out)])


# ----------------------------------------------------------------------
# Step 3 + 4: intersect with mb(q), canonical identity
# ----------------------------------------------------------------------
def _step3_key(w: TreePattern, mb_q: TreePattern):
    """Canonical key of ``w ∩ mb(q)`` (a TP∩ query in general).

    The union of interleavings is canonized by its maximal elements, each
    minimized; equal keys ⇔ equivalent d-views (Step 4's grouping).
    """
    candidates = interleavings([w, mb_q])
    if not candidates:
        raise RewritingError(
            f"d-view {w.xpath()} is incompatible with mb(q); "
            "the view cannot participate in a rewriting of q"
        )
    maximal = [
        candidate
        for candidate in candidates
        if not any(
            other is not candidate
            and contains(other, candidate)
            and not contains(candidate, other)
            for other in candidates
        )
    ]
    keys = {minimize(candidate).canonical_key() for candidate in maximal}
    return frozenset(keys)
