"""The paper's contribution: probabilistic view-based rewriting (§4, §5)."""

from .cindep import c_independent, c_independent_empirical
from .plans import TPRewritePlan, TPIRewritePlan
from .single_view import (
    tp_rewrite,
    find_deterministic_tp_rewriting,
    probabilistic_tp_plan,
    fact1_holds,
    fact1_reformulation_holds,
)
from .multi_view import (
    theorem3_plan,
    find_c_independent_subset,
    tpi_rewrite,
    canonical_plan_views,
    appearance_view_exists,
)
from .decomposition import decompose_views, decompose_pattern, DViewSystem
from .linsys import ExactLinearSystem, solve_exact, exact_power, exact_root

__all__ = [
    "c_independent",
    "c_independent_empirical",
    "TPRewritePlan",
    "TPIRewritePlan",
    "tp_rewrite",
    "find_deterministic_tp_rewriting",
    "probabilistic_tp_plan",
    "fact1_holds",
    "fact1_reformulation_holds",
    "theorem3_plan",
    "find_c_independent_subset",
    "tpi_rewrite",
    "canonical_plan_views",
    "appearance_view_exists",
    "decompose_views",
    "decompose_pattern",
    "DViewSystem",
    "ExactLinearSystem",
    "solve_exact",
    "exact_power",
    "exact_root",
]
