"""``TPrewrite`` (Figure 6): probabilistic TP-rewritings using one view (§4).

Under copy semantics only a single view extension can be used, by navigation:
``q_r = comp(doc(v)/lbl(v), q_(k))`` with ``k = |mb(v)|`` (Fact 1, [36, 3]).
A *probabilistic* rewriting additionally needs the probability function
``f_r``, which exists iff (Propositions 3, Theorems 1 and 2):

1. ``comp(v, q_(k)) ≡ q``  — the deterministic criterion (Fact 1);
2. ``v′ ⊥ q″``             — no interaction between the view's packed
   predicate probabilities and the compensation's (Proposition 3);
3. either the plan is *restricted* (Definition 5: no ``//`` in ``mb(v)`` or
   in the compensation's main branch — Theorem 1), or the first ``u − 1``
   nodes of ``v``'s last token carry no predicates, ``u`` being the maximal
   prefix-suffix of the token's label sequence (Theorem 2).

The whole decision procedure is polynomial in ``|q|`` and ``|V|``
(Proposition 4) — benchmarked in ``benchmarks/bench_scaling.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..probability import BackendLike
from ..store import MemoStore
from ..tp import ops
from ..tp.containment import contains, equivalent
from ..tp.pattern import TreePattern
from ..views.view import View, doc_label
from .cindep import c_independent
from .plans import TPRewritePlan

__all__ = [
    "find_deterministic_tp_rewriting",
    "tp_rewrite",
    "probabilistic_tp_plan",
    "fact1_holds",
    "fact1_reformulation_holds",
]


def fact1_holds(q: TreePattern, v: TreePattern) -> bool:
    """Fact 1: a deterministic TP-rewriting via ``v`` exists iff
    ``comp(v, q_(k)) ≡ q`` for ``k = |mb(v)|``."""
    k = v.main_branch_length()
    if k > q.main_branch_length():
        return False
    branch = q.main_branch()
    if branch[k - 1].label != v.out.label:
        return False
    unfolded = ops.compensation(v, ops.suffix(q, k))
    return equivalent(unfolded, q)


def fact1_reformulation_holds(q: TreePattern, v: TreePattern) -> bool:
    """The paper's reformulation: ``q^(k) ⊑ v`` and ``v′ ⊑ q′``.

    Provided for cross-validation against :func:`fact1_holds` (the test
    suite checks that both criteria agree).
    """
    k = v.main_branch_length()
    if k > q.main_branch_length():
        return False
    if q.main_branch()[k - 1].label != v.out.label:
        return False
    prefix_contained = contains(v, ops.prefix(q, k))
    v_prime_contained = contains(ops.q_prime(q, k), ops.v_prime(v))
    return prefix_contained and v_prime_contained


def find_deterministic_tp_rewriting(
    q: TreePattern, views: Sequence[View]
) -> Optional[View]:
    """First view admitting a deterministic TP-rewriting of ``q`` (Fact 1)."""
    for view in views:
        if fact1_holds(q, view.pattern):
            return view
    return None


def probabilistic_tp_plan(
    q: TreePattern,
    view: View,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
    anchored_store: bool = True,
) -> Optional[TPRewritePlan]:
    """Build the probabilistic TP-rewriting of ``q`` over one view, if any.

    Implements the per-view body of ``TPrewrite`` (Figure 6); returns
    ``None`` when any condition fails.  The decision procedure is purely
    syntactic; ``backend``, ``store`` and ``anchored_store`` only
    parameterize the numeric domain and the structural memo store the
    returned plan's ``f_r`` computes with (``anchored_store=False`` is
    the node-keyed baseline of ``benchmarks/bench_anchored.py``).
    """
    v = view.pattern
    if not fact1_holds(q, v):
        return None
    k = v.main_branch_length()
    compensation = ops.suffix(q, k)
    # Proposition 3: v' ⊥ q''.
    if not c_independent(ops.v_prime(v), ops.q_double_prime(q, k)):
        return None
    token = ops.last_token(v)
    u = ops.max_prefix_suffix(ops.token_label_sequence(token))
    restricted = ops.is_restricted_rewriting(v, compensation)
    if not restricted and not _first_token_nodes_predicate_free(token, u):
        return None  # Theorem 2's condition fails: no f_r exists
    qr = _extension_pattern(view, compensation)
    return TPRewritePlan(
        query=q,
        view=view,
        k=k,
        compensation=compensation,
        qr=qr,
        restricted=restricted,
        u=u,
        backend=backend,
        store=store,
        anchored_store=anchored_store,
    )


def tp_rewrite(
    q: TreePattern, views: Sequence[View], backend: BackendLike = "exact"
) -> list[TPRewritePlan]:
    """``TPrewrite`` (Figure 6): all views yielding probabilistic rewritings.

    Sound and complete for the existence of a probabilistic TP-rewriting
    (Proposition 4); runs in polynomial time in ``|q|`` and ``|V|``.
    """
    plans = []
    for view in views:
        plan = probabilistic_tp_plan(q, view, backend=backend)
        if plan is not None:
            plans.append(plan)
    return plans


def _first_token_nodes_predicate_free(token: TreePattern, u: int) -> bool:
    """Theorem 2, condition 2: the first ``u − 1`` last-token nodes are bare."""
    branch = token.main_branch()
    branch_ids = set(map(id, branch))
    for node in branch[: max(0, u - 1)]:
        for child in node.children:
            if id(child) not in branch_ids:
                return False
    return True


def _extension_pattern(view: View, compensation: TreePattern) -> TreePattern:
    """``q_r = comp(doc(v)/lbl(v), q_(k))`` as a pattern over the extension."""
    from ..tp.parser import parse_pattern

    head = parse_pattern(f"{doc_label(view.name)}/{view.pattern.out.label}")
    return ops.compensation(head, compensation)
