"""Probabilistic rewriting plans: the pairs ``(q_r, f_r)`` of Definition 4.

A plan evaluates **only** over view extensions (the set ``D^P̂_V``), never
over the original p-document — that is the whole point of view-based
rewriting.  Two plan shapes exist:

* :class:`TPRewritePlan` — single-view plans built by ``TPrewrite`` (§4),
  using compensation.  ``f_r`` is Theorem 1's quotient in the restricted
  case and Theorem 2's inclusion-exclusion over the events ``e_i`` (with
  α-patterns and the ``Id(n)`` markers) in the unrestricted case.
* :class:`TPIRewritePlan` — multi-view intersection plans (§5).  ``f_r`` is
  a product of per-view result probabilities raised to exact rational
  exponents; Theorem 3's formula and the solutions of the ``S(q, V)``
  linear system (Theorem 5) are both instances.

Both plan shapes carry a caller-chosen numeric ``backend`` (``"exact"``
Fractions by default, ``"fast"`` floats for throughput) and route their
inner evaluations — Theorem 1's numerators and denominators, Theorem 2's
α-pattern conjunctions — through a :class:`repro.prob.session.QuerySession`
over the extension p-document, so that a whole `evaluate()` call shares
one cross-query subtree memo instead of spawning a fresh exact evaluator
per candidate node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Sequence, Union

from ..errors import RewritingError
from ..probability import BackendLike, ZERO, as_fraction, get_backend
from ..prob.engine import boolean_probability
from ..prob.session import QuerySession
from ..store import MemoStore
from ..tp import ops
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern
from ..views.extension import (
    ProbabilisticViewExtension,
    anchor_via_marker,
)
from ..views.view import View, parse_marker_label
from .linsys import exact_power

__all__ = ["TPRewritePlan", "TPIRewritePlan", "ViewOracle"]


# ======================================================================
# Single-view plans (§4)
# ======================================================================
@dataclass
class TPRewritePlan:
    """A probabilistic TP-rewriting ``(q_r, f_r)`` using one view (§4).

    Attributes:
        query: the input query ``q``.
        view: the view ``v`` the plan reads.
        k: ``|mb(v)|`` — the compensation depth.
        compensation: ``q_(k)``, grafted below ``doc(v)/lbl(v)``.
        qr: the deterministic rewriting pattern over the extension document.
        restricted: Definition 5 (Theorem 1 applies); otherwise Theorem 2.
        u: the maximal prefix-suffix length of ``v``'s last token.
        backend: numeric backend the probability function computes in
            (``"exact"`` keeps Theorem 1/2's quotients bit-exact; ``"fast"``
            trades exactness for float throughput).
        store: optional :class:`repro.store.MemoStore` threaded into every
            session and engine the plan spawns over extension documents
            and their subdocuments — with a store shared with the base
            document (as :class:`repro.cache.RewritingCache` does),
            isomorphic subtrees of the document and its extensions share
            one evaluation.
    """

    query: TreePattern
    view: View
    k: int
    compensation: TreePattern
    qr: TreePattern
    restricted: bool
    u: int
    backend: BackendLike = "exact"
    store: Optional[MemoStore] = None
    # Per-extension evaluation caches, single-slot keyed on the extension's
    # identity (all entries are derived from one extension's p-document and
    # must never leak to another): the session over the extension document
    # (cross-candidate subtree memo), Theorem 1's per-holder denominators,
    # and Theorem 2's per-holder subdocument sessions.
    _extension_caches: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- probability function f_r ----------------------------------------
    def fr(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        session: Optional[QuerySession] = None,
    ) -> Union[Fraction, float]:
        """``f_r(n)``: recover ``Pr(n ∈ q(P))`` from the view extension only.

        The value lives in the plan backend's domain.  ``session`` may
        supply a caller-owned :class:`QuerySession` over the extension
        p-document; by default the plan keeps one per extension so that
        repeated ``fr`` calls share the subtree memo.
        """
        backend = get_backend(self.backend)
        self._check_extension(extension, session)
        holders = extension.selected_ancestors_or_self(node_id)
        if not holders:
            return backend.zero
        if self.restricted:
            if session is None:
                session, _, _ = self._caches_for(extension)
            return self._fr_restricted(extension, node_id, holders, session, backend)
        return self._fr_inclusion_exclusion(extension, node_id, holders, backend)

    def _check_extension(
        self,
        extension: ProbabilisticViewExtension,
        session: Optional[QuerySession],
    ) -> None:
        if extension.view.name != self.view.name:
            raise RewritingError(
                f"plan reads view {self.view.name!r}, got {extension.view.name!r}"
            )
        if session is not None and session.p is not extension.pdocument:
            raise RewritingError(
                "supplied session is bound to a different p-document than "
                "the extension being evaluated"
            )

    def _caches_for(
        self, extension: ProbabilisticViewExtension
    ) -> tuple[QuerySession, dict, dict]:
        """The per-extension cache bundle ``(session, denominators,
        subdocument sessions)``, reset whenever the plan meets a different
        extension object."""
        cached = self._extension_caches
        if cached is None or cached[0] is not extension:
            cached = (
                extension,
                QuerySession(
                    extension.pdocument,
                    backend=self.backend,
                    store=self.store,
                ),
                {},
                {},
            )
            self._extension_caches = cached
        return cached[1], cached[2], cached[3]

    def _relevant_holder(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
    ) -> Optional[int]:
        """Theorem 1's unique relevant ancestor ``n_a`` (paper footnote 1).

        When the compensation's main branch is ``/``-only, it is the holder
        at exactly ``|mb(q_(k))|`` nodes' distance above ``n``; otherwise
        ``mb(v)`` is ``/``-only and every holder sits at the same document
        depth, so a node has at most one.
        """
        if not ops.mb_has_desc_edge(self.compensation):
            distance = self.compensation.main_branch_length()
            holders = [
                h
                for h in holders
                if extension.nodes_between(h, node_id) == distance
            ]
            if not holders:
                return None
        if len(holders) != 1:
            raise RewritingError(
                "restricted plan found several compensation-reachable "
                "ancestors; the rewriting is not restricted on this data"
            )
        return holders[0]

    def _fr_restricted(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
        session: QuerySession,
        backend,
    ):
        """Theorem 1: ``Pr(n ∈ q_r(P_v)) ÷ Pr(n_a ∈ v_(k)(P_v^{n_a}))``."""
        n_a = self._relevant_holder(extension, node_id, holders)
        if n_a is None:
            return backend.zero
        numerator = session.boolean_probability(
            anchor_via_marker(self.qr, node_id)
        )
        denominator = self._denominator(extension, n_a, backend)
        if not denominator:
            return backend.zero
        return numerator / denominator

    def _denominator(
        self, extension: ProbabilisticViewExtension, holder: int, backend
    ):
        """``Pr(n_a ∈ v_(k)(P_v^{n_a}))``, cached per extension and holder."""
        _, denominators, _ = self._caches_for(extension)
        key = (holder, backend.name)
        if key not in denominators:
            out_token_node = ops.suffix(self.view.pattern, self.k)
            denominators[key] = boolean_probability(
                extension.result_subdocument(holder),
                out_token_node,
                backend=backend,
                store=self.store,
            )
        return denominators[key]

    def _fr_inclusion_exclusion(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
        backend,
    ):
        """Theorem 2 / Lemma 1: ``Pr(∨ e_i)`` by inclusion-exclusion."""
        total = backend.zero
        one = backend.one
        indices = range(len(holders))
        for size in range(1, len(holders) + 1):
            sign = one if size % 2 == 1 else -one
            for subset in itertools.combinations(indices, size):
                joint = self._joint_event_probability(
                    extension, node_id, [holders[i] for i in subset], backend
                )
                total = total + sign * joint
        return total

    def _joint_event_probability(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        subset: list[int],
        backend,
    ):
        """``Pr(∩_{i∈S} e_i)`` per Theorem 2's α-pattern construction.

        ``subset`` is ordered top-down; its head ``n_{i0}`` supplies the base
        factor ``Pr(n_{i0} ∈ v(P)) ÷ Pr(n_{i0} ∈ v_(k)(P_v^{n_{i0}}))``, and
        all remaining events are tested jointly inside ``P̂_v^{n_{i0}}``.
        All conjuncts are evaluated through one session per subtree root, so
        candidates sharing a holder also share its subtree memo.
        """
        top = subset[0]
        sub_session = self._subdocument_session(extension, top)
        out_token_node = ops.suffix(self.view.pattern, self.k)
        denominator = sub_session.boolean_probability(out_token_node)
        if not denominator:
            return backend.zero
        base = backend.convert(extension.selection[top]) / denominator
        components = [anchor_via_marker(self.compensation, node_id)]
        token = ops.last_token(self.view.pattern)
        m = token.main_branch_length()
        for deeper in subset[1:]:
            s = extension.nodes_between(top, deeper)
            components.append(
                self._alpha_component(token, m, s, deeper, node_id)
            )
        probability = sub_session.boolean_many([(components, None)])[0]
        return base * probability

    def _subdocument_session(
        self, extension: ProbabilisticViewExtension, top: int
    ) -> QuerySession:
        _, _, sub_sessions = self._caches_for(extension)
        key = (top, get_backend(self.backend).name)
        session = sub_sessions.get(key)
        if session is None:
            session = sub_sessions[key] = QuerySession(
                extension.result_subdocument(top),
                backend=self.backend,
                store=self.store,
            )
        return session

    def _alpha_component(
        self,
        token: TreePattern,
        m: int,
        s: int,
        deeper_id: int,
        node_id: int,
    ) -> TreePattern:
        """One α-pattern conjunct testing a deeper event ``e_j`` (§4.4).

        When the token images cannot overlap (``s > m``), the full last token
        is re-matched below the subtree root through a ``//``-edge; when they
        may overlap (``s ≤ m``), only the bottom ``s`` token nodes are
        matched, starting *at* the subtree root.
        """
        if s > m:
            chain = anchor_via_marker(token, deeper_id)
            root = PatternNode(self.view.pattern.out.label, Axis.CHILD)
            chain_root = chain.root
            chain_root.axis = Axis.DESC
            root.add_child(chain_root)
            anchored = TreePattern(root, chain.out)
        else:
            anchored = anchor_via_marker(ops.token_suffix_chain(token, s), deeper_id)
        full = ops.compensation(anchored, self.compensation)
        return anchor_via_marker(full, node_id)

    # -- full plan evaluation --------------------------------------------
    def evaluate(
        self,
        extension: ProbabilisticViewExtension,
        session: Optional[QuerySession] = None,
    ) -> dict[int, Union[Fraction, float]]:
        """The complete probabilistic answer ``q(P̂)`` from the extension.

        Restricted plans batch every candidate's numerator through one
        shared session pass (`QuerySession.boolean_many`); unrestricted
        plans share per-holder subdocument sessions across candidates.
        """
        backend = get_backend(self.backend)
        self._check_extension(extension, session)
        candidates = self._candidates(extension)
        answer: dict[int, Union[Fraction, float]] = {}
        if not candidates:
            return answer
        zero = backend.zero
        if self.restricted:
            if session is None:
                session, _, _ = self._caches_for(extension)
            probabilities = self._restricted_batch(
                extension, candidates, session, backend
            )
        else:
            probabilities = [
                self.fr(extension, node_id) for node_id in candidates
            ]
        for node_id, probability in zip(candidates, probabilities):
            if probability > zero:
                answer[node_id] = probability
        return answer

    def _restricted_batch(
        self,
        extension: ProbabilisticViewExtension,
        candidates: list[int],
        session: QuerySession,
        backend,
    ) -> list:
        """Theorem 1 over a whole candidate list, numerators batched.

        Candidates without a compensation-reachable holder have ``f_r = 0``
        and are excluded from the numerator batch up front.
        """
        holder_of: dict[int, Optional[int]] = {}
        for node_id in candidates:
            holders = extension.selected_ancestors_or_self(node_id)
            holder_of[node_id] = (
                self._relevant_holder(extension, node_id, holders)
                if holders
                else None
            )
        evaluable = [n for n in candidates if holder_of[n] is not None]
        numerators = dict(
            zip(
                evaluable,
                session.boolean_many(
                    [anchor_via_marker(self.qr, n) for n in evaluable]
                ),
            )
        )
        probabilities = []
        for node_id in candidates:
            n_a = holder_of[node_id]
            if n_a is None:
                probabilities.append(backend.zero)
                continue
            denominator = self._denominator(extension, n_a, backend)
            probabilities.append(
                numerators[node_id] / denominator if denominator else backend.zero
            )
        return probabilities

    def _candidates(self, extension: ProbabilisticViewExtension) -> list[int]:
        """Original node Ids that the deterministic part q_r may select."""
        world = extension.pdocument.max_world()
        selected = evaluate_deterministic(self.qr, world)
        originals: set[int] = set()
        for fresh_id in selected:
            for child in world.node(fresh_id).children:
                original = parse_marker_label(child.label)
                if original is not None:
                    originals.add(original)
        return sorted(originals)

    def describe(self) -> str:
        kind = "restricted" if self.restricted else "unrestricted"
        return f"{kind} TP-rewriting of {self.query.xpath()} using {self.view!r}"


# ======================================================================
# Multi-view plans (§5)
# ======================================================================
ViewOracle = Callable[[int], Union[Fraction, float]]
"""Returns ``Pr(n ∈ u_i(P))`` for the (possibly compensated) view ``u_i``,
computed from that view's extension only."""


@dataclass
class TPIRewritePlan:
    """A probabilistic TP∩-rewriting: ``f_r(n) = Π_i oracle_i(n)^{c_i}``.

    Attributes:
        query: the input query ``q``.
        names: the participating (possibly compensated) view names.
        oracles: per-view probability oracles (extension-only access).
        exponents: the exact rational exponents ``c_i``; Theorem 3's plan is
            the instance with ``c_i = 1`` and ``c_{mb-view} −= (m−1)``.
        candidate_source: yields the node Ids the deterministic part selects.
        backend: numeric backend of the product ``f_r``.  ``"exact"`` uses
            the exact rational root extraction of :func:`repro.rewrite.
            linsys.exact_power`; any other backend computes float powers.
    """

    query: TreePattern
    names: list[str]
    oracles: dict[str, ViewOracle]
    exponents: dict[str, Fraction]
    candidate_source: Callable[[], Sequence[int]]
    description: str = ""
    backend: BackendLike = "exact"

    def fr(self, node_id: int) -> Union[Fraction, float]:
        backend = get_backend(self.backend)
        factors: list[tuple] = []
        for name in self.names:
            exponent = self.exponents.get(name, ZERO)
            if exponent == ZERO:
                continue
            factor = self.oracles[name](node_id)
            if not factor:
                return backend.zero
            factors.append((factor, exponent))
        if backend.name == "exact":
            return exact_power(
                [(as_fraction(base), exponent) for base, exponent in factors]
            )
        product = backend.one
        for base, exponent in factors:
            product = product * backend.convert(
                float(base) ** float(exponent)
            )
        return product

    def evaluate(self) -> dict[int, Union[Fraction, float]]:
        zero = get_backend(self.backend).zero
        answer: dict[int, Union[Fraction, float]] = {}
        for node_id in self.candidate_source():
            probability = self.fr(node_id)
            if probability > zero:
                answer[node_id] = probability
        return answer
