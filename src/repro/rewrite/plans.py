"""Probabilistic rewriting plans: the pairs ``(q_r, f_r)`` of Definition 4.

A plan evaluates **only** over view extensions (the set ``D^P̂_V``), never
over the original p-document — that is the whole point of view-based
rewriting.  Two plan shapes exist:

* :class:`TPRewritePlan` — single-view plans built by ``TPrewrite`` (§4),
  using compensation.  ``f_r`` is Theorem 1's quotient in the restricted
  case and Theorem 2's inclusion-exclusion over the events ``e_i`` (with
  α-patterns and the ``Id(n)`` markers) in the unrestricted case.
* :class:`TPIRewritePlan` — multi-view intersection plans (§5).  ``f_r`` is
  a product of per-view result probabilities raised to exact rational
  exponents; Theorem 3's formula and the solutions of the ``S(q, V)``
  linear system (Theorem 5) are both instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..errors import RewritingError
from ..probability import ONE, ZERO
from ..prob.evaluator import ProbEvaluator, boolean_probability
from ..tp import ops
from ..tp.pattern import TreePattern
from ..views.extension import (
    ProbabilisticViewExtension,
    anchor_via_marker,
)
from ..views.view import View

__all__ = ["TPRewritePlan", "TPIRewritePlan", "ViewOracle"]


# ======================================================================
# Single-view plans (§4)
# ======================================================================
@dataclass
class TPRewritePlan:
    """A probabilistic TP-rewriting ``(q_r, f_r)`` using one view (§4).

    Attributes:
        query: the input query ``q``.
        view: the view ``v`` the plan reads.
        k: ``|mb(v)|`` — the compensation depth.
        compensation: ``q_(k)``, grafted below ``doc(v)/lbl(v)``.
        qr: the deterministic rewriting pattern over the extension document.
        restricted: Definition 5 (Theorem 1 applies); otherwise Theorem 2.
        u: the maximal prefix-suffix length of ``v``'s last token.
    """

    query: TreePattern
    view: View
    k: int
    compensation: TreePattern
    qr: TreePattern
    restricted: bool
    u: int

    # -- probability function f_r ----------------------------------------
    def fr(self, extension: ProbabilisticViewExtension, node_id: int) -> Fraction:
        """``f_r(n)``: recover ``Pr(n ∈ q(P))`` from the view extension only."""
        if extension.view.name != self.view.name:
            raise RewritingError(
                f"plan reads view {self.view.name!r}, got {extension.view.name!r}"
            )
        holders = extension.selected_ancestors_or_self(node_id)
        if not holders:
            return ZERO
        if self.restricted:
            return self._fr_restricted(extension, node_id, holders)
        return self._fr_inclusion_exclusion(extension, node_id, holders)

    def _fr_restricted(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
    ) -> Fraction:
        """Theorem 1: ``Pr(n ∈ q_r(P_v)) ÷ Pr(n_a ∈ v_(k)(P_v^{n_a}))``.

        The relevant ancestor ``n_a`` is unique (paper footnote 1): when the
        compensation's main branch is ``/``-only, it is the holder at exactly
        ``|mb(q_(k))|`` nodes' distance above ``n``; otherwise ``mb(v)`` is
        ``/``-only and every holder sits at the same document depth, so a
        node has at most one.
        """
        if not ops.mb_has_desc_edge(self.compensation):
            distance = self.compensation.main_branch_length()
            holders = [
                h
                for h in holders
                if extension.nodes_between(h, node_id) == distance
            ]
            if not holders:
                return ZERO
        if len(holders) != 1:
            raise RewritingError(
                "restricted plan found several compensation-reachable "
                "ancestors; the rewriting is not restricted on this data"
            )
        n_a = holders[0]
        numerator = boolean_probability(
            extension.pdocument, anchor_via_marker(self.qr, node_id)
        )
        out_token_node = ops.suffix(self.view.pattern, self.k)
        denominator = boolean_probability(
            extension.result_subdocument(n_a), out_token_node
        )
        if denominator == ZERO:
            return ZERO
        return numerator / denominator

    def _fr_inclusion_exclusion(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
    ) -> Fraction:
        """Theorem 2 / Lemma 1: ``Pr(∨ e_i)`` by inclusion-exclusion."""
        total = ZERO
        indices = range(len(holders))
        for size in range(1, len(holders) + 1):
            sign = ONE if size % 2 == 1 else -ONE
            for subset in itertools.combinations(indices, size):
                joint = self._joint_event_probability(
                    extension, node_id, [holders[i] for i in subset]
                )
                total += sign * joint
        return total

    def _joint_event_probability(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        subset: list[int],
    ) -> Fraction:
        """``Pr(∩_{i∈S} e_i)`` per Theorem 2's α-pattern construction.

        ``subset`` is ordered top-down; its head ``n_{i0}`` supplies the base
        factor ``Pr(n_{i0} ∈ v(P)) ÷ Pr(n_{i0} ∈ v_(k)(P_v^{n_{i0}}))``, and
        all remaining events are tested jointly inside ``P̂_v^{n_{i0}}``.
        """
        top = subset[0]
        sub = extension.result_subdocument(top)
        out_token_node = ops.suffix(self.view.pattern, self.k)
        denominator = boolean_probability(sub, out_token_node)
        if denominator == ZERO:
            return ZERO
        base = extension.selection[top] / denominator
        components = [anchor_via_marker(self.compensation, node_id)]
        token = ops.last_token(self.view.pattern)
        m = token.main_branch_length()
        for deeper in subset[1:]:
            s = extension.nodes_between(top, deeper)
            components.append(
                self._alpha_component(token, m, s, deeper, node_id)
            )
        probability = ProbEvaluator(sub, components).all_match_probability()
        return base * probability

    def _alpha_component(
        self,
        token: TreePattern,
        m: int,
        s: int,
        deeper_id: int,
        node_id: int,
    ) -> TreePattern:
        """One α-pattern conjunct testing a deeper event ``e_j`` (§4.4).

        When the token images cannot overlap (``s > m``), the full last token
        is re-matched below the subtree root through a ``//``-edge; when they
        may overlap (``s ≤ m``), only the bottom ``s`` token nodes are
        matched, starting *at* the subtree root.
        """
        from ..tp.pattern import Axis, PatternNode

        if s > m:
            chain = anchor_via_marker(token, deeper_id)
            root = PatternNode(self.view.pattern.out.label, Axis.CHILD)
            chain_root = chain.root
            chain_root.axis = Axis.DESC
            root.add_child(chain_root)
            anchored = TreePattern(root, chain.out)
        else:
            anchored = anchor_via_marker(ops.token_suffix_chain(token, s), deeper_id)
        full = ops.compensation(anchored, self.compensation)
        return anchor_via_marker(full, node_id)

    # -- full plan evaluation --------------------------------------------
    def evaluate(
        self, extension: ProbabilisticViewExtension
    ) -> dict[int, Fraction]:
        """The complete probabilistic answer ``q(P̂)`` from the extension."""
        answer: dict[int, Fraction] = {}
        for node_id in self._candidates(extension):
            probability = self.fr(extension, node_id)
            if probability > ZERO:
                answer[node_id] = probability
        return answer

    def _candidates(self, extension: ProbabilisticViewExtension) -> list[int]:
        """Original node Ids that the deterministic part q_r may select."""
        world = extension.pdocument.max_world()
        from ..tp.embedding import evaluate as evaluate_deterministic
        from ..views.view import parse_marker_label

        selected = evaluate_deterministic(self.qr, world)
        originals: set[int] = set()
        for fresh_id in selected:
            for child in world.node(fresh_id).children:
                original = parse_marker_label(child.label)
                if original is not None:
                    originals.add(original)
        return sorted(originals)

    def describe(self) -> str:
        kind = "restricted" if self.restricted else "unrestricted"
        return f"{kind} TP-rewriting of {self.query.xpath()} using {self.view!r}"


# ======================================================================
# Multi-view plans (§5)
# ======================================================================
ViewOracle = Callable[[int], Fraction]
"""Returns ``Pr(n ∈ u_i(P))`` for the (possibly compensated) view ``u_i``,
computed from that view's extension only."""


@dataclass
class TPIRewritePlan:
    """A probabilistic TP∩-rewriting: ``f_r(n) = Π_i oracle_i(n)^{c_i}``.

    Attributes:
        query: the input query ``q``.
        names: the participating (possibly compensated) view names.
        oracles: per-view probability oracles (extension-only access).
        exponents: the exact rational exponents ``c_i``; Theorem 3's plan is
            the instance with ``c_i = 1`` and ``c_{mb-view} −= (m−1)``.
        candidate_source: yields the node Ids the deterministic part selects.
    """

    query: TreePattern
    names: list[str]
    oracles: dict[str, ViewOracle]
    exponents: dict[str, Fraction]
    candidate_source: Callable[[], Sequence[int]]
    description: str = ""

    def fr(self, node_id: int) -> Fraction:
        factors: list[tuple[Fraction, Fraction]] = []
        for name in self.names:
            exponent = self.exponents.get(name, ZERO)
            if exponent == ZERO:
                continue
            factor = self.oracles[name](node_id)
            if factor == ZERO:
                return ZERO
            factors.append((factor, exponent))
        from .linsys import exact_power

        return exact_power(factors)

    def evaluate(self) -> dict[int, Fraction]:
        answer: dict[int, Fraction] = {}
        for node_id in self.candidate_source():
            probability = self.fr(node_id)
            if probability > ZERO:
                answer[node_id] = probability
        return answer


