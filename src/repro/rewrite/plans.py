"""Probabilistic rewriting plans: the pairs ``(q_r, f_r)`` of Definition 4.

A plan evaluates **only** over view extensions (the set ``D^P̂_V``), never
over the original p-document — that is the whole point of view-based
rewriting.  Two plan shapes exist:

* :class:`TPRewritePlan` — single-view plans built by ``TPrewrite`` (§4),
  using compensation.  ``f_r`` is Theorem 1's quotient in the restricted
  case and Theorem 2's inclusion-exclusion over the events ``e_i`` (with
  α-patterns and the paper's identity device, realized through
  provenance anchor sets) in the unrestricted case.
* :class:`TPIRewritePlan` — multi-view intersection plans (§5).  ``f_r`` is
  a product of per-view result probabilities raised to exact rational
  exponents; Theorem 3's formula and the solutions of the ``S(q, V)``
  linear system (Theorem 5) are both instances.

Both plan shapes carry a caller-chosen numeric ``backend`` (``"exact"``
Fractions by default, ``"fast"`` floats for throughput) and route their
inner evaluations — Theorem 1's numerators and denominators, Theorem 2's
α-pattern conjunctions — through a :class:`repro.prob.session.QuerySession`
over the extension p-document, so that a whole `evaluate()` call shares
one cross-query subtree memo instead of spawning a fresh exact evaluator
per candidate node.

The paper's ``Id(n)``-marker device is realized through *engine anchors*
over the extension's provenance table rather than marker pattern nodes:
pinning a pattern node to the set of ``n``'s occurrence copies
(:meth:`repro.views.extension.ProbabilisticViewExtension.
occurrence_copies`, served by :class:`repro.views.provenance.
ProvenanceTable`) is equivalent to requiring a legacy marker child
(extensions are Id-free and contain none), but keeps the goal table identical
across candidates — anchor values are abstracted out of the memo
fingerprints and re-bound to canonical anchor *positions*
(:mod:`repro.store.keys`), so the per-holder numerators, denominators
and α-pattern conjunctions that dominate Theorem-1/2 answering become
content-addressed store traffic instead of always-cold node-keyed work
(measured by ``benchmarks/bench_anchored.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Sequence, Union

from ..errors import RewritingError
from ..obs.trace import span as trace_span
from ..probability import BackendLike, ZERO, as_fraction, get_backend
from ..prob.session import QuerySession
from ..store import MemoStore
from ..tp import ops
from ..tp.embedding import evaluate as evaluate_deterministic
from ..tp.pattern import Axis, PatternNode, TreePattern
from ..views.extension import ProbabilisticViewExtension
from ..views.view import View
from .linsys import exact_power

__all__ = ["TPRewritePlan", "TPIRewritePlan", "ViewOracle"]


# ======================================================================
# Single-view plans (§4)
# ======================================================================
@dataclass
class TPRewritePlan:
    """A probabilistic TP-rewriting ``(q_r, f_r)`` using one view (§4).

    Attributes:
        query: the input query ``q``.
        view: the view ``v`` the plan reads.
        k: ``|mb(v)|`` — the compensation depth.
        compensation: ``q_(k)``, grafted below ``doc(v)/lbl(v)``.
        qr: the deterministic rewriting pattern over the extension document.
        restricted: Definition 5 (Theorem 1 applies); otherwise Theorem 2.
        u: the maximal prefix-suffix length of ``v``'s last token.
        backend: numeric backend the probability function computes in
            (``"exact"`` keeps Theorem 1/2's quotients bit-exact; ``"fast"``
            trades exactness for float throughput).
        store: optional :class:`repro.store.MemoStore` threaded into every
            session and engine the plan spawns over extension documents
            and their subdocuments — with a store shared with the base
            document (as :class:`repro.cache.RewritingCache` does),
            isomorphic subtrees of the document and its extensions share
            one evaluation, and the plan's anchored Theorem-1/2 traffic
            shares canonical anchor-position entries.
        anchored_store: content-address the plan's anchored evaluations
            (default).  ``False`` = node-keyed baseline: anchored entries
            stay in session-local memos and die with each per-extension
            session (``benchmarks/bench_anchored.py``).
    """

    query: TreePattern
    view: View
    k: int
    compensation: TreePattern
    qr: TreePattern
    restricted: bool
    u: int
    backend: BackendLike = "exact"
    store: Optional[MemoStore] = None
    anchored_store: bool = True
    # Per-extension evaluation caches, single-slot keyed on the extension's
    # identity (all entries are derived from one extension's p-document and
    # must never leak to another): the session over the extension document
    # (cross-candidate subtree memo), Theorem 1's per-holder denominators,
    # and Theorem 2's per-holder subdocument sessions.
    _extension_caches: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Extension-independent derived patterns, built once per plan: the
    # denominator pattern ``v_(k)``, the view's last token and its
    # main-branch length, and the α-conjuncts per overlap length ``s``
    # (identical across candidates and holders).
    _derived: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _alpha_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # -- probability function f_r ----------------------------------------
    def fr(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        session: Optional[QuerySession] = None,
    ) -> Union[Fraction, float]:
        """``f_r(n)``: recover ``Pr(n ∈ q(P))`` from the view extension only.

        The value lives in the plan backend's domain.  ``session`` may
        supply a caller-owned :class:`QuerySession` over the extension
        p-document; by default the plan keeps one per extension so that
        repeated ``fr`` calls share the subtree memo.
        """
        backend = get_backend(self.backend)
        self._check_extension(extension, session)
        holders = extension.selected_ancestors_or_self(node_id)
        if not holders:
            return backend.zero
        if self.restricted:
            if session is None:
                session, _, _ = self._caches_for(extension)
            return self._fr_restricted(extension, node_id, holders, session, backend)
        return self._fr_inclusion_exclusion(extension, node_id, holders, backend)

    def _check_extension(
        self,
        extension: ProbabilisticViewExtension,
        session: Optional[QuerySession],
    ) -> None:
        if extension.view.name != self.view.name:
            raise RewritingError(
                f"plan reads view {self.view.name!r}, got {extension.view.name!r}"
            )
        if session is not None and session.p is not extension.pdocument:
            raise RewritingError(
                "supplied session is bound to a different p-document than "
                "the extension being evaluated"
            )

    def _caches_for(
        self, extension: ProbabilisticViewExtension
    ) -> tuple[QuerySession, dict, dict]:
        """The per-extension cache bundle ``(session, denominators,
        subdocument sessions)``, reset whenever the plan meets a different
        extension object."""
        cached = self._extension_caches
        if cached is None or cached[0] is not extension:
            cached = (
                extension,
                QuerySession(
                    extension.pdocument,
                    backend=self.backend,
                    store=self.store,
                    anchored_store=self.anchored_store,
                ),
                {},
                {},
            )
            self._extension_caches = cached
        return cached[1], cached[2], cached[3]

    def _relevant_holder(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
    ) -> Optional[int]:
        """Theorem 1's unique relevant ancestor ``n_a`` (paper footnote 1).

        When the compensation's main branch is ``/``-only, it is the holder
        at exactly ``|mb(q_(k))|`` nodes' distance above ``n``; otherwise
        ``mb(v)`` is ``/``-only and every holder sits at the same document
        depth, so a node has at most one.
        """
        if not ops.mb_has_desc_edge(self.compensation):
            distance = self.compensation.main_branch_length()
            holders = [
                h
                for h in holders
                if extension.nodes_between(h, node_id) == distance
            ]
            if not holders:
                return None
        if len(holders) != 1:
            raise RewritingError(
                "restricted plan found several compensation-reachable "
                "ancestors; the rewriting is not restricted on this data"
            )
        return holders[0]

    def _fr_restricted(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
        session: QuerySession,
        backend,
    ):
        """Theorem 1: ``Pr(n ∈ q_r(P_v)) ÷ Pr(n_a ∈ v_(k)(P_v^{n_a}))``."""
        n_a = self._relevant_holder(extension, node_id, holders)
        if n_a is None:
            return backend.zero
        # Engine-anchored Id(n) device: out(q_r) pinned to n's occurrence
        # copies keeps the goal table candidate-independent, so the DP's
        # subtree work is content-addressed in the structural store.
        numerator = session.boolean_probability(
            self.qr, {self.qr.out: extension.occurrence_copies(node_id)}
        )
        denominator = self._denominator(extension, n_a, backend)
        if not denominator:
            return backend.zero
        return numerator / denominator

    def _suffix_and_token(self) -> tuple:
        """``(v_(k), last token, m)``, derived from the view once per plan."""
        cached = self._derived
        if cached is None:
            token = ops.last_token(self.view.pattern)
            cached = self._derived = (
                ops.suffix(self.view.pattern, self.k),
                token,
                token.main_branch_length(),
            )
        return cached

    def _denominator(
        self, extension: ProbabilisticViewExtension, holder: int, backend
    ):
        """``Pr(n_a ∈ v_(k)(P_v^{n_a}))``, cached per extension and holder.

        Evaluated through the holder's subdocument session, so Theorem 1's
        denominators and Theorem 2's base factors share one memo (and,
        with a store, one set of content-addressed entries).
        """
        _, denominators, _ = self._caches_for(extension)
        key = (holder, backend.name)
        if key not in denominators:
            out_token_node, _, _ = self._suffix_and_token()
            denominators[key] = self._subdocument_session(
                extension, holder
            ).boolean_probability(out_token_node)
        return denominators[key]

    def _fr_inclusion_exclusion(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        holders: list[int],
        backend,
    ):
        """Theorem 2 / Lemma 1: ``Pr(∨ e_i)`` by inclusion-exclusion.

        Each subset's joint probability decomposes as the top holder's
        base factor ``Pr(n_{i0} ∈ v(P)) ÷ Pr(n_{i0} ∈ v_(k)(P_v^{n_{i0}}))``
        times a conjunction evaluated inside ``P̂_v^{n_{i0}}`` — so all
        subsets sharing a top holder are batched through **one** shared
        session pass (:meth:`QuerySession.boolean_many`) over that
        holder's subdocument instead of one traversal per subset.
        """
        with trace_span("rewrite.t2.alpha", holders=len(holders)) as sp:
            total = backend.zero
            one = backend.one
            indices = range(len(holders))
            by_top: dict[int, list[tuple]] = {}
            for size in range(1, len(holders) + 1):
                sign = one if size % 2 == 1 else -one
                for subset in itertools.combinations(indices, size):
                    chosen = [holders[i] for i in subset]
                    by_top.setdefault(chosen[0], []).append((sign, chosen))
            subsets = 0
            for top, group in by_top.items():
                denominator = self._denominator(extension, top, backend)
                if not denominator:
                    continue
                base = backend.convert(extension.selection[top]) / denominator
                items = [
                    self._joint_event_item(extension, node_id, subset)
                    for _, subset in group
                ]
                probabilities = self._subdocument_session(
                    extension, top
                ).boolean_many(items)
                subsets += len(items)
                for (sign, _), probability in zip(group, probabilities):
                    total = total + sign * (base * probability)
            if sp:
                sp.set("subsets", subsets)
        return total

    def _joint_event_item(
        self,
        extension: ProbabilisticViewExtension,
        node_id: int,
        subset: list[int],
    ) -> tuple:
        """The ``(patterns, anchors)`` Boolean item for ``Pr(∩_{i∈S} e_i)``
        per Theorem 2's α-pattern construction, evaluated inside the top
        holder's result subdocument.

        ``subset`` is ordered top-down; its head contributes the base
        factor (handled by the caller), and all remaining events are
        tested jointly below it.  The ``Id(·)`` pins are engine anchors
        (occurrence-copy sets keyed by ``(component index, pattern
        path)``), so the conjunction's subtree work is content-addressed
        under anchor-position keys and the conjunct patterns themselves
        are candidate-independent (cached per overlap length).
        """
        top = subset[0]
        sub = extension.result_subdocument(top)
        anchors: dict = {}

        def pin(index: int, path: tuple, original_id: int) -> None:
            admissible = extension.occurrence_copies(original_id, within=sub)
            key = (index, path)
            if key in anchors:
                # Two pins landing on one pattern node (a trivial
                # compensation coalesces the α-chain's out with the final
                # out): the node must be a copy of both originals at once.
                anchors[key] = tuple(
                    set(anchors[key]) & set(admissible)
                )
            else:
                anchors[key] = admissible

        components = [self.compensation]
        pin(0, self.compensation.path_to(self.compensation.out), node_id)
        _, token, m = self._suffix_and_token()
        for index, deeper in enumerate(subset[1:], start=1):
            s = extension.nodes_between(top, deeper)
            component, (deeper_path, out_path) = self._alpha_component(
                token, m, s
            )
            components.append(component)
            pin(index, deeper_path, deeper)
            pin(index, out_path, node_id)
        return (components, anchors)

    def _subdocument_session(
        self, extension: ProbabilisticViewExtension, top: int
    ) -> QuerySession:
        _, _, sub_sessions = self._caches_for(extension)
        key = (top, get_backend(self.backend).name)
        session = sub_sessions.get(key)
        if session is None:
            session = sub_sessions[key] = QuerySession(
                extension.result_subdocument(top),
                backend=self.backend,
                store=self.store,
                anchored_store=self.anchored_store,
            )
        return session

    def _alpha_component(
        self, token: TreePattern, m: int, s: int
    ) -> tuple[TreePattern, tuple[tuple, tuple]]:
        """One α-pattern conjunct testing a deeper event ``e_j`` (§4.4).

        When the token images cannot overlap (``s > m``), the full last token
        is re-matched below the subtree root through a ``//``-edge; when they
        may overlap (``s ≤ m``), only the bottom ``s`` token nodes are
        matched, starting *at* the subtree root.

        Returns the conjunct together with the structural paths of its
        two pin points — the re-matched token's out (to be anchored at
        the deeper event's copies) and the grafted compensation's out (to
        be anchored at the candidate's copies); the caller binds both
        through engine anchors.  Conjuncts are cached per ``s``: with the
        ``Id(·)`` pins moved out of the pattern and into anchors, the
        construction no longer depends on the candidate or the deeper
        node.  (Within one subset the ``s`` values are strictly
        increasing, so one TP∩ item never holds the same object twice.)
        """
        cached = self._alpha_cache.get(s)
        if cached is not None:
            return cached
        if s > m:
            chain, mapping = token.copy_with_mapping()
            chain_out = mapping[id(token.out)]
            root = PatternNode(self.view.pattern.out.label, Axis.CHILD)
            chain_root = chain.root
            chain_root.axis = Axis.DESC
            root.add_child(chain_root)
            anchored = TreePattern(root, chain_out)
        else:
            anchored = ops.token_suffix_chain(token, s)
        full = ops.compensation(anchored, self.compensation)
        # comp() coalesces the compensation root with anchored.out, so the
        # pin point survives as the main-branch node at anchored's depth.
        merge = full.main_branch()[anchored.main_branch_length() - 1]
        result = (full, (full.path_to(merge), full.path_to(full.out)))
        self._alpha_cache[s] = result
        return result

    # -- full plan evaluation --------------------------------------------
    def evaluate(
        self,
        extension: ProbabilisticViewExtension,
        session: Optional[QuerySession] = None,
    ) -> dict[int, Union[Fraction, float]]:
        """The complete probabilistic answer ``q(P̂)`` from the extension.

        Restricted plans batch every candidate's numerator through one
        shared session pass (`QuerySession.boolean_many`); unrestricted
        plans share per-holder subdocument sessions across candidates.
        """
        backend = get_backend(self.backend)
        self._check_extension(extension, session)
        candidates = self._candidates(extension)
        answer: dict[int, Union[Fraction, float]] = {}
        if not candidates:
            return answer
        with trace_span(
            "rewrite.plan",
            kind="restricted" if self.restricted else "unrestricted",
            candidates=len(candidates),
        ) as sp:
            zero = backend.zero
            if self.restricted:
                if session is None:
                    session, _, _ = self._caches_for(extension)
                probabilities = self._restricted_batch(
                    extension, candidates, session, backend
                )
            else:
                probabilities = [
                    self.fr(extension, node_id) for node_id in candidates
                ]
            for node_id, probability in zip(candidates, probabilities):
                if probability > zero:
                    answer[node_id] = probability
            if sp:
                sp.set("answers", len(answer))
        return answer

    def _restricted_batch(
        self,
        extension: ProbabilisticViewExtension,
        candidates: list[int],
        session: QuerySession,
        backend,
    ) -> list:
        """Theorem 1 over a whole candidate list, numerators batched.

        Candidates without a compensation-reachable holder have ``f_r = 0``
        and are excluded from the numerator batch up front.
        """
        holder_of: dict[int, Optional[int]] = {}
        for node_id in candidates:
            holders = extension.selected_ancestors_or_self(node_id)
            holder_of[node_id] = (
                self._relevant_holder(extension, node_id, holders)
                if holders
                else None
            )
        evaluable = [n for n in candidates if holder_of[n] is not None]
        with trace_span("rewrite.t1.numerators", items=len(evaluable)):
            numerators = dict(
                zip(
                    evaluable,
                    session.boolean_many(
                        [
                            (
                                self.qr,
                                {self.qr.out: extension.occurrence_copies(n)},
                            )
                            for n in evaluable
                        ]
                    ),
                )
            )
        with trace_span("rewrite.t1.denominators", candidates=len(candidates)):
            probabilities = []
            for node_id in candidates:
                n_a = holder_of[node_id]
                if n_a is None:
                    probabilities.append(backend.zero)
                    continue
                denominator = self._denominator(extension, n_a, backend)
                probabilities.append(
                    numerators[node_id] / denominator
                    if denominator
                    else backend.zero
                )
        return probabilities

    def _candidates(self, extension: ProbabilisticViewExtension) -> list[int]:
        """Original node Ids that the deterministic part q_r may select.

        The selected extension nodes (copies) are resolved back to
        original Ids through the extension's provenance table — the
        marker-free form of the paper's ``Id(n)`` readout.
        """
        world = extension.pdocument.max_world()
        selected = evaluate_deterministic(self.qr, world)
        return sorted(extension.provenance.originals_of(selected))

    def describe(self) -> str:
        kind = "restricted" if self.restricted else "unrestricted"
        return f"{kind} TP-rewriting of {self.query.xpath()} using {self.view!r}"


# ======================================================================
# Multi-view plans (§5)
# ======================================================================
ViewOracle = Callable[[int], Union[Fraction, float]]
"""Returns ``Pr(n ∈ u_i(P))`` for the (possibly compensated) view ``u_i``,
computed from that view's extension only."""


@dataclass
class TPIRewritePlan:
    """A probabilistic TP∩-rewriting: ``f_r(n) = Π_i oracle_i(n)^{c_i}``.

    Attributes:
        query: the input query ``q``.
        names: the participating (possibly compensated) view names.
        oracles: per-view probability oracles (extension-only access).
        exponents: the exact rational exponents ``c_i``; Theorem 3's plan is
            the instance with ``c_i = 1`` and ``c_{mb-view} −= (m−1)``.
        candidate_source: yields the node Ids the deterministic part selects.
        backend: numeric backend of the product ``f_r``.  ``"exact"`` uses
            the exact rational root extraction of :func:`repro.rewrite.
            linsys.exact_power`; any other backend computes float powers.
    """

    query: TreePattern
    names: list[str]
    oracles: dict[str, ViewOracle]
    exponents: dict[str, Fraction]
    candidate_source: Callable[[], Sequence[int]]
    description: str = ""
    backend: BackendLike = "exact"

    def fr(self, node_id: int) -> Union[Fraction, float]:
        backend = get_backend(self.backend)
        factors: list[tuple] = []
        for name in self.names:
            exponent = self.exponents.get(name, ZERO)
            if exponent == ZERO:
                continue
            factor = self.oracles[name](node_id)
            if not factor:
                return backend.zero
            factors.append((factor, exponent))
        if backend.name == "exact":
            return exact_power(
                [(as_fraction(base), exponent) for base, exponent in factors]
            )
        product = backend.one
        for base, exponent in factors:
            product = product * backend.convert(
                float(base) ** float(exponent)
            )
        return product

    def evaluate(self) -> dict[int, Union[Fraction, float]]:
        zero = get_backend(self.backend).zero
        answer: dict[int, Union[Fraction, float]] = {}
        for node_id in self.candidate_source():
            probability = self.fr(node_id)
            if probability > zero:
                answer[node_id] = probability
        return answer
