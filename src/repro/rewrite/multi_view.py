"""TP∩-rewritings: intersections of (possibly compensated) views (§5).

Three entry points, in increasing generality:

* :func:`theorem3_plan` — the sound product formula for *pairwise
  c-independent* views (Theorem 3, with Lemma 3's appearance-probability
  condition ``∃ v_i: mb(q) ⊑ v_i``);
* :func:`find_c_independent_subset` — brute-force selection of a pairwise
  c-independent subset supporting Theorem 3 (NP-hard by Theorem 4 — the
  benchmark measures the blow-up on the k-dimensional-perfect-matching
  reduction instances);
* :func:`tpi_rewrite` — ``TPIrewrite`` (Figure 7): the general procedure,
  expanding ``V`` with compensated views, building the canonical plan, and
  deriving ``f_r`` from the ``S(q, V)`` linear system (Theorem 5).  Sound;
  complete unless ``mb(q)`` has only ``/``-edges (Proposition 6); PTime
  modulo the TP∩ equivalence tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional, Sequence

from ..errors import RewritingError
from ..probability import BackendLike, get_backend
from ..store import MemoStore
from ..tp import ops
from ..tp.containment import contains
from ..tp.pattern import TreePattern
from ..tpi.containment import tpi_equivalent_tp
from ..views.extension import ProbabilisticViewExtension
from ..views.view import View
from .cindep import c_independent
from .decomposition import decompose_views
from .plans import TPIRewritePlan
from .single_view import probabilistic_tp_plan
from ..tp.embedding import evaluate as evaluate_deterministic

__all__ = [
    "theorem3_plan",
    "find_c_independent_subset",
    "tpi_rewrite",
    "canonical_plan_views",
    "appearance_view_exists",
]

Extensions = Mapping[str, ProbabilisticViewExtension]


# ======================================================================
# Theorem 3: pairwise c-independent views
# ======================================================================
def appearance_view_exists(q: TreePattern, patterns: Sequence[TreePattern]) -> bool:
    """Lemma 3's condition: some view contains the linear query ``mb(q)``.

    Exactly then is ``Pr(n ∈ P)`` computable from the extensions — it equals
    that view's result probability for every candidate node.
    """
    mb_q = ops.mb_pattern(q)
    return any(contains(pattern, mb_q) for pattern in patterns)


@dataclass(frozen=True)
class Theorem3Member:
    """One intersection operand: a view, possibly compensated with ``q_(a)``.

    A compensated member's probabilities are computed from its *base* view's
    extension via §4's machinery (Example 15 compensates ``v2BON`` with
    ``bonus[laptop]`` and still reads only ``P̂_{v2BON}``).
    """

    name: str
    base: View
    compensation_depth: Optional[int] = None

    def unfolded(self, q: TreePattern) -> TreePattern:
        if self.compensation_depth is None:
            return self.base.pattern
        return ops.compensation(
            self.base.pattern, ops.suffix(q, self.compensation_depth)
        )


_APPEARANCE_TAG = "__appearance__"


def theorem3_plan(
    q: TreePattern,
    members: Sequence[View | Theorem3Member],
    extensions: Extensions,
    check_equivalence: bool = True,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
    anchored_store: bool = True,
) -> Optional[TPIRewritePlan]:
    """Build Theorem 3's probabilistic TP∩-rewriting, if its conditions hold.

    ``f_r(n) = Π_i Pr(n ∈ v_i(P)) ÷ Pr(n ∈ P)^{m−1}``.  The conditions:
    the (unfolded) members are pairwise c-independent, their intersection is
    a deterministic rewriting of ``q``, and ``Pr(n ∈ P)`` is computable —
    Lemma 3: some member's *base* view contains ``mb(q)`` (its selection
    probability then equals the appearance probability for every candidate).
    """
    normalized = [
        member
        if isinstance(member, Theorem3Member)
        else Theorem3Member(member.name, member)
        for member in members
    ]
    unfolded = {member.name: member.unfolded(q) for member in normalized}
    for m1, m2 in itertools.combinations(normalized, 2):
        if not c_independent(unfolded[m1.name], unfolded[m2.name]):
            return None
    mb_q = ops.mb_pattern(q)
    anchor = next(
        (m for m in normalized if contains(m.base.pattern, mb_q)), None
    )
    if anchor is None:
        return None  # Lemma 3: Pr(n ∈ P) is not computable
    if check_equivalence and not tpi_equivalent_tp(list(unfolded.values()), q):
        return None  # not a deterministic rewriting
    oracles = {}
    for member in normalized:
        oracle = _theorem3_oracle(
            member, q, extensions, backend, store, anchored_store
        )
        if oracle is None:
            return None  # compensated member fails §4's conditions
        oracles[member.name] = oracle
    exponents = {member.name: Fraction(1) for member in normalized}
    names = [member.name for member in normalized]
    if len(normalized) > 1:
        oracles[_APPEARANCE_TAG] = _selection_oracle(
            extensions[anchor.base.name], backend
        )
        exponents[_APPEARANCE_TAG] = Fraction(1 - len(normalized))
        names.append(_APPEARANCE_TAG)

    def candidates() -> list[int]:
        common: Optional[set[int]] = None
        for member in normalized:
            keys = set(extensions[member.base.name].selection)
            common = keys if common is None else common & keys
        return sorted(common or set())

    return TPIRewritePlan(
        query=q,
        names=names,
        oracles=oracles,
        exponents=exponents,
        candidate_source=candidates,
        description=f"Theorem 3 plan over {', '.join(m.name for m in normalized)}",
        backend=backend,
    )


def _theorem3_oracle(
    member: Theorem3Member,
    q: TreePattern,
    extensions: Extensions,
    backend: BackendLike,
    store: Optional[MemoStore] = None,
    anchored_store: bool = True,
):
    extension = extensions[member.base.name]
    if member.compensation_depth is None:
        return _selection_oracle(extension, backend)
    plan = probabilistic_tp_plan(
        member.unfolded(q), member.base, backend=backend, store=store,
        anchored_store=anchored_store,
    )
    if plan is None:
        return None

    def oracle(node_id: int):
        return plan.fr(extension, node_id)

    return oracle


def _selection_oracle(
    extension: ProbabilisticViewExtension, backend: BackendLike = "exact"
):
    zero = get_backend(backend).zero

    def oracle(node_id: int):
        return extension.selection.get(node_id, zero)

    return oracle


def find_c_independent_subset(
    q: TreePattern,
    views: Sequence[View],
    require_appearance_view: bool = False,
) -> Optional[list[View]]:
    """Smallest pairwise c-independent subset forming a rewriting of ``q``.

    Brute force over subsets — deciding existence is NP-hard (Theorem 4, by
    reduction from k-dimensional perfect matching), so no polynomial
    procedure is expected; the benchmark charts the exponential growth.

    With ``require_appearance_view`` the subset must additionally contain a
    view satisfying Lemma 3 (needed to instantiate Theorem 3's ``f_r``; the
    NP-hard deterministic selection core does not require it).
    """
    for size in range(1, len(views) + 1):
        for subset in itertools.combinations(views, size):
            patterns = [view.pattern for view in subset]
            if not all(
                c_independent(a, b)
                for a, b in itertools.combinations(patterns, 2)
            ):
                continue
            if require_appearance_view and not appearance_view_exists(q, patterns):
                continue
            if tpi_equivalent_tp(patterns, q):
                return list(subset)
    return None


# ======================================================================
# TPIrewrite (Figure 7): compensated views + the S(q, V) system
# ======================================================================
@dataclass
class _PlanMember:
    """One (possibly compensated) view of the canonical plan ``V′``."""

    tag: str
    base: View
    unfolded: TreePattern  # over the original document root
    compensation_depth: Optional[int]  # None = original view
    probability_computable: bool  # membership in V″


def canonical_plan_views(
    q: TreePattern, views: Sequence[View]
) -> list[_PlanMember]:
    """``V′``: the given views plus every compensated view ``comp(v, q_(a))``.

    A compensated view joins ``V″`` (the probability-computable subset) iff
    §4's conditions hold for it over its base view — decided by reusing
    ``TPrewrite``'s per-view procedure.
    """
    members: list[_PlanMember] = []
    for view in views:
        members.append(
            _PlanMember(
                tag=view.name,
                base=view,
                unfolded=view.pattern,
                compensation_depth=None,
                probability_computable=True,
            )
        )
        branch = q.main_branch()
        for depth in range(1, len(branch) + 1):
            if branch[depth - 1].label != view.pattern.out.label:
                continue
            if not contains(view.pattern, ops.prefix(q, depth)):
                continue  # q^(a) ⋢ v
            unfolded = ops.compensation(view.pattern, ops.suffix(q, depth))
            if unfolded == view.pattern:
                continue  # the compensation is trivial
            plan = probabilistic_tp_plan(unfolded, view)
            members.append(
                _PlanMember(
                    tag=f"{view.name}@{depth}",
                    base=view,
                    unfolded=unfolded,
                    compensation_depth=depth,
                    probability_computable=plan is not None,
                )
            )
    return members


def tpi_rewrite(
    q: TreePattern,
    views: Sequence[View],
    extensions: Extensions,
    interleaving_limit: Optional[int] = None,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
    anchored_store: bool = True,
) -> Optional[TPIRewritePlan]:
    """``TPIrewrite`` (Figure 7): the canonical probabilistic TP∩-rewriting.

    Returns ``None`` when either the canonical deterministic plan is not a
    rewriting of ``q`` or the ``S(q, V″)`` system does not determine
    ``Pr(n ∈ q(P))``.  ``backend`` parameterizes the numeric domain of the
    returned plan's ``f_r`` and of its member oracles (compensated members
    route their §4 evaluations through per-extension query sessions).
    """
    members = canonical_plan_views(q, views)
    if not members:
        return None
    # Deterministic step: unfold(q_r) ≡ q over the V′ components.
    unfolded = [member.unfolded for member in members]
    if not tpi_equivalent_tp(unfolded, q, limit=interleaving_limit):
        return None
    # Probability step: S(q, V″).
    computable = [m for m in members if m.probability_computable]
    tagged = [(m.tag, m.unfolded) for m in computable]
    system = decompose_views(q, tagged)
    certificate = system.certificate()
    if certificate is None:
        return None
    oracles = {}
    for member in computable:
        oracles[member.tag] = _member_oracle(
            member, extensions, backend, store, anchored_store
        )
    exponents = {tag: coefficient for tag, coefficient in certificate.items()}

    def candidates() -> list[int]:
        common: Optional[set[int]] = None
        for member in members:
            ids = _member_candidates(member, extensions)
            common = ids if common is None else common & ids
        return sorted(common or set())

    return TPIRewritePlan(
        query=q,
        names=[m.tag for m in computable],
        oracles=oracles,
        exponents=exponents,
        candidate_source=candidates,
        description=(
            "TPIrewrite canonical plan over "
            + ", ".join(m.tag for m in members)
        ),
        backend=backend,
    )


def _member_oracle(
    member: _PlanMember,
    extensions: Extensions,
    backend: BackendLike = "exact",
    store: Optional[MemoStore] = None,
    anchored_store: bool = True,
):
    """``Pr(n ∈ u_i(P))`` from the member's base-view extension only."""
    extension = extensions[member.base.name]
    if member.compensation_depth is None:
        return _selection_oracle(extension, backend)
    plan = probabilistic_tp_plan(
        member.unfolded, member.base, backend=backend, store=store,
        anchored_store=anchored_store,
    )
    if plan is None:  # pragma: no cover - guarded by membership in V″
        raise RewritingError(f"member {member.tag} is not probability-computable")

    def oracle(node_id: int):
        return plan.fr(extension, node_id)

    return oracle


def _member_candidates(member: _PlanMember, extensions: Extensions) -> set[int]:
    """Node Ids the member's deterministic part can select, off its extension."""
    extension = extensions[member.base.name]
    if member.compensation_depth is None:
        return set(extension.selection)
    from ..views.view import doc_label
    from ..tp.parser import parse_pattern

    head = parse_pattern(
        f"{doc_label(member.base.name)}/{member.base.pattern.out.label}"
    )
    qr = ops.compensation(head, ops.suffix(member.unfolded, member.base.pattern.main_branch_length()))
    world = extension.pdocument.max_world()
    selected = evaluate_deterministic(qr, world)
    # Selected copies resolve to original Ids through the provenance
    # table (the marker-free form of the paper's Id(n) readout).
    return extension.provenance.originals_of(selected)
