#!/usr/bin/env python3
"""The paper's running scenario (Figures 1–4, Examples 6/13/15) end to end.

A probabilistic personnel database answers bonus queries from *cached view
extensions* instead of the base p-document:

* ``q_BON``  (bonuses on the Laptop project) is answered from ``v2_BON``
  (all bonuses) by a *restricted* single-view rewriting — Example 13;
* ``q_RBON`` (Rick's Laptop bonuses) has no single-view rewriting over
  ``v2_BON`` but is answered by *intersecting* ``v1_BON`` with a compensated
  ``v2_BON`` under Theorem 3's product formula — Example 15.

Run:  python examples/personnel_caching.py
"""

from repro import View, probabilistic_extension, prob_str, query_answer
from repro.rewrite import probabilistic_tp_plan, theorem3_plan
from repro.rewrite.multi_view import Theorem3Member
from repro.workloads import paper


def show(title: str, answer: dict) -> None:
    print(f"  {title}")
    for node_id, probability in sorted(answer.items()):
        print(f"    node n{node_id}: Pr = {prob_str(probability)}")


def main() -> None:
    p_per = paper.p_per()
    v1 = View("v1BON", paper.v1_bon())   # Rick's bonuses
    v2 = View("v2BON", paper.v2_bon())   # all bonuses

    print("Materializing the two cached views over P̂_PER ...")
    cache = {
        v1.name: probabilistic_extension(p_per, v1),
        v2.name: probabilistic_extension(p_per, v2),
    }
    for name, ext in cache.items():
        pairs = ", ".join(
            f"(n{n}, {prob_str(pr)})" for n, pr in sorted(ext.selection.items())
        )
        print(f"  {name}: {{{pairs}}}")

    # ------------------------------------------------------------------
    # Example 13: q_BON through v2_BON (restricted rewriting, Theorem 1)
    # ------------------------------------------------------------------
    q_bon = paper.q_bon()
    print(f"\n[Example 13] {q_bon.xpath()}")
    plan = probabilistic_tp_plan(q_bon, v2)
    assert plan is not None and plan.restricted
    answer = plan.evaluate(cache[v2.name])
    show("answer from the v2BON extension (restricted plan):", answer)
    assert answer == query_answer(p_per, q_bon)
    print("    == direct evaluation, as Theorem 1 guarantees")

    # ------------------------------------------------------------------
    # Example 15: q_RBON through v1_BON ∩ comp(v2_BON, bonus[laptop])
    # ------------------------------------------------------------------
    q_rbon = paper.q_rbon()
    print(f"\n[Example 15] {q_rbon.xpath()}")
    assert probabilistic_tp_plan(q_rbon, v2) is None  # v2BON alone: impossible
    print("  no single-view rewriting over v2BON (it loses [name/Rick]) ...")
    members = [
        Theorem3Member("v1BON", v1),
        Theorem3Member("v", v2, compensation_depth=3),
    ]
    product_plan = theorem3_plan(q_rbon, members, cache)
    assert product_plan is not None
    answer = product_plan.evaluate()
    show("answer from the intersection plan (Theorem 3):", answer)
    assert answer == query_answer(p_per, q_rbon)
    print("    == direct evaluation: 0.75 × 0.9 ÷ 1 = 0.675 exactly")

    # ------------------------------------------------------------------
    # Examples 11: why some plans must be refused
    # ------------------------------------------------------------------
    q11, v11 = paper.example11_query(), paper.example11_view()
    print(f"\n[Example 11] {q11.xpath()} over view {v11.xpath()}")
    refused = probabilistic_tp_plan(q11, View("v", v11))
    assert refused is None
    print(
        "  TPrewrite refuses: the view's [.//c] interacts with the\n"
        "  compensation's [c] (not c-independent), and indeed P̂1/P̂2 have\n"
        "  identical extensions but different true answers (0.325 vs 0.5)."
    )


if __name__ == "__main__":
    main()
