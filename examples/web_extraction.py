#!/usr/bin/env python3
"""Probabilistic XML from web information extraction (the paper's §1 motivation).

An extractor harvested company/product/price facts from the Web with
confidence scores: competing extractions become ``mux`` choices, independent
detections become ``ind`` edges.  A downstream dashboard repeatedly asks
price queries; instead of re-running the (expensive) probabilistic
evaluation over the raw extraction tree, it materializes one broad view and
answers every dashboard query from the view extension — with exact
probabilities, courtesy of TPrewrite.

Run:  python examples/web_extraction.py
"""

import random

from repro import (
    View,
    ind,
    mux,
    ordinary,
    parse_pattern,
    pdoc,
    probabilistic_extension,
    prob_str,
    query_answer,
)
from repro.rewrite import tp_rewrite


def build_extraction_pdocument(companies: int, seed: int = 7):
    """Synthesize an extraction result tree with per-fact confidences."""
    rng = random.Random(seed)
    ids = iter(range(1, 100_000))
    company_nodes = []
    for c in range(companies):
        products = []
        for p in range(rng.randint(1, 3)):
            # Two scraped price candidates, mutually exclusive.
            price_low = ordinary(next(ids), f"{rng.randint(10, 49)}usd")
            price_high = ordinary(next(ids), f"{rng.randint(50, 99)}usd")
            price = mux(next(ids), (price_low, "0.6"), (price_high, "0.3"))
            # A "discontinued" flag detected independently with low confidence.
            flag = ind(next(ids), (ordinary(next(ids), "discontinued"), "0.2"))
            products.append(
                ordinary(next(ids), "product",
                         ordinary(next(ids), "name",
                                  ordinary(next(ids), f"widget{c}_{p}")),
                         ordinary(next(ids), "price", price),
                         flag))
        company_nodes.append(
            ordinary(next(ids), "company",
                     ordinary(next(ids), "name", ordinary(next(ids), f"corp{c}")),
                     *products))
    return pdoc(ordinary(0, "extractions", *company_nodes))


def main() -> None:
    p = build_extraction_pdocument(companies=3)
    print(f"Extraction p-document: {p.size()} nodes "
          f"({len(p.distributional_nodes())} distributional)")

    # One broad materialized view: every extracted product.
    view = View("products", parse_pattern("extractions/company/product"))
    extension = probabilistic_extension(p, view)
    print(f"Materialized view {view!r}: {len(extension.selection)} result subtrees")

    dashboard_queries = [
        "extractions/company/product[discontinued]",
        "extractions/company/product[price]",
        "extractions//product[name]",
    ]
    for text in dashboard_queries:
        q = parse_pattern(text)
        plans = tp_rewrite(q, [view])
        print(f"\nDashboard query {text}")
        if not plans:
            print("  no probabilistic rewriting over the cached view")
            continue
        plan = plans[0]
        answer = plan.evaluate(extension)
        direct = query_answer(p, q)
        assert answer == direct, "rewriting must be exact"
        kind = "restricted" if plan.restricted else "unrestricted"
        print(f"  answered from the cache ({kind} plan), {len(answer)} results:")
        for node_id, probability in sorted(answer.items())[:5]:
            print(f"    product node {node_id}: Pr = {prob_str(probability)}")
        if len(answer) > 5:
            print(f"    ... and {len(answer) - 5} more")

    print("\nEvery dashboard answer was recovered from the view extension "
          "alone, matching direct evaluation exactly.")


if __name__ == "__main__":
    main()
