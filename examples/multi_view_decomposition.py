#!/usr/bin/env python3
"""Example 16 live: answering through *probabilistically dependent* views.

Four cached views each cover two of the query's three predicates — no pair
is c-independent, so Theorem 3's simple product is off the table.  The
``S(q, V)`` linear system over d-view decompositions (§5.3) still determines
``Pr(n ∈ q(P))`` uniquely: the certificate is (1/2, 1/2, 1/2, −1/2), i.e.

    Pr(n ∈ q(P)) = sqrt( v1(n) · v2(n) · v3(n) / v4(n) )

which the library evaluates with exact rational square roots.

Run:  python examples/multi_view_decomposition.py
"""

from repro import (
    View,
    ind,
    ordinary,
    pdoc,
    probabilistic_extension,
    prob_str,
    query_answer,
)
from repro.rewrite import c_independent, decompose_views, tpi_rewrite
from repro.workloads import paper


def main() -> None:
    q = paper.example16_query()
    views = [View(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
    print("query q =", q.xpath())
    for view in views:
        print(f"  cached view {view.name} = {view.pattern.xpath()}")

    print("\nPairwise c-independence among v1..v3:")
    for i in range(3):
        for j in range(i + 1, 3):
            verdict = c_independent(views[i].pattern, views[j].pattern)
            print(f"  {views[i].name} ⊥ {views[j].name}? {verdict}")

    print("\nBuilding the S(q, V) system over d-view decompositions ...")
    system = decompose_views(q, [(v.name, v.pattern) for v in views])
    certificate = system.certificate()
    assert certificate is not None
    print("  certificate:", {k: str(v) for k, v in certificate.items()})

    # A document with independent gadgets for the three predicates.
    p = pdoc(ordinary(0, "a",
                      ind(10, (ordinary(11, "1"), "0.9")),
                      ordinary(1, "b",
                               ind(20, (ordinary(21, "2"), "0.8")),
                               ordinary(2, "c",
                                        ind(30, (ordinary(31, "3"), "0.7")),
                                        ordinary(3, "d")))))
    extensions = {v.name: probabilistic_extension(p, v) for v in views}
    print("\nview result probabilities for the answer node n3:")
    for v in views:
        print(f"  Pr(n3 ∈ {v.name}) = {prob_str(extensions[v.name].selection[3])}")

    plan = tpi_rewrite(q, views, extensions)
    assert plan is not None
    answer = plan.evaluate()
    direct = query_answer(p, q)
    print("\nanswer via the S(q,V) plan:",
          {n: prob_str(pr) for n, pr in answer.items()})
    print("direct evaluation:         ",
          {n: prob_str(pr) for n, pr in direct.items()})
    assert answer == direct
    print("\nExact: sqrt(0.63 × 0.56 × 0.72 / 1.0) = 0.504 = 0.9 · 0.8 · 0.7")


if __name__ == "__main__":
    main()
