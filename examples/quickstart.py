#!/usr/bin/env python3
"""Quickstart: probabilistic XML, queries, views, and rewriting in 60 lines.

Builds a tiny probabilistic product-catalog document, evaluates a tree-
pattern query directly, then answers the *same* query using only a cached
view extension — and checks the two answers agree exactly.

Run:  python examples/quickstart.py
"""

from repro import (
    View,
    ind,
    mux,
    ordinary,
    parse_pattern,
    pdoc,
    probabilistic_extension,
    prob_str,
    query_answer,
)
from repro.rewrite import probabilistic_tp_plan


def main() -> None:
    # A catalog whose reviews were extracted with confidences: the `mux`
    # says the sentiment is positive (0.7) XOR negative (0.2); the `ind`
    # says a discount badge was detected with confidence 0.6.
    catalog = pdoc(
        ordinary(1, "catalog",
                 ordinary(2, "product",
                          ordinary(3, "name", ordinary(4, "Laptop-X")),
                          ordinary(5, "review",
                                   mux(6,
                                       (ordinary(7, "positive"), "0.7"),
                                       (ordinary(8, "negative"), "0.2"))),
                          ind(9, (ordinary(10, "discount"), "0.6")))))

    # The query: products with a positive review.
    q = parse_pattern("catalog/product[review/positive]")
    direct = query_answer(catalog, q)
    print("Direct evaluation of", q.xpath())
    for node_id, probability in direct.items():
        print(f"  node {node_id}: Pr = {prob_str(probability)}")

    # A cached view: all products (no predicate). The rewriting machinery
    # proves the query can be answered from the view alone and constructs
    # the probability function f_r.
    view = View("all_products", parse_pattern("catalog/product"))
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None, "TPrewrite found no probabilistic rewriting"
    print("\nRewriting:", plan.describe())

    extension = probabilistic_extension(catalog, view)
    via_view = plan.evaluate(extension)
    print("Answer recovered from the view extension only:")
    for node_id, probability in via_view.items():
        print(f"  node {node_id}: Pr = {prob_str(probability)}")

    assert via_view == direct, "rewriting must be exact"
    print("\nExact match between direct evaluation and the view-based plan.")


if __name__ == "__main__":
    main()
