"""Churn benchmark: spine-only maintenance vs whole-document invalidation.

Two arms replay the *identical* mixed read/write stream
(``workloads/synthetic.churn_workload`` with a skewed hot-subtree
mutation distribution) against one long-lived ``QuerySession``:

* ``baseline`` — every mutation calls ``mutate(full=True)``
  (``mark_all_mutated()``): the pre-spine behaviour, dropping every
  cached index, candidate set and stacked plan, so the first batch
  after each write rebuilds them all from scratch;
* ``spine``    — every mutation calls ``mutate()``
  (``mark_mutated(node)``): O(depth) splicing keeps untouched sibling
  subtrees warm, and probability-only writes keep the maximal world —
  candidate sets and stacked array plans survive outright.

Both arms are seeded identically and replayed the same number of times,
so their documents drift in lockstep and their answers must agree —
exactly on the ``exact`` backend, within ``1e-9`` on ``array``.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_churn.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_churn.py --quick   # CI smoke

which writes ``BENCH_churn.json`` at the repository root.  The full run
asserts the ISSUE-7 acceptance bar: warm mutate-then-query ≥ 5× over
full invalidation at 64 persons on the best backend, spine answers ≡
full-invalidation answers, and session/store counters showing memo
entries and plans actually survived the writes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

from common import best_of as _best_of, write_report

from repro.prob import QuerySession, query_answer
from repro.store import InMemoryStore
from repro.workloads.synthetic import churn_workload

SIZES = [8, 16]
FULL_SIZES = [8, 16, 32, 64]
PROJECTS = 4
ROUNDS = 14
WRITE_RATIO = 0.6
HOT_FRACTION = 0.25
SKEW = 0.9
BUMP_SHARE = 0.15
TOLERANCE = 1e-9
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_churn.json"


def _workload(persons: int):
    return churn_workload(
        persons,
        projects=PROJECTS,
        rounds=ROUNDS,
        seed=persons,
        write_ratio=WRITE_RATIO,
        hot_fraction=HOT_FRACTION,
        skew=SKEW,
        bump_share=BUMP_SHARE,
    )


def replay(steps, session, full: bool = False):
    """One pass over the churn stream: mutate-then-query, interleaved."""
    answers = None
    for kind, payload in steps:
        if kind == "mutate":
            payload(full=full)
        else:
            answers = session.answer_many(payload)
    return answers


def _queries(steps):
    return next(payload for kind, payload in steps if kind == "queries")


def _check_current(p, session, queries, tolerance=None):
    """Session answers over the drifted document ≡ fresh evaluation."""
    got = session.answer_many(queries)
    expected = [query_answer(p, q) for q in queries]
    if tolerance is None:
        assert got == expected
        return 0.0
    worst = 0.0
    for d_got, d_exact in zip(got, expected):
        for node_id in set(d_got) | set(d_exact):
            worst = max(
                worst,
                abs(
                    float(d_got.get(node_id, 0.0))
                    - float(d_exact.get(node_id, 0))
                ),
            )
    assert worst < tolerance
    return worst


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§6 cost model — churn, full-invalidation baseline")
@pytest.mark.parametrize("persons", SIZES)
def test_churn_baseline_full_invalidation(benchmark, report, persons):
    p, steps = _workload(persons)
    session = QuerySession(p)
    replay(steps, session, full=True)  # warm outside the timer
    benchmark(replay, steps, session, True)
    _check_current(p, session, _queries(steps))
    assert session.stats.spine_refreshes == 0
    report.append(
        f"churn persons={persons}: every write drops all cached state"
    )


@pytest.mark.paper("§6 cost model — churn, spine-only maintenance")
@pytest.mark.parametrize("persons", SIZES)
def test_churn_spine_only(benchmark, report, persons):
    p, steps = _workload(persons)
    session = QuerySession(p)
    replay(steps, session)
    benchmark(replay, steps, session, False)
    _check_current(p, session, _queries(steps))
    assert session.stats.spine_refreshes > 0
    assert session.stats.invalidations == 0
    report.append(
        f"churn persons={persons}: O(depth) splices keep siblings warm"
    )


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def _arm(persons: int, backend: str, full: bool, repeats: int):
    """Warm a session on the stream, then time ``repeats`` replays."""
    p, steps = _workload(persons)
    store = InMemoryStore() if backend == "exact" else None
    session = QuerySession(p, backend=backend, store=store)
    replay(steps, session, full)
    elapsed = _best_of(repeats, replay, steps, session, full)
    return p, session, steps, elapsed


def run(sizes: list[int], repeats: int = 3, backends=("exact", "array")):
    results = []
    for persons in sizes:
        row = {"persons": persons, "backends": {}}
        for backend in backends:
            tolerance = None if backend == "exact" else TOLERANCE
            p_base, s_base, steps, base_s = _arm(
                persons, backend, True, repeats
            )
            p_spine, s_spine, _, spine_s = _arm(
                persons, backend, False, repeats
            )
            queries = _queries(steps)
            # identically-seeded arms drift identically: answers agree
            error = _check_current(p_base, s_base, queries, tolerance)
            error = max(
                error, _check_current(p_spine, s_spine, queries, tolerance)
            )
            base_answers = s_base.answer_many(queries)
            spine_answers = s_spine.answer_many(queries)
            if tolerance is None:
                assert base_answers == spine_answers
            column = {
                "baseline_full_invalidation_s": base_s,
                "spine_only_s": spine_s,
                "speedup_spine_vs_baseline": base_s / spine_s,
                "max_abs_error_vs_exact": error,
                "spine_refreshes": s_spine.stats.spine_refreshes,
                "invalidations_spine_arm": s_spine.stats.invalidations,
                "invalidations_baseline_arm": s_base.stats.invalidations,
            }
            if backend == "array":
                column["survived_plans"] = s_spine.stats.survived_plans
            if s_spine.store is not None:
                stats = s_spine.store.stats()
                column["store_spine_recomputes"] = stats["spine_recomputes"]
                column["store_survived_entries"] = stats["survived_entries"]
            row["backends"][backend] = column
            row["pdocument_size"] = p_spine.size()
        row["best_speedup"] = max(
            column["speedup_spine_vs_baseline"]
            for column in row["backends"].values()
        )
        results.append(row)
    mutations = sum(
        1 for kind, _ in _workload(sizes[-1])[1] if kind == "mutate"
    )
    return {
        "benchmark": "bench_churn",
        "workload": "workloads/synthetic churn_workload "
        f"(mixed stream, rounds={ROUNDS}, write_ratio={WRITE_RATIO}, "
        f"hot_fraction={HOT_FRACTION}, skew={SKEW}, "
        f"bump_share={BUMP_SHARE}; "
        f"{mutations} writes at the largest size)",
        "strategies": ["baseline_full_invalidation", "spine_only"],
        "backends": list(backends),
        "repeats": repeats,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    sizes = SIZES if args.quick else FULL_SIZES
    report = run(sizes, repeats=1 if args.quick else 3)
    write_report(args.output, report)
    largest = report["results"][-1]
    print(f"wrote {args.output}")
    for backend, column in largest["backends"].items():
        print(
            f"persons={largest['persons']} {backend}: "
            f"spine vs full invalidation "
            f"×{column['speedup_spine_vs_baseline']:.1f} "
            f"({column['spine_refreshes']} spine refreshes, "
            f"max error {column['max_abs_error_vs_exact']:.2e})"
        )
    if largest["best_speedup"] <= 1.0:
        print("FAIL: spine-only not faster than full invalidation",
              file=sys.stderr)
        return 1
    array = largest["backends"].get("array")
    if array is not None and array.get("survived_plans", 0) <= 0:
        print("FAIL: no stacked plans survived the churn stream",
              file=sys.stderr)
        return 1
    if not args.quick:
        if largest["best_speedup"] < 5.0:
            print("FAIL: spine-only speedup below the 5x acceptance bar",
                  file=sys.stderr)
            return 1
        if any(
            column["max_abs_error_vs_exact"] > TOLERANCE
            for column in largest["backends"].values()
        ):
            print("FAIL: churn answers outside the 1e-9 exactness bar",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
