"""E10–E12, E14: the complexity claims, measured.

* Proposition 4: ``TPrewrite`` is PTime in |q| and |V| — near-linear series.
* Proposition 6 / Corollary 3: ``TPIrewrite`` stays fast on extended
  skeletons; the equivalence-test step explodes on the adversarial family.
* Corollary 2: the number of interleavings grows as k! on ``a//x_i//z``.
* [22] (used throughout): probabilistic evaluation is PTime in data size and
  exponential in query size.
"""

import pytest

from repro.prob import query_answer
from repro.pxml.builder import ind, ordinary, pdoc
from repro.rewrite import tp_rewrite
from repro.tp.parser import parse_pattern
from repro.tpi import interleavings, is_extended_skeleton, tpi_equivalent_tp
from repro.workloads.synthetic import (
    adversarial_intersection,
    chain_query,
    prefix_views,
)


# ----------------------------------------------------------------------
# E10: TPrewrite scaling (Proposition 4)
# ----------------------------------------------------------------------
@pytest.mark.paper("Proposition 4: TPrewrite is PTime")
@pytest.mark.parametrize("length", [4, 8, 12, 16])
def test_tprewrite_scaling_query_size(benchmark, report, length):
    q = chain_query(length)
    views = prefix_views(q)
    plans = benchmark(tp_rewrite, q, views)
    assert len(plans) == length  # every prefix view rewrites a chain query
    report.append(
        f"E10 TPrewrite |mb(q)|={length}, |V|={length}: {len(plans)} plans "
        "(series should grow polynomially — see benchmark table)"
    )


# ----------------------------------------------------------------------
# E11: TPIrewrite-style equivalence on extended skeletons vs adversarial
# ----------------------------------------------------------------------
@pytest.mark.paper("Corollary 3: extended skeletons stay tractable")
@pytest.mark.parametrize("k", [2, 3, 4])
def test_equivalence_on_extended_skeletons(benchmark, report, k):
    # /-separated skeleton views: coalescing is forced, 1 interleaving.
    q = chain_query(k + 1, predicate_every=1)
    components = [q, q]
    assert all(is_extended_skeleton(c) for c in components)
    result = benchmark(tpi_equivalent_tp, components, q)
    assert result
    report.append(f"E11 skeleton equivalence k={k}: single interleaving, fast")


@pytest.mark.paper("Corollary 2: equivalence blows up off the fragment")
@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_equivalence_on_adversarial_family(benchmark, report, k):
    components = adversarial_intersection(k)
    target = parse_pattern(
        "a//" + "//".join(f"x{i}" for i in range(1, k + 1)) + "//z"
    )
    result = benchmark(tpi_equivalent_tp, components, target)
    assert not result  # only one ordering is contained in the target
    report.append(
        f"E12 adversarial equivalence k={k}: k! interleavings dominate runtime"
    )


# ----------------------------------------------------------------------
# E12: interleaving counts (the k! series itself)
# ----------------------------------------------------------------------
@pytest.mark.paper("§5.1: interleavings are exponentially many")
@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_interleaving_blowup(benchmark, report, k):
    import math

    components = adversarial_intersection(k)
    result = benchmark(interleavings, components)
    assert len(result) == math.factorial(k)
    report.append(f"E12 interleavings k={k}: {len(result)} = {k}!")


# ----------------------------------------------------------------------
# E14: probabilistic evaluation — PTime in data, exponential in query
# ----------------------------------------------------------------------
def _chain_pdocument(depth: int):
    """A deep chain a/m/m/.../m with an ind-gated target at the bottom."""
    bottom = ordinary(depth + 1, "t")
    current = ind(depth + 2, (bottom, "0.5"))
    node = ordinary(depth, "m")
    node.add_child(current)
    for i in range(depth - 1, 0, -1):
        parent = ordinary(i, "m", ind(10_000 + i, (ordinary(20_000 + i, "t"), "0.5")))
        parent.add_child(node)
        node = parent
    return pdoc(ordinary(0, "a", node))


@pytest.mark.paper("[22]: evaluation is PTime in data size")
@pytest.mark.parametrize("depth", [8, 16, 32, 64])
def test_eval_data_scaling(benchmark, report, depth):
    p = _chain_pdocument(depth)
    q = parse_pattern("a//m[t]//t")
    answer = benchmark(query_answer, p, q)
    assert answer  # the bottom target is reachable with positive probability
    report.append(
        f"E14 evaluation at |P̂|~{p.size()}: see benchmark table "
        "(series should be polynomial in depth)"
    )


@pytest.mark.paper("[22]: evaluation is exponential in query size")
@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_eval_query_scaling(benchmark, report, width):
    children = [
        ind(100 + i, (ordinary(200 + i, f"c{i}", ordinary(300 + i, "t")), "0.5"))
        for i in range(width)
    ]
    p = pdoc(ordinary(0, "a", ordinary(1, "m", *children)))
    predicates = "".join(f"[.//c{i}[t]]" for i in range(width))
    q = parse_pattern(f"a//m{predicates}")
    answer = benchmark(query_answer, p, q)
    from fractions import Fraction

    assert answer == {1: Fraction(1, 2) ** width}
    report.append(f"E14 query width={width}: goal-set count grows with |q|")
