"""Shared helpers for the benchmark harness.

Every benchmark *asserts* the paper's expected value (or expected behaviour)
and then times the computation, so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction harness: the table printed by pytest-benchmark
is the measured side of EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper(artifact): links a benchmark to a paper artifact"
    )


@pytest.fixture(scope="session")
def report(request):
    """Collects paper-vs-measured lines; printed at the end of the session."""
    lines: list[str] = []
    yield lines
    if lines:
        terminal = request.config.pluginmanager.get_plugin("terminalreporter")
        if terminal is not None:
            terminal.write_line("")
            terminal.write_line("=== paper-vs-measured ===")
            for line in lines:
                terminal.write_line(line)
