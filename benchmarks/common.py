"""Shared timing and JSON-report helpers for the ``bench_*`` emitters.

Every standalone benchmark used to carry its own copy of the best-of-N
timing loop, the exactness comparator and the report writer; they now
share this module.  :func:`write_report` additionally embeds a snapshot
of the process metrics registry (:mod:`repro.obs.registry`) under the
``"telemetry"`` key, so each ``BENCH_*.json`` records the session /
store / backend counters that produced its numbers.

Importable both as a script sibling (``python benchmarks/bench_x.py``
puts this directory on ``sys.path``) and under pytest (the
``benchmarks/`` conftest does the same).
"""

from __future__ import annotations

import json
import time
from pathlib import Path


def best_of(repeats: int, fn, *args) -> float:
    """Minimum wall time of ``fn(*args)`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def max_abs_error(exact: list, got: list) -> float:
    """Worst ``|got - exact|`` over aligned lists of answer dicts."""
    worst = 0.0
    for d_exact, d_got in zip(exact, got):
        for node_id in set(d_exact) | set(d_got):
            error = abs(
                float(d_got.get(node_id, 0.0))
                - float(d_exact.get(node_id, 0))
            )
            worst = max(worst, error)
    return worst


def telemetry_snapshot() -> dict:
    """Flat ``{metric{labels}: value}`` view of the process registry."""
    from repro.obs import get_registry

    return get_registry().snapshot()


def write_report(path: Path, report: dict) -> None:
    """Attach the telemetry snapshot and write ``report`` as JSON."""
    report.setdefault("telemetry", telemetry_snapshot())
    Path(path).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
