"""Telemetry-overhead micro-benchmark: the disabled path must be free.

The ISSUE-8 guard: with tracing *disabled* (the default), the telemetry
layer may cost at most **2%** on the warm ``bench_batch`` hot path.  Two
measurements establish it:

* ``disabled_overhead_fraction`` — the *measured* cost of the no-op
  span fast path on the real workload: the per-call cost of a disabled
  ``span(...)`` (timed in a tight loop) times the number of spans one
  warm batch emits (counted under tracing), divided by the warm batch
  wall time.  Spans are per pass/phase, never per node, so this is a
  handful of dict-free calls against milliseconds of work.
* ``enabled_overhead_fraction`` — what turning tracing *on* costs on
  the same warm batch (not subject to the 2% bar; reported so the docs
  can quote the price of a profiled run).

Run standalone to emit the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_obs.py           # full
    PYTHONPATH=src python benchmarks/bench_obs.py --quick   # CI smoke

which writes ``BENCH_obs.json`` at the repository root and exits
non-zero when the disabled-path bar is missed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from common import best_of, write_report

from repro.obs import (
    disable_tracing,
    enable_tracing,
    span,
    take_spans,
    tracing_enabled,
)
from repro.prob import QuerySession
from repro.workloads.synthetic import batch_workload

PERSONS = 32
QUICK_PERSONS = 12
PROJECTS = 8
OVERHEAD_BAR = 0.02
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _count_spans(spans) -> int:
    total = 0
    stack = list(spans)
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node.children)
    return total


def _null_span_cost_s(calls: int = 200_000) -> float:
    """Per-call wall cost of a disabled span at a realistic call site."""
    assert not tracing_enabled()
    start = time.perf_counter()
    for index in range(calls):
        sp = span("bench.null", queries=index, backend="fast")
        if sp:  # pragma: no cover - disabled, never taken
            sp.set("unreachable", True)
        with sp:
            pass
    return (time.perf_counter() - start) / calls


def run(persons: int, repeats: int = 5) -> dict:
    p, queries = batch_workload(persons=persons, projects=PROJECTS, seed=persons)
    session = QuerySession(p, backend="fast")
    baseline = session.answer_many(queries)  # warm the memo, untimed

    disable_tracing()
    warm_disabled_s = best_of(repeats, session.answer_many, queries)

    enable_tracing()
    try:
        traced = session.answer_many(queries)
        spans_per_batch = _count_spans(take_spans())
        warm_enabled_s = best_of(repeats, session.answer_many, queries)
    finally:
        disable_tracing()
    assert traced == baseline  # tracing never changes answers

    null_span_s = _null_span_cost_s()
    disabled_overhead = spans_per_batch * null_span_s / warm_disabled_s
    return {
        "benchmark": "bench_obs",
        "workload": "workloads/synthetic batch_workload "
        f"({PROJECTS} per-project queries, warm fast-backend session)",
        "persons": persons,
        "queries": len(queries),
        "repeats": repeats,
        "warm_disabled_s": warm_disabled_s,
        "warm_enabled_s": warm_enabled_s,
        "spans_per_batch": spans_per_batch,
        "null_span_call_s": null_span_s,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": max(
            0.0, warm_enabled_s / warm_disabled_s - 1.0
        ),
        "overhead_bar": OVERHEAD_BAR,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small document / fewer repeats (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(
        QUICK_PERSONS if args.quick else PERSONS,
        repeats=3 if args.quick else 5,
    )
    write_report(args.output, report)
    print(f"wrote {args.output}")
    print(
        f"spans/batch={report['spans_per_batch']}, "
        f"null span {report['null_span_call_s'] * 1e9:.0f} ns, "
        f"disabled overhead {report['disabled_overhead_fraction']:.4%} "
        f"(bar {OVERHEAD_BAR:.0%}), "
        f"enabled overhead {report['enabled_overhead_fraction']:.1%}"
    )
    if report["disabled_overhead_fraction"] >= OVERHEAD_BAR:
        print(
            "FAIL: disabled telemetry exceeds the "
            f"{OVERHEAD_BAR:.0%} warm-batch overhead bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
