"""Store benchmark: cold vs warm-in-process vs warm-from-disk sessions.

Three strategies answer the same 8-query workload (one personnel query
per project; ``workloads/synthetic.batch_workload``) at growing document
sizes:

* ``cold``              — a fresh ``QuerySession`` over a fresh, empty
  ``InMemoryStore`` (the default production configuration on first use);
* ``warm_in_process``   — the same session re-answers the batch, with
  every structural entry already resident in memory;
* ``warm_from_disk``    — a *restarted worker*: a previous run populated
  a ``SqliteStore`` file, then a fresh store instance over that file and
  a fresh session answer the batch, preloading the persisted entries;
* ``warm_disk_perkey`` / ``warm_disk_bulk`` — the ISSUE-10 pair: the
  same restarted worker in *lazy* mode (``preload=False``, the shared
  huge-store regime where rows are fetched on demand), probing one key
  per subtree (``bulk_store=False``) versus the probe-plan prefetch
  (the ``prefers_bulk`` default).  A *round-trips* column reads the
  ``repro_store_sqlite_statements_total`` telemetry series around each
  pass: the per-key arm issues O(probed keys) SQL statements, the bulk
  arm a handful of chunked bulk calls, with bit-identical answers and
  store accounting.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_store.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_store.py --quick   # CI smoke

which writes ``BENCH_store.json`` at the repository root.  The full run
asserts the ISSUE-3 acceptance bar: warm-from-disk startup beats cold
evaluation on the 8-query workload at 64 persons.  Both runs also assert
the structural-sharing bar (in a document holding isomorphic subtrees,
the store is hit already during the first cold pass) and the ISSUE-10
bar: the bulk arm answers the lazy disk-warm batch in a small constant
number of SQL statements where the per-key arm scales with the probed
key count.  Under pytest the same strategies run through
pytest-benchmark with exactness asserted against sequential evaluation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import pytest

from common import best_of as _best_of, write_report

from repro.prob import QuerySession, query_answer
from repro.pxml import ind, mux, ordinary, pdoc
from repro.store import InMemoryStore, SqliteStore
from repro.tp import parse_pattern
from repro.workloads.synthetic import batch_workload

SIZES = [8, 16]
FULL_SIZES = [8, 16, 32, 64]
PROJECTS = 8
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _setup(persons: int):
    return batch_workload(persons=persons, projects=PROJECTS, seed=persons)


def cold_answers(p, queries):
    """Fresh session, fresh in-memory store: the first-ever evaluation."""
    return QuerySession(p, store=InMemoryStore()).answer_many(queries)


def warm_disk_answers(p, queries, path):
    """A restarted worker: fresh session over a populated store file."""
    store = SqliteStore(path)
    try:
        return QuerySession(p, store=store).answer_many(queries)
    finally:
        store.close()


def _populate(p, queries, path):
    store = SqliteStore(path)
    QuerySession(p, store=store).answer_many(queries)
    store.close()


def _statement_count() -> int:
    from repro.obs import get_registry

    return get_registry().snapshot().get(
        "repro_store_sqlite_statements_total", 0
    )


def warm_disk_lazy_answers(p, queries, path, bulk):
    """A restarted worker in lazy mode, per-key (False) or bulk probing."""
    store = SqliteStore(path, preload=False)
    try:
        return QuerySession(p, store=store, bulk_store=bulk).answer_many(
            queries
        )
    finally:
        store.close()


def round_trips(p, queries, path, bulk):
    """One lazy disk-warm pass, instrumented.

    Returns ``(answers, sql_statements, keys_probed, accounting)`` where
    ``sql_statements`` is the telemetry delta of the store's statement
    counter across the pass and ``keys_probed`` its hit+miss count — the
    round-trips column of ``BENCH_store.json``.
    """
    store = SqliteStore(path, preload=False)
    try:
        before = _statement_count()
        session = QuerySession(p, store=store, bulk_store=bulk)
        answers = session.answer_many(queries)
        statements = _statement_count() - before
        stats = store.stats()
        probed = stats["hits"] + stats["misses"]
        accounting = {
            key: stats[key] for key in ("hits", "misses", "puts", "entries")
        }
    finally:
        store.close()
    return answers, statements, probed, accounting


def isomorphic_cold_hits() -> int:
    """Store hits during one cold pass over a document with twin subtrees."""

    def person(i):
        base = 100 * i
        return ordinary(
            base, "person",
            ordinary(base + 1, "name",
                     mux(base + 2, (ordinary(base + 3, "Rick"), "0.5"))),
            ordinary(base + 4, "bonus",
                     ind(base + 5,
                         (ordinary(base + 6, "project0",
                                   ordinary(base + 7, "42")), "0.8"))),
        )

    p = pdoc(ordinary(1, "IT-personnel", person(1), person(2)))
    q = parse_pattern("IT-personnel//person[name/Rick]/bonus")
    session = QuerySession(p)
    answer = session.answer(q)
    assert answer == query_answer(p, q)
    assert session.store is not None
    return session.store.stats()["hits"]


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§6 cost model — cold store-backed session")
@pytest.mark.parametrize("persons", SIZES)
def test_store_cold(benchmark, report, persons):
    p, queries = _setup(persons)
    answers = benchmark(cold_answers, p, queries)
    assert answers == [query_answer(p, q) for q in queries]
    report.append(f"store persons={persons}: cold session + empty store")


@pytest.mark.paper("§6 cost model — warm-in-process store")
@pytest.mark.parametrize("persons", SIZES)
def test_store_warm_in_process(benchmark, report, persons):
    p, queries = _setup(persons)
    session = QuerySession(p, store=InMemoryStore())
    session.answer_many(queries)  # warm outside the timer
    answers = benchmark(session.answer_many, queries)
    assert answers == [query_answer(p, q) for q in queries]
    report.append(f"store persons={persons}: warm in-process entries")


@pytest.mark.paper("§6 cost model — warm-from-disk store (restart)")
@pytest.mark.parametrize("persons", SIZES)
def test_store_warm_from_disk(benchmark, report, tmp_path, persons):
    p, queries = _setup(persons)
    path = tmp_path / f"memo_{persons}.db"
    _populate(p, queries, path)
    answers = benchmark(warm_disk_answers, p, queries, path)
    assert answers == [query_answer(p, q) for q in queries]
    report.append(f"store persons={persons}: restarted worker, disk entries")


def test_isomorphic_subtrees_hit_cold(report):
    hits = isomorphic_cold_hits()
    assert hits > 0
    report.append(f"store twins: {hits} structural hits on the cold pass")


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def run(sizes: list[int], store_dir: Path, repeats: int = 3) -> dict:
    results = []
    for persons in sizes:
        p, queries = _setup(persons)
        expected = [query_answer(p, q) for q in queries]
        assert cold_answers(p, queries) == expected
        path = store_dir / f"bench_store_{persons}.db"
        _populate(p, queries, path)
        assert warm_disk_answers(p, queries, path) == expected
        # ISSUE-10 round-trips column: the same lazy disk-warm pass,
        # per-key vs probe-plan — answers and store accounting must be
        # bit-identical, only the SQL statement count may differ.
        perkey = round_trips(p, queries, path, bulk=False)
        bulk = round_trips(p, queries, path, bulk=None)
        assert perkey[0] == bulk[0] == expected
        assert perkey[3] == bulk[3], (perkey[3], bulk[3])
        warm_session = QuerySession(p, store=InMemoryStore())
        warm_session.answer_many(queries)
        timings = {
            "cold_s": _best_of(repeats, cold_answers, p, queries),
            "warm_in_process_s": _best_of(
                repeats, warm_session.answer_many, queries
            ),
            "warm_from_disk_s": _best_of(
                repeats, warm_disk_answers, p, queries, path
            ),
            "warm_disk_perkey_s": _best_of(
                repeats, warm_disk_lazy_answers, p, queries, path, False
            ),
            "warm_disk_bulk_s": _best_of(
                repeats, warm_disk_lazy_answers, p, queries, path, None
            ),
        }
        probe = SqliteStore(path)
        store_gauges = probe.stats()
        probe.close()
        results.append(
            {
                "persons": persons,
                "pdocument_size": p.size(),
                "queries": len(queries),
                "answers": sum(len(a) for a in expected),
                **timings,
                "speedup_disk_vs_cold": timings["cold_s"]
                / timings["warm_from_disk_s"],
                "speedup_memory_vs_cold": timings["cold_s"]
                / timings["warm_in_process_s"],
                "speedup_bulk_vs_perkey": timings["warm_disk_perkey_s"]
                / timings["warm_disk_bulk_s"],
                "perkey_sql_statements": perkey[1],
                "bulk_sql_statements": bulk[1],
                "perkey_keys_probed": perkey[2],
                "bulk_keys_probed": bulk[2],
                "store_entries": store_gauges["entries"],
                "store_weight": store_gauges["weight"],
            }
        )
    return {
        "benchmark": "bench_store",
        "workload": "workloads/synthetic batch_workload "
        f"({PROJECTS} per-project queries, neutral profile subtrees)",
        "strategies": [
            "cold", "warm_in_process", "warm_from_disk",
            "warm_disk_perkey", "warm_disk_bulk",
        ],
        "repeats": repeats,
        "isomorphic_cold_hits": isomorphic_cold_hits(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    sizes = SIZES if args.quick else FULL_SIZES
    with tempfile.TemporaryDirectory(prefix="bench_store_") as scratch:
        report = run(sizes, Path(scratch), repeats=1 if args.quick else 3)
    write_report(args.output, report)
    largest = report["results"][-1]
    print(f"wrote {args.output}")
    print(
        f"persons={largest['persons']}: "
        f"disk-warm vs cold ×{largest['speedup_disk_vs_cold']:.1f}, "
        f"memory-warm vs cold ×{largest['speedup_memory_vs_cold']:.1f}, "
        f"{largest['store_entries']} persisted entries, "
        f"{report['isomorphic_cold_hits']} isomorphic cold hits"
    )
    print(
        f"round trips (lazy disk-warm): per-key "
        f"{largest['perkey_sql_statements']} statements / "
        f"{largest['perkey_keys_probed']} keys, bulk "
        f"{largest['bulk_sql_statements']} statements / "
        f"{largest['bulk_keys_probed']} keys, "
        f"bulk vs per-key ×{largest['speedup_bulk_vs_perkey']:.1f}"
    )
    if report["isomorphic_cold_hits"] <= 0:
        print("FAIL: isomorphic subtrees did not share work on the cold pass",
              file=sys.stderr)
        return 1
    for row in report["results"]:
        # The bulk arm must answer the pass in O(1) statements (a few
        # chunked bulk calls), not the per-key O(probed keys).
        if row["bulk_sql_statements"] >= max(8, row["perkey_sql_statements"]):
            print(
                f"FAIL: bulk arm issued {row['bulk_sql_statements']} SQL "
                f"statements (per-key arm: {row['perkey_sql_statements']}) "
                f"at persons={row['persons']}",
                file=sys.stderr,
            )
            return 1
    if not args.quick and largest["speedup_disk_vs_cold"] <= 1.0:
        print("FAIL: warm-from-disk startup not faster than cold evaluation",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
