"""E1–E4: regenerate the worked examples of §2–§3 (Figures 1–4).

Every benchmark asserts the paper's exact value before timing it, so a green
run *is* the reproduction.
"""

from fractions import Fraction

import pytest

from repro.prob import query_answer
from repro.pxml.worlds import enumerate_worlds, world_probability
from repro.tp.embedding import evaluate
from repro.views import View, probabilistic_extension
from repro.workloads import paper

F = Fraction


@pytest.mark.paper("Example 3 / Figures 1-2")
def test_example3_world_probability(benchmark, report):
    p, d = paper.p_per(), paper.d_per()
    result = benchmark(world_probability, p, d)
    assert result == F(4725, 10000)
    report.append(f"E1 Example 3: Pr(d_PER) paper=0.4725 measured={float(result)}")


@pytest.mark.paper("Example 3 / px-space")
def test_px_space_enumeration(benchmark, report):
    p = paper.p_per()
    worlds = benchmark(enumerate_worlds, p)
    total = sum(pr for _, pr in worlds)
    assert total == 1
    report.append(f"E1 px-space: {len(worlds)} worlds, total probability {total}")


@pytest.mark.paper("Example 5 / Figure 3")
def test_example5_deterministic_results(benchmark, report):
    d = paper.d_per()
    queries = {
        "q_RBON": paper.q_rbon(),
        "q_BON": paper.q_bon(),
        "v1_BON": paper.v1_bon(),
        "v2_BON": paper.v2_bon(),
    }

    def run():
        return {name: evaluate(q, d) for name, q in queries.items()}

    results = benchmark(run)
    assert results == {
        "q_RBON": {5}, "q_BON": {5}, "v1_BON": {5}, "v2_BON": {5, 7},
    }
    report.append("E2 Example 5: all four deterministic results match the paper")


@pytest.mark.paper("Example 6 / Figure 3")
def test_example6_probabilistic_results(benchmark, report):
    p = paper.p_per()
    queries = {
        "q_BON": (paper.q_bon(), {5: F(9, 10)}),
        "v1_BON": (paper.v1_bon(), {5: F(3, 4)}),
        "q_RBON": (paper.q_rbon(), {5: F(27, 40)}),
        "v2_BON": (paper.v2_bon(), {5: F(1), 7: F(1)}),
    }

    def run():
        return {name: query_answer(p, q) for name, (q, _) in queries.items()}

    results = benchmark(run)
    for name, (_, expected) in queries.items():
        assert results[name] == expected
    report.append(
        "E3 Example 6: qBON={(n5,0.9)}, v1={(n5,0.75)}, "
        "qRBON={(n5,0.675)}, v2={(n5,1),(n7,1)} — all exact"
    )


@pytest.mark.paper("Example 8 / Figure 4")
def test_example8_view_extension(benchmark, report):
    p = paper.p_per()
    view = View("v1BON", paper.v1_bon())
    ext = benchmark(probabilistic_extension, p, view)
    assert ext.pdocument.name == "doc(v1BON)"
    assert ext.selection == {5: F(3, 4)}
    report.append(
        "E4 Example 8: (P̂_PER)_v1BON has one bonus subtree at probability 0.75"
    )
