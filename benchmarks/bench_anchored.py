"""Anchored-evaluation benchmark: canonical anchor positions vs the
node-keyed baseline.

The rewrite layer's hottest traffic — Theorem 1's per-holder numerators
and Theorem 2's α-pattern conjunctions — is *anchored*: pattern nodes
pinned to concrete document nodes.  Until ISSUE 5 those evaluations
bypassed the structural memo store (anchors pin node Ids, which are
document identity, not structure) and lived in per-session node-keyed
memos, so every fresh plan, extension, restart or isomorphic twin paid
them cold.  Canonical anchor *positions* (digest-sorted rank paths)
turn them into content-addressed store entries.

Two workloads, each timed under two configurations against a shared
:class:`~repro.store.InMemoryStore`:

* ``theorem1`` — the personnel family (restricted plan: batched
  numerators + per-holder denominators);
* ``theorem2`` — nested ``b/c``-chain documents where
  ``a//b/c/b/c`` rewrites ``a//b/c/b/c//d`` unrestrictedly
  (inclusion-exclusion over overlapping holders, α-patterns with
  engine-anchored ``Id(·)`` pins);

plus a **cross-twin extension** section (ISSUE 9): Theorem-1 plans
evaluated over extensions of a document and of its Id-disjoint
isomorphic twin, in two arms — ``marker`` (the paper's literal §3.1
construction with ``Id(n)`` marker children, rebuilt locally since the
production builders no longer plant markers) and ``id_free`` (the
provenance-layer extensions).  Marker labels bake original node Ids
into the tree, so the marker twin's extension is digest-distinct and
its first pass runs cold; Id-free twin extensions are digest-identical
and the second twin's *first, cold* pass must already hit the shared
store (``twin_cold_store_hits > 0`` is asserted).

Per configuration of the two main workloads:

* ``node_keyed`` — ``anchored_store=False``: anchored entries go to
  session-local memos; a *fresh* plan over the warm shared store
  (``warm_node_keyed_s``) still recomputes every anchored DP — this is
  the pre-ISSUE-5 behaviour;
* ``anchored``  — ``anchored_store=True``: the same fresh plan starts
  warm (``warm_anchored_s``), probing anchor-position keys filled by the
  previous evaluation.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_anchored.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_anchored.py --quick   # CI smoke

which writes ``BENCH_anchored.json`` at the repository root.  The full
run asserts the ISSUE-5 acceptance bar — warm Theorem-1/2 answering at
64 persons is ≥ 2× faster than the node-keyed baseline — and the
ISSUE-6 bar: the vectorized ``array`` backend is ≥ 3× faster than
``fast`` on the resident-session anchored warm path (``warm_session_s``
backend columns), within 1e-9 of ``exact``.  Both runs also
assert the structural-sharing bar: anchored entries hit the store on the
*first cold pass* over an isomorphic twin document (same shapes,
disjoint node Ids).  Under pytest the same strategies run through
pytest-benchmark with exactness asserted against direct evaluation.
"""

from __future__ import annotations

import argparse
import itertools
import random
import sys
import time
from pathlib import Path

import pytest

from common import best_of as _best_of, write_report

from repro.prob import QuerySession, query_answer
from repro.pxml import ind, mux, ordinary, pdoc
from repro.pxml.pdocument import PDocument, PNode, PNodeKind
from repro.rewrite import probabilistic_tp_plan
from repro.store import InMemoryStore
from repro.tp import parse_pattern
from repro.views import ProvenanceTable, View, probabilistic_extension
from repro.views.extension import ProbabilisticViewExtension
from repro.views.view import _marker_label
from repro.workloads.synthetic import (
    batch_workload,
    isomorphic_twin,
    personnel_pdocument,
    personnel_query,
    personnel_views,
)

SIZES = [8, 16]
FULL_SIZES = [8, 16, 32, 64]
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_anchored.json"

_TWIN_OFFSET = 10_000_000


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def theorem1_setup(persons: int):
    """Restricted single-view rewriting over the personnel family."""
    p = personnel_pdocument(persons=persons, projects=3, seed=persons)
    q = personnel_query("project0")
    view = personnel_views()[0]
    extension = probabilistic_extension(p, view)
    return p, q, view, extension


def theorem2_pdocument(chains: int, seed: int = 0, width: int = 4) -> PDocument:
    """``chains`` nested ``b/c`` chains with probabilistic ``d`` leaves.

    ``a//b/c/b/c`` selects two overlapping holders per chain (the depth-4
    and depth-6 ``c`` nodes), so the unrestricted plan's
    inclusion-exclusion and α-patterns genuinely fire; ``width``
    independent ``d`` leaves per chain give the per-candidate DP real
    distribution mass to recompute when it cannot hit the store.
    """
    rng = random.Random(seed)
    counter = itertools.count(1)
    kids = []
    for _ in range(chains):
        leaves = [
            ind(
                next(counter),
                (ordinary(next(counter), "d"),
                 rng.choice(["0.25", "0.5", "0.75"])),
            )
            for _ in range(width)
        ]
        chain = ordinary(next(counter), "c", *leaves)
        for label in ("b", "c", "b", "c", "b"):
            chain = ordinary(next(counter), label, chain)
        kids.append(
            mux(next(counter), (chain, "0.9"))
            if rng.random() < 0.5
            else chain
        )
    return pdoc(ordinary(0, "a", *kids))


def theorem2_setup(chains: int):
    """Unrestricted (Theorem 2) single-view rewriting over chain documents."""
    p = theorem2_pdocument(chains, seed=chains)
    q = parse_pattern("a//b/c/b/c//d")
    view = View("v", parse_pattern("a//b/c/b/c"))
    extension = probabilistic_extension(p, view)
    return p, q, view, extension


def evaluate_fresh_plan(
    q, view, extension, store, anchored: bool, backend: str = "exact"
):
    """One plan evaluation as a *fresh* consumer of the shared store.

    A fresh plan means fresh per-extension sessions: node-keyed local
    memos start empty (the baseline's anchored work recomputes), whereas
    anchor-position entries in the shared store survive.
    """
    plan = probabilistic_tp_plan(
        q, view, store=store, anchored_store=anchored, backend=backend
    )
    assert plan is not None
    return plan.evaluate(extension)


def twin_cold_anchored_hits(persons: int = 6) -> int:
    """Anchored store hits during the *first* pass over an isomorphic twin.

    One document fills a shared store with anchored Boolean evaluations
    (``Pr(out ↦ n)`` per candidate); its Id-disjoint twin then evaluates
    the corresponding anchors.  Rank paths are Id-free, so the twin's
    first, cold pass must already hit the anchor-position entries.
    """
    p1, _ = batch_workload(persons=persons, projects=3, seed=persons)
    p2 = isomorphic_twin(p1, _TWIN_OFFSET)
    q = personnel_query("project0")
    candidates = sorted(query_answer(p1, q))
    store = InMemoryStore()
    first = QuerySession(p1, store=store).boolean_many(
        [(q, {q.out: n}) for n in candidates]
    )
    before = store.anchored_hits
    second = QuerySession(p2, store=store).boolean_many(
        [(q, {q.out: n + _TWIN_OFFSET}) for n in candidates]
    )
    assert first == second  # isomorphic twins answer identically
    return store.anchored_hits - before


def _legacy_marker_extension(p: PDocument, view: View) -> ProbabilisticViewExtension:
    """The pre-ISSUE-9 §3.1 construction: ``Id(n)`` markers in the tree.

    Rebuilt locally for the benchmark's ``marker`` arm — the production
    builders are Id-free and no longer plant markers.  The provenance
    table is decoded back from the markers, so plan evaluation works
    unchanged; only the document structure (and hence the digests)
    differs.
    """
    answer = query_answer(p, view.pattern)
    fresh = itertools.count(1)
    root = PNode(0, PNodeKind.ORDINARY, view.doc_label)
    bundle = PNode(next(fresh), PNodeKind.IND)
    subtree_roots: dict[int, int] = {}

    def copy_with_markers(source: PNode) -> PNode:
        node = PNode(next(fresh), source.kind, source.label)
        if source.is_ordinary:
            node.add_child(
                PNode(next(fresh), PNodeKind.ORDINARY, _marker_label(source.node_id))
            )
        for child in source.children:
            probability = (
                source.probabilities[child.node_id]
                if source.probabilities is not None
                else None
            )
            node.add_child(copy_with_markers(child), probability)
        return node

    for selected in sorted(answer):
        sub = copy_with_markers(p.node(selected))
        bundle.add_child(sub, answer[selected])
        subtree_roots[selected] = sub.node_id
    if subtree_roots:
        root.add_child(bundle)
    pdocument = PDocument(root)
    return ProbabilisticViewExtension(
        view=view,
        pdocument=pdocument,
        selection=dict(answer),
        subtree_roots=subtree_roots,
        provenance=ProvenanceTable.from_markers(pdocument),
    )


def twin_extension_measure(persons: int, repeats: int = 1) -> dict:
    """Theorem-1 plans over a document's extension and its twin's, per arm.

    Each arm shares one store between both extensions.  ``twin_cold_s``
    times the twin extension's *first* evaluation; the Id-free arm's
    extensions are digest-identical, so that pass probes the entries the
    first extension warmed (``twin_cold_store_hits``), while the marker
    arm's digests differ (marker labels name concrete original Ids) and
    it recomputes everything.
    """
    p1 = personnel_pdocument(persons=persons, projects=3, seed=persons)
    p2 = isomorphic_twin(p1, _TWIN_OFFSET)
    q = personnel_query("project0")
    view = personnel_views()[0]
    expected = query_answer(p1, q)
    row = {"persons": persons, "answers": len(expected)}
    for arm, build in (
        ("marker", _legacy_marker_extension),
        ("id_free", probabilistic_extension),
    ):
        store = InMemoryStore()
        plan = probabilistic_tp_plan(q, view, store=store)
        assert plan is not None
        ext1, ext2 = build(p1, view), build(p2, view)
        start = time.perf_counter()
        first = plan.evaluate(ext1)
        cold = time.perf_counter() - start
        assert first == expected
        before = store.stats()
        before_hits = before["hits"]  # anchored_hits is a subset of hits
        before_misses = before["misses"]
        start = time.perf_counter()
        second = plan.evaluate(ext2)
        twin_cold = time.perf_counter() - start
        assert second == {
            node_id + _TWIN_OFFSET: probability
            for node_id, probability in expected.items()
        }
        after = store.stats()
        row[arm] = {
            "extension_size": ext1.pdocument.size(),
            "cold_s": cold,
            "twin_cold_s": twin_cold,
            # Hits high in the tree short-circuit whole-subtree descents,
            # so the decisive cross-twin column is the *miss* count: the
            # digest-identical id_free twin barely misses, while the
            # marker twin (digest-distinct) recomputes cold.
            "twin_cold_store_hits": after["hits"] - before_hits,
            "twin_cold_store_misses": after["misses"] - before_misses,
            "warm_s": _best_of(repeats, plan.evaluate, ext2),
        }
    row["twin_cold_speedup"] = (
        row["marker"]["twin_cold_s"] / row["id_free"]["twin_cold_s"]
    )
    return row


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§4 Theorems 1/2 — warm anchored rewrite answering")
@pytest.mark.parametrize("persons", SIZES)
@pytest.mark.parametrize("anchored", [False, True], ids=["node_keyed", "anchored"])
def test_theorem1_warm(benchmark, report, persons, anchored):
    p, q, view, extension = theorem1_setup(persons)
    expected = query_answer(p, q)
    store = InMemoryStore()
    evaluate_fresh_plan(q, view, extension, store, anchored)  # fill, untimed
    answer = benchmark(
        evaluate_fresh_plan, q, view, extension, store, anchored
    )
    assert answer == expected
    report.append(
        f"anchored persons={persons}: warm Theorem-1 plan, "
        f"{'position-keyed store' if anchored else 'node-keyed baseline'}"
    )


def test_twin_document_hits_anchored_entries_cold(report):
    hits = twin_cold_anchored_hits()
    assert hits > 0
    report.append(
        f"anchored twins: {hits} anchor-position hits on the first cold pass"
    )


def test_twin_extension_cold_pass_hits_store(report):
    # ISSUE-9: Id-free extensions of isomorphic twins share the store on
    # the very first pass; the marker arm shows what that replaced.
    row = twin_extension_measure(persons=6)
    assert row["id_free"]["twin_cold_store_hits"] > 0
    # Hits alone mislead (a high hit short-circuits a whole descent, so
    # the marker arm's deep self-hits inflate its count): the decisive
    # column is misses — the digest-identical twin barely recomputes.
    assert (
        row["id_free"]["twin_cold_store_misses"]
        < row["marker"]["twin_cold_store_misses"]
    )
    report.append(
        "twin extensions: id_free cold pass "
        f"{row['id_free']['twin_cold_store_misses']} store misses vs "
        f"{row['marker']['twin_cold_store_misses']} with markers"
    )


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def _measure(setup, persons: int, repeats: int) -> dict:
    p, q, view, extension = setup(persons)
    expected = query_answer(p, q)
    result = {"persons": persons, "pdocument_size": p.size(),
              "extension_size": extension.pdocument.size(),
              "answers": len(expected)}
    for label, anchored in (("node_keyed", False), ("anchored", True)):
        store = InMemoryStore()
        # The first evaluation over the empty store IS the cold pass —
        # time it and assert its answer, so the warm runs below find the
        # store exactly as one production evaluation leaves it.
        start = time.perf_counter()
        answer = evaluate_fresh_plan(q, view, extension, store, anchored)
        cold = time.perf_counter() - start
        assert answer == expected
        warm = _best_of(repeats, evaluate_fresh_plan, q, view, extension,
                        store, anchored)
        result[f"cold_{label}_s"] = cold
        result[f"warm_{label}_s"] = warm
        if anchored:
            gauges = store.stats()
            result["anchored_entries"] = gauges["anchored_entries"]
            result["anchored_hits"] = gauges["anchored_hits"]
    result["warm_speedup"] = (
        result["warm_node_keyed_s"] / result["warm_anchored_s"]
    )
    # Numeric-backend columns.  Two warm measurements per backend:
    #
    # * ``warm_anchored_s`` — a *fresh* plan over the warm shared store
    #   (the benchmark's headline scenario).  Fresh plans mean fresh
    #   sessions, so this cost is dominated by backend-independent
    #   rewrite bookkeeping — an honest like-for-like column.
    # * ``warm_session_s`` — the anchored hot path itself: the full
    #   candidate batch ``Pr(out ↦ n)`` repeated on a *resident*
    #   session, i.e. a serving process that keeps its session between
    #   requests.  Scalar backends re-walk the candidate spine every
    #   pass; the vectorized ``array`` backend's stacked pass memoizes
    #   the batch per epoch, which is where it earns its keep here.
    candidates = sorted(expected)
    items = [(q, {q.out: n}) for n in candidates]
    exact_masses = QuerySession(p, store=InMemoryStore()).boolean_many(items)
    result["backends"] = {}
    for backend in ("exact", "fast", "array"):
        store = InMemoryStore()
        start = time.perf_counter()
        answer = evaluate_fresh_plan(q, view, extension, store, True, backend)
        cold = time.perf_counter() - start
        error = 0.0
        for node_id in set(expected) | set(answer):
            error = max(
                error,
                abs(
                    float(answer.get(node_id, 0.0))
                    - float(expected.get(node_id, 0))
                ),
            )
        session = QuerySession(p, backend=backend, store=InMemoryStore())
        masses = session.boolean_many(items)  # cold fill, untimed
        error = max(
            error,
            max(
                abs(float(got) - float(want))
                for got, want in zip(masses, exact_masses)
            ),
        )
        assert error < 1e-9
        result["backends"][backend] = {
            "cold_anchored_s": cold,
            "warm_anchored_s": _best_of(
                repeats, evaluate_fresh_plan, q, view, extension, store,
                True, backend,
            ),
            "warm_session_s": _best_of(
                repeats, session.boolean_many, items
            ),
            "max_abs_error_vs_exact": error,
        }
    return result


def run(sizes: list[int], repeats: int = 3) -> dict:
    workloads = {}
    for name, setup in (("theorem1", theorem1_setup), ("theorem2", theorem2_setup)):
        workloads[name] = [
            _measure(setup, persons, repeats) for persons in sizes
        ]
    report = {
        "benchmark": "bench_anchored",
        "workloads": {
            "theorem1": "personnel family, restricted plan "
            "(batched anchored numerators + per-holder denominators)",
            "theorem2": "nested b/c chains, unrestricted plan "
            "(inclusion-exclusion, engine-anchored α-patterns)",
        },
        "strategies": ["node_keyed (anchored_store=False)",
                       "anchored (anchored_store=True)"],
        "repeats": repeats,
        "twin_cold_anchored_hits": twin_cold_anchored_hits(),
        "results": workloads,
        "cross_twin_extension": {
            "description": "Theorem-1 plans over extensions of a document "
            "and its Id-disjoint isomorphic twin, one shared store per "
            "arm: marker (legacy §3.1 Id(n) children) vs id_free "
            "(provenance-layer extensions, digest-identical across twins)",
            "results": [
                twin_extension_measure(persons, repeats) for persons in sizes
            ],
        },
    }
    # Acceptance summary across workloads at the largest size: the
    # resident-session anchored warm path, array vs fast (the weakest
    # workload binds), and worst array-vs-exact error anywhere.
    report["array_vs_fast_warm_speedup"] = min(
        rows[-1]["backends"]["fast"]["warm_session_s"]
        / rows[-1]["backends"]["array"]["warm_session_s"]
        for rows in workloads.values()
    )
    report["array_vs_exact_max_abs_error"] = max(
        row["backends"]["array"]["max_abs_error_vs_exact"]
        for rows in workloads.values()
        for row in rows
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    sizes = SIZES if args.quick else FULL_SIZES
    report = run(sizes, repeats=1 if args.quick else 3)
    write_report(args.output, report)
    print(f"wrote {args.output}")
    exit_code = 0
    for name, rows in report["results"].items():
        largest = rows[-1]
        print(
            f"{name} persons={largest['persons']}: warm anchored vs "
            f"node-keyed ×{largest['warm_speedup']:.1f} "
            f"({largest['anchored_entries']} anchored entries)"
        )
        if not args.quick and largest["warm_speedup"] < 2.0:
            print(
                f"FAIL: warm {name} answering under 2x over the "
                "node-keyed baseline", file=sys.stderr,
            )
            exit_code = 1
    print(
        f"array vs fast resident-session warm ×"
        f"{report['array_vs_fast_warm_speedup']:.1f}, "
        f"max |array − exact| = "
        f"{report['array_vs_exact_max_abs_error']:.2e}"
    )
    if report["array_vs_exact_max_abs_error"] > 1e-9:
        print("FAIL: array backend outside the 1e-9 exactness bar",
              file=sys.stderr)
        exit_code = 1
    if not args.quick and report["array_vs_fast_warm_speedup"] < 3.0:
        print("FAIL: array resident-session warm speedup below the 3x "
              "acceptance bar", file=sys.stderr)
        exit_code = 1
    print(f"twin cold anchored hits: {report['twin_cold_anchored_hits']}")
    if report["twin_cold_anchored_hits"] <= 0:
        print("FAIL: isomorphic twin did not hit anchored entries cold",
              file=sys.stderr)
        exit_code = 1
    twin_rows = report["cross_twin_extension"]["results"]
    largest = twin_rows[-1]
    print(
        f"twin extensions persons={largest['persons']}: id_free cold pass "
        f"{largest['id_free']['twin_cold_store_hits']} hits / "
        f"{largest['id_free']['twin_cold_store_misses']} misses "
        f"(marker arm: {largest['marker']['twin_cold_store_hits']} / "
        f"{largest['marker']['twin_cold_store_misses']}), "
        f"twin cold ×{largest['twin_cold_speedup']:.1f}"
    )
    if any(row["id_free"]["twin_cold_store_hits"] <= 0 for row in twin_rows):
        print("FAIL: Id-free twin extension did not hit the store on its "
              "first cold pass", file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
