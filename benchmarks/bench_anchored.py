"""Anchored-evaluation benchmark: canonical anchor positions vs the
node-keyed baseline.

The rewrite layer's hottest traffic — Theorem 1's per-holder numerators
and Theorem 2's α-pattern conjunctions — is *anchored*: pattern nodes
pinned to concrete document nodes.  Until ISSUE 5 those evaluations
bypassed the structural memo store (anchors pin node Ids, which are
document identity, not structure) and lived in per-session node-keyed
memos, so every fresh plan, extension, restart or isomorphic twin paid
them cold.  Canonical anchor *positions* (digest-sorted rank paths)
turn them into content-addressed store entries.

Two workloads, each timed under two configurations against a shared
:class:`~repro.store.InMemoryStore`:

* ``theorem1`` — the personnel family (restricted plan: batched
  numerators + per-holder denominators);
* ``theorem2`` — nested ``b/c``-chain documents where
  ``a//b/c/b/c`` rewrites ``a//b/c/b/c//d`` unrestrictedly
  (inclusion-exclusion over overlapping holders, α-patterns with
  engine-anchored ``Id(·)`` pins);

and per configuration:

* ``node_keyed`` — ``anchored_store=False``: anchored entries go to
  session-local memos; a *fresh* plan over the warm shared store
  (``warm_node_keyed_s``) still recomputes every anchored DP — this is
  the pre-ISSUE-5 behaviour;
* ``anchored``  — ``anchored_store=True``: the same fresh plan starts
  warm (``warm_anchored_s``), probing anchor-position keys filled by the
  previous evaluation.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_anchored.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_anchored.py --quick   # CI smoke

which writes ``BENCH_anchored.json`` at the repository root.  The full
run asserts the ISSUE-5 acceptance bar — warm Theorem-1/2 answering at
64 persons is ≥ 2× faster than the node-keyed baseline — and the
ISSUE-6 bar: the vectorized ``array`` backend is ≥ 3× faster than
``fast`` on the resident-session anchored warm path (``warm_session_s``
backend columns), within 1e-9 of ``exact``.  Both runs also
assert the structural-sharing bar: anchored entries hit the store on the
*first cold pass* over an isomorphic twin document (same shapes,
disjoint node Ids).  Under pytest the same strategies run through
pytest-benchmark with exactness asserted against direct evaluation.
"""

from __future__ import annotations

import argparse
import itertools
import random
import sys
import time
from pathlib import Path

import pytest

from common import best_of as _best_of, write_report

from repro.prob import QuerySession, query_answer
from repro.pxml import ind, mux, ordinary, pdoc
from repro.pxml.pdocument import PDocument
from repro.rewrite import probabilistic_tp_plan
from repro.store import InMemoryStore
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads.synthetic import (
    batch_workload,
    isomorphic_twin,
    personnel_pdocument,
    personnel_query,
    personnel_views,
)

SIZES = [8, 16]
FULL_SIZES = [8, 16, 32, 64]
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_anchored.json"

_TWIN_OFFSET = 10_000_000


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def theorem1_setup(persons: int):
    """Restricted single-view rewriting over the personnel family."""
    p = personnel_pdocument(persons=persons, projects=3, seed=persons)
    q = personnel_query("project0")
    view = personnel_views()[0]
    extension = probabilistic_extension(p, view)
    return p, q, view, extension


def theorem2_pdocument(chains: int, seed: int = 0, width: int = 4) -> PDocument:
    """``chains`` nested ``b/c`` chains with probabilistic ``d`` leaves.

    ``a//b/c/b/c`` selects two overlapping holders per chain (the depth-4
    and depth-6 ``c`` nodes), so the unrestricted plan's
    inclusion-exclusion and α-patterns genuinely fire; ``width``
    independent ``d`` leaves per chain give the per-candidate DP real
    distribution mass to recompute when it cannot hit the store.
    """
    rng = random.Random(seed)
    counter = itertools.count(1)
    kids = []
    for _ in range(chains):
        leaves = [
            ind(
                next(counter),
                (ordinary(next(counter), "d"),
                 rng.choice(["0.25", "0.5", "0.75"])),
            )
            for _ in range(width)
        ]
        chain = ordinary(next(counter), "c", *leaves)
        for label in ("b", "c", "b", "c", "b"):
            chain = ordinary(next(counter), label, chain)
        kids.append(
            mux(next(counter), (chain, "0.9"))
            if rng.random() < 0.5
            else chain
        )
    return pdoc(ordinary(0, "a", *kids))


def theorem2_setup(chains: int):
    """Unrestricted (Theorem 2) single-view rewriting over chain documents."""
    p = theorem2_pdocument(chains, seed=chains)
    q = parse_pattern("a//b/c/b/c//d")
    view = View("v", parse_pattern("a//b/c/b/c"))
    extension = probabilistic_extension(p, view)
    return p, q, view, extension


def evaluate_fresh_plan(
    q, view, extension, store, anchored: bool, backend: str = "exact"
):
    """One plan evaluation as a *fresh* consumer of the shared store.

    A fresh plan means fresh per-extension sessions: node-keyed local
    memos start empty (the baseline's anchored work recomputes), whereas
    anchor-position entries in the shared store survive.
    """
    plan = probabilistic_tp_plan(
        q, view, store=store, anchored_store=anchored, backend=backend
    )
    assert plan is not None
    return plan.evaluate(extension)


def twin_cold_anchored_hits(persons: int = 6) -> int:
    """Anchored store hits during the *first* pass over an isomorphic twin.

    One document fills a shared store with anchored Boolean evaluations
    (``Pr(out ↦ n)`` per candidate); its Id-disjoint twin then evaluates
    the corresponding anchors.  Rank paths are Id-free, so the twin's
    first, cold pass must already hit the anchor-position entries.
    """
    p1, _ = batch_workload(persons=persons, projects=3, seed=persons)
    p2 = isomorphic_twin(p1, _TWIN_OFFSET)
    q = personnel_query("project0")
    candidates = sorted(query_answer(p1, q))
    store = InMemoryStore()
    first = QuerySession(p1, store=store).boolean_many(
        [(q, {q.out: n}) for n in candidates]
    )
    before = store.anchored_hits
    second = QuerySession(p2, store=store).boolean_many(
        [(q, {q.out: n + _TWIN_OFFSET}) for n in candidates]
    )
    assert first == second  # isomorphic twins answer identically
    return store.anchored_hits - before


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§4 Theorems 1/2 — warm anchored rewrite answering")
@pytest.mark.parametrize("persons", SIZES)
@pytest.mark.parametrize("anchored", [False, True], ids=["node_keyed", "anchored"])
def test_theorem1_warm(benchmark, report, persons, anchored):
    p, q, view, extension = theorem1_setup(persons)
    expected = query_answer(p, q)
    store = InMemoryStore()
    evaluate_fresh_plan(q, view, extension, store, anchored)  # fill, untimed
    answer = benchmark(
        evaluate_fresh_plan, q, view, extension, store, anchored
    )
    assert answer == expected
    report.append(
        f"anchored persons={persons}: warm Theorem-1 plan, "
        f"{'position-keyed store' if anchored else 'node-keyed baseline'}"
    )


def test_twin_document_hits_anchored_entries_cold(report):
    hits = twin_cold_anchored_hits()
    assert hits > 0
    report.append(
        f"anchored twins: {hits} anchor-position hits on the first cold pass"
    )


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def _measure(setup, persons: int, repeats: int) -> dict:
    p, q, view, extension = setup(persons)
    expected = query_answer(p, q)
    result = {"persons": persons, "pdocument_size": p.size(),
              "extension_size": extension.pdocument.size(),
              "answers": len(expected)}
    for label, anchored in (("node_keyed", False), ("anchored", True)):
        store = InMemoryStore()
        # The first evaluation over the empty store IS the cold pass —
        # time it and assert its answer, so the warm runs below find the
        # store exactly as one production evaluation leaves it.
        start = time.perf_counter()
        answer = evaluate_fresh_plan(q, view, extension, store, anchored)
        cold = time.perf_counter() - start
        assert answer == expected
        warm = _best_of(repeats, evaluate_fresh_plan, q, view, extension,
                        store, anchored)
        result[f"cold_{label}_s"] = cold
        result[f"warm_{label}_s"] = warm
        if anchored:
            gauges = store.stats()
            result["anchored_entries"] = gauges["anchored_entries"]
            result["anchored_hits"] = gauges["anchored_hits"]
    result["warm_speedup"] = (
        result["warm_node_keyed_s"] / result["warm_anchored_s"]
    )
    # Numeric-backend columns.  Two warm measurements per backend:
    #
    # * ``warm_anchored_s`` — a *fresh* plan over the warm shared store
    #   (the benchmark's headline scenario).  Fresh plans mean fresh
    #   sessions, so this cost is dominated by backend-independent
    #   rewrite bookkeeping — an honest like-for-like column.
    # * ``warm_session_s`` — the anchored hot path itself: the full
    #   candidate batch ``Pr(out ↦ n)`` repeated on a *resident*
    #   session, i.e. a serving process that keeps its session between
    #   requests.  Scalar backends re-walk the candidate spine every
    #   pass; the vectorized ``array`` backend's stacked pass memoizes
    #   the batch per epoch, which is where it earns its keep here.
    candidates = sorted(expected)
    items = [(q, {q.out: n}) for n in candidates]
    exact_masses = QuerySession(p, store=InMemoryStore()).boolean_many(items)
    result["backends"] = {}
    for backend in ("exact", "fast", "array"):
        store = InMemoryStore()
        start = time.perf_counter()
        answer = evaluate_fresh_plan(q, view, extension, store, True, backend)
        cold = time.perf_counter() - start
        error = 0.0
        for node_id in set(expected) | set(answer):
            error = max(
                error,
                abs(
                    float(answer.get(node_id, 0.0))
                    - float(expected.get(node_id, 0))
                ),
            )
        session = QuerySession(p, backend=backend, store=InMemoryStore())
        masses = session.boolean_many(items)  # cold fill, untimed
        error = max(
            error,
            max(
                abs(float(got) - float(want))
                for got, want in zip(masses, exact_masses)
            ),
        )
        assert error < 1e-9
        result["backends"][backend] = {
            "cold_anchored_s": cold,
            "warm_anchored_s": _best_of(
                repeats, evaluate_fresh_plan, q, view, extension, store,
                True, backend,
            ),
            "warm_session_s": _best_of(
                repeats, session.boolean_many, items
            ),
            "max_abs_error_vs_exact": error,
        }
    return result


def run(sizes: list[int], repeats: int = 3) -> dict:
    workloads = {}
    for name, setup in (("theorem1", theorem1_setup), ("theorem2", theorem2_setup)):
        workloads[name] = [
            _measure(setup, persons, repeats) for persons in sizes
        ]
    report = {
        "benchmark": "bench_anchored",
        "workloads": {
            "theorem1": "personnel family, restricted plan "
            "(batched anchored numerators + per-holder denominators)",
            "theorem2": "nested b/c chains, unrestricted plan "
            "(inclusion-exclusion, engine-anchored α-patterns)",
        },
        "strategies": ["node_keyed (anchored_store=False)",
                       "anchored (anchored_store=True)"],
        "repeats": repeats,
        "twin_cold_anchored_hits": twin_cold_anchored_hits(),
        "results": workloads,
    }
    # Acceptance summary across workloads at the largest size: the
    # resident-session anchored warm path, array vs fast (the weakest
    # workload binds), and worst array-vs-exact error anywhere.
    report["array_vs_fast_warm_speedup"] = min(
        rows[-1]["backends"]["fast"]["warm_session_s"]
        / rows[-1]["backends"]["array"]["warm_session_s"]
        for rows in workloads.values()
    )
    report["array_vs_exact_max_abs_error"] = max(
        row["backends"]["array"]["max_abs_error_vs_exact"]
        for rows in workloads.values()
        for row in rows
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    sizes = SIZES if args.quick else FULL_SIZES
    report = run(sizes, repeats=1 if args.quick else 3)
    write_report(args.output, report)
    print(f"wrote {args.output}")
    exit_code = 0
    for name, rows in report["results"].items():
        largest = rows[-1]
        print(
            f"{name} persons={largest['persons']}: warm anchored vs "
            f"node-keyed ×{largest['warm_speedup']:.1f} "
            f"({largest['anchored_entries']} anchored entries)"
        )
        if not args.quick and largest["warm_speedup"] < 2.0:
            print(
                f"FAIL: warm {name} answering under 2x over the "
                "node-keyed baseline", file=sys.stderr,
            )
            exit_code = 1
    print(
        f"array vs fast resident-session warm ×"
        f"{report['array_vs_fast_warm_speedup']:.1f}, "
        f"max |array − exact| = "
        f"{report['array_vs_exact_max_abs_error']:.2e}"
    )
    if report["array_vs_exact_max_abs_error"] > 1e-9:
        print("FAIL: array backend outside the 1e-9 exactness bar",
              file=sys.stderr)
        exit_code = 1
    if not args.quick and report["array_vs_fast_warm_speedup"] < 3.0:
        print("FAIL: array resident-session warm speedup below the 3x "
              "acceptance bar", file=sys.stderr)
        exit_code = 1
    print(f"twin cold anchored hits: {report['twin_cold_anchored_hits']}")
    if report["twin_cold_anchored_hits"] <= 0:
        print("FAIL: isomorphic twin did not hit anchored entries cold",
              file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
