"""E7–E9, E16: the positive rewriting examples (§4.3, §5.2, §5.3)."""

from fractions import Fraction

import pytest

from repro.prob import query_answer
from repro.pxml import ind, ordinary, pdoc
from repro.rewrite import (
    decompose_views,
    probabilistic_tp_plan,
    theorem3_plan,
    tpi_rewrite,
)
from repro.rewrite.multi_view import Theorem3Member
from repro.views import View, probabilistic_extension
from repro.workloads import paper

F = Fraction


@pytest.mark.paper("Example 13 (Theorem 1)")
def test_example13_restricted_plan(benchmark, report):
    p = paper.p_per()
    view = View("v2BON", paper.v2_bon())
    plan = probabilistic_tp_plan(paper.q_bon(), view)
    assert plan is not None and plan.restricted
    ext = probabilistic_extension(p, view)
    answer = benchmark(plan.evaluate, ext)
    assert answer == {5: F(9, 10)}
    report.append(
        "E7 Example 13: restricted plan over v2BON gives Pr(n5)=0.9/1=0.9"
    )


@pytest.mark.paper("Example 15 (Theorem 3)")
def test_example15_product_plan(benchmark, report):
    p = paper.p_per()
    v1 = View("v1BON", paper.v1_bon())
    v2 = View("v2BON", paper.v2_bon())
    exts = {
        "v1BON": probabilistic_extension(p, v1),
        "v2BON": probabilistic_extension(p, v2),
    }
    members = [
        Theorem3Member("v1BON", v1),
        Theorem3Member("v", v2, compensation_depth=3),
    ]
    plan = theorem3_plan(paper.q_rbon(), members, exts)
    assert plan is not None
    answer = benchmark(plan.evaluate)
    assert answer == {5: F(27, 40)}
    report.append(
        "E8 Example 15: Theorem 3 product 0.75×0.9÷1 = 0.675 — exact"
    )


def _example16_document():
    return pdoc(ordinary(0, "a",
                         ind(10, (ordinary(11, "1"), "0.9")),
                         ordinary(1, "b",
                                  ind(20, (ordinary(21, "2"), "0.8")),
                                  ordinary(2, "c",
                                           ind(30, (ordinary(31, "3"), "0.7")),
                                           ordinary(3, "d")))))


@pytest.mark.paper("Example 16 (Theorem 5) — system construction")
def test_example16_system(benchmark, report):
    q = paper.example16_query()
    tagged = [(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
    certificate = benchmark(lambda: decompose_views(q, tagged).certificate())
    assert certificate == {
        "v1": F(1, 2), "v2": F(1, 2), "v3": F(1, 2), "v4": F(-1, 2),
    }
    report.append(
        "E9 Example 16: S(q,V) certificate (1/2, 1/2, 1/2, -1/2) — "
        "Pr(n∈q) uniquely determined despite pairwise-dependent views"
    )


@pytest.mark.paper("Example 16 (Theorem 5) — end to end")
def test_example16_tpi_rewrite(benchmark, report):
    q = paper.example16_query()
    p = _example16_document()
    views = [View(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
    exts = {v.name: probabilistic_extension(p, v) for v in views}
    plan = tpi_rewrite(q, views, exts)
    assert plan is not None
    answer = benchmark(plan.evaluate)
    assert answer == query_answer(p, q) == {3: F(63, 125)}
    report.append(
        "E9 Example 16 end-to-end: f_r = sqrt(v1·v2·v3/v4) = 0.504 — exact"
    )
