"""E5–E6: the Figure 5 counterexamples — probabilistic rewritings that
cannot exist although deterministic ones do (§4.1, Examples 11–12)."""

from fractions import Fraction

import pytest

from repro.prob import node_probability, query_answer
from repro.rewrite import fact1_holds, probabilistic_tp_plan
from repro.views import View, probabilistic_extension
from repro.workloads import paper

F = Fraction


@pytest.mark.paper("Example 11 / Figure 5 left")
def test_example11_indistinguishable_extensions(benchmark, report):
    q, v = paper.example11_query(), paper.example11_view()
    p1, p2 = paper.p1_example11(), paper.p2_example11()
    assert fact1_holds(q, v)  # the deterministic rewriting exists

    def run():
        view = View("v", v)
        return (
            probabilistic_extension(p1, view),
            probabilistic_extension(p2, view),
            node_probability(p1, q, 3),
            node_probability(p2, q, 3),
        )

    ext1, ext2, pr1, pr2 = benchmark(run)
    assert ext1.pdocument == ext2.pdocument        # views cannot distinguish
    assert (pr1, pr2) == (F(13, 40), F(1, 2))       # but the answers differ
    assert probabilistic_tp_plan(q, View("v", v)) is None
    report.append(
        "E5 Example 11: (P̂1)_v=(P̂2)_v with Pr=0.65 selection; true answers "
        f"{float(pr1)} vs {float(pr2)} — no f_r exists, TPrewrite refuses"
    )


@pytest.mark.paper("Example 12 / Figure 5 right")
def test_example12_prefix_suffix_obstruction(benchmark, report):
    q, v = paper.example12_query(), paper.example12_view()
    p3, p4 = paper.p3_example12(), paper.p4_example12()
    assert fact1_holds(q, v)

    def run():
        view = View("v", v)
        return (
            probabilistic_extension(p3, view),
            probabilistic_extension(p4, view),
            node_probability(p3, q, 12),
            node_probability(p4, q, 12),
            query_answer(p3, v),
        )

    ext3, ext4, pr3, pr4, view_answer = benchmark(run)
    assert ext3.pdocument == ext4.pdocument
    assert (pr3, pr4) == (F(288, 1000), F(264, 1000))
    assert view_answer == {9: F(12, 100), 11: F(24, 100)}
    assert probabilistic_tp_plan(q, View("v", v)) is None
    report.append(
        "E6 Example 12: nc1/nc2 selected at 0.12/0.24 in both documents; "
        "true answers 0.288 vs 0.264 — u=2 condition rejects the plan"
    )
