"""Ablations of the library's design choices (DESIGN.md §2).

* exact `Fraction` arithmetic vs. float Monte-Carlo approximation — the
  price of bit-exact reproduction;
* Theorem 1's quotient (restricted plans, a single anchored DP run) vs.
  Theorem 2's inclusion–exclusion (unrestricted plans) on the same data;
* the c-independence witness search as pattern sizes grow (the PTime claim
  of Proposition 2 for our substituted test);
* the cache facade's decision overhead (`answerable`) vs. full answering.
"""

import random

import pytest

from repro.cache import RewritingCache
from repro.prob import query_answer
from repro.prob.approximate import approximate_query_answer
from repro.rewrite import c_independent, probabilistic_tp_plan
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads import paper
from repro.workloads.synthetic import personnel_pdocument, personnel_query


@pytest.mark.paper("ablation: exact vs approximate evaluation")
def test_exact_evaluation_cost(benchmark, report):
    p = personnel_pdocument(persons=8, projects=3, seed=8)
    q = personnel_query("project0")
    answer = benchmark(query_answer, p, q)
    report.append(f"A1 exact evaluation: {len(answer)} exact rationals")


@pytest.mark.paper("ablation: exact vs approximate evaluation")
def test_approximate_evaluation_cost(benchmark, report):
    p = personnel_pdocument(persons=8, projects=3, seed=8)
    q = personnel_query("project0")
    estimates = benchmark(
        approximate_query_answer, p, q, 200, random.Random(1)
    )
    exact = query_answer(p, q)
    worst = max(
        (abs(estimates.get(n, 0.0) - float(pr)) for n, pr in exact.items()),
        default=0.0,
    )
    report.append(
        f"A1 approximate (200 samples): max additive error {worst:.3f}"
    )


@pytest.mark.paper("ablation: Theorem 1 quotient vs Theorem 2 incl-excl")
def test_restricted_plan_cost(benchmark, report):
    q = parse_pattern("a/b/c//d")          # /-only view ⇒ restricted
    view = View("v", parse_pattern("a/b/c"))
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None and plan.restricted
    p = _nested_chain_document()
    ext = probabilistic_extension(p, view)
    answer = benchmark(plan.evaluate, ext)
    assert answer == query_answer(p, q)
    report.append("A2 restricted plan: one anchored DP run per node")


@pytest.mark.paper("ablation: Theorem 1 quotient vs Theorem 2 incl-excl")
def test_unrestricted_plan_cost(benchmark, report):
    q = parse_pattern("a//b/c//d")         # // on both sides ⇒ unrestricted
    view = View("v", parse_pattern("a//b/c"))
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None and not plan.restricted
    p = _nested_chain_document()
    ext = probabilistic_extension(p, view)
    answer = benchmark(plan.evaluate, ext)
    assert answer == query_answer(p, q)
    report.append(
        "A2 unrestricted plan: inclusion-exclusion over nested view images"
    )


def _nested_chain_document():
    from repro.pxml import ind, ordinary, pdoc

    return pdoc(ordinary(0, "a",
               ordinary(1, "b",
               ordinary(2, "c",
               ordinary(3, "b",
               ordinary(4, "c",
                        ind(5, (ordinary(6, "d"), "0.5")),
                        ordinary(7, "b",
                                 ordinary(8, "c",
                                          ind(9, (ordinary(10, "d"), "0.25"))))))))))


@pytest.mark.paper("ablation: c-independence witness search scaling")
@pytest.mark.parametrize("depth", [2, 4, 6, 8])
def test_cindependence_cost(benchmark, report, depth):
    left = parse_pattern("/".join(["a"] + [f"l{i}" for i in range(1, depth)]) + "[x]")
    right = parse_pattern("/".join(["a"] + [f"l{i}" for i in range(1, depth)]) + "[y]")
    verdict = benchmark(c_independent, left, right)
    assert not verdict  # same-position predicates are always dependent
    report.append(f"A3 c-independence |mb|={depth}: polynomial witness search")


@pytest.mark.paper("ablation: cache decision vs full answering")
def test_cache_decision_only(benchmark, report):
    p = paper.p_per()
    cache = RewritingCache(p, strict=True)
    cache.materialize(View("v2BON", paper.v2_bon()))
    verdict = benchmark(cache.answerable, paper.q_bon())
    assert verdict
    report.append("A4 cache.answerable: decision without probability retrieval")


@pytest.mark.paper("ablation: cache decision vs full answering")
def test_cache_full_answer(benchmark, report):
    from fractions import Fraction

    p = paper.p_per()
    cache = RewritingCache(p, strict=True)
    cache.materialize(View("v2BON", paper.v2_bon()))
    result = benchmark(cache.answer, paper.q_bon())
    assert result.answer == {5: Fraction(9, 10)}
    report.append("A4 cache.answer: decision + f_r evaluation")
