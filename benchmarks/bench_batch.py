"""Batch benchmark: sequential answer() calls vs one QuerySession pass.

Three strategies answer the same 8-query workload (one personnel query
per project; ``workloads/synthetic.batch_workload``) at growing document
sizes:

* ``sequential``   — eight independent ``answer()`` evaluations, one
  fresh single-pass engine per query (the PR-1 state of the art);
* ``batched_cold`` — ``QuerySession.answer_many`` on a fresh session:
  one shared post-order traversal with cross-query subtree memoization;
* ``batched_warm`` — the same batch repeated on a warm session, where
  candidate-free subtrees are skipped without traversal.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_batch.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_batch.py --quick   # CI smoke

which writes ``BENCH_batch.json`` at the repository root.  The full run
asserts the ISSUE-2 acceptance bar: batched-cold ≥ 3× sequential at the
largest size.  Under pytest the same strategies run through
pytest-benchmark with exactness asserted against each other.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

from common import best_of as _best_of, max_abs_error as _max_abs_error, write_report
from repro.prob import QuerySession, query_answer
from repro.workloads.synthetic import batch_workload

SIZES = [8, 16]
FULL_SIZES = [8, 16, 32, 64]
PROJECTS = 8
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _setup(persons: int):
    return batch_workload(persons=persons, projects=PROJECTS, seed=persons)


def sequential_answers(p, queries, backend="exact"):
    """The pre-session control flow: one engine pass per query."""
    return [query_answer(p, q, backend=backend) for q in queries]


def batched_answers(p, queries, backend="exact", session=None):
    if session is None:
        session = QuerySession(p, backend=backend)
    return session.answer_many(queries)


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§6 cost model — per-query sequential baseline")
@pytest.mark.parametrize("persons", SIZES)
def test_sequential_baseline(benchmark, report, persons):
    p, queries = _setup(persons)
    answers = benchmark(sequential_answers, p, queries)
    report.append(
        f"batch persons={persons}: sequential, {len(queries)} queries, "
        f"{sum(len(a) for a in answers)} answers"
    )


@pytest.mark.paper("§6 cost model — batched session, cold memo")
@pytest.mark.parametrize("persons", SIZES)
def test_batched_cold(benchmark, report, persons):
    p, queries = _setup(persons)
    answers = benchmark(batched_answers, p, queries)
    assert answers == sequential_answers(p, queries)  # exactness
    report.append(f"batch persons={persons}: one shared traversal per batch")


@pytest.mark.paper("§6 cost model — batched session, warm memo")
@pytest.mark.parametrize("persons", SIZES)
def test_batched_warm(benchmark, report, persons):
    p, queries = _setup(persons)
    session = QuerySession(p)
    session.answer_many(queries)  # warm the memo outside the timer
    answers = benchmark(batched_answers, p, queries, "exact", session)
    assert answers == sequential_answers(p, queries)
    report.append(f"batch persons={persons}: warm memo skips subtrees")


@pytest.mark.paper("§6 cost model — stacked array backend, warm plan")
@pytest.mark.parametrize("persons", SIZES)
def test_batched_warm_array(benchmark, report, persons):
    p, queries = _setup(persons)
    exact = sequential_answers(p, queries)
    session = QuerySession(p, backend="array")
    session.answer_many(queries)  # build + memoize the stacked plan
    answers = benchmark(batched_answers, p, queries, "array", session)
    for d_exact, d_got in zip(exact, answers):
        for node_id in set(d_exact) | set(d_got):
            assert abs(
                float(d_got.get(node_id, 0.0))
                - float(d_exact.get(node_id, 0))
            ) < 1e-9
    report.append(
        f"batch persons={persons}: one stacked (lanes × support) pass"
    )


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def _backend_columns(
    p, queries, exact: list[dict], backends: list[str], repeats: int
) -> dict:
    """Cold/warm ``answer_many`` timings and exactness per backend.

    The warm number is what the vectorized ``array`` backend exists
    for: its stacked pass memoizes the whole candidate spine per plan
    and epoch, so a repeated batch costs a plan lookup instead of a
    traversal (the scalar backends re-walk the spine every pass).
    """
    columns = {}
    for name in backends:
        got = batched_answers(p, queries, backend=name)
        warm_session = QuerySession(p, backend=name)
        warm_session.answer_many(queries)
        columns[name] = {
            "batched_cold_s": _best_of(
                repeats,
                lambda: batched_answers(p, queries, backend=name),
            ),
            "batched_warm_s": _best_of(
                repeats,
                lambda: batched_answers(p, queries, name, warm_session),
            ),
            "max_abs_error_vs_exact": _max_abs_error(exact, got),
        }
    return columns


def run(
    sizes: list[int],
    repeats: int = 3,
    backends: list[str] = ("fast", "array"),
) -> dict:
    backends = list(backends)
    results = []
    max_abs_error = 0.0
    for persons in sizes:
        p, queries = _setup(persons)
        exact = sequential_answers(p, queries)
        batched = batched_answers(p, queries)
        assert batched == exact
        fast = batched_answers(p, queries, backend="fast")
        max_abs_error = max(max_abs_error, _max_abs_error(exact, fast))
        warm_session = QuerySession(p)
        warm_session.answer_many(queries)
        timings = {
            "sequential_s": _best_of(repeats, sequential_answers, p, queries),
            "batched_cold_s": _best_of(repeats, batched_answers, p, queries),
            "batched_warm_s": _best_of(
                repeats, batched_answers, p, queries, "exact", warm_session
            ),
        }
        stats_session = QuerySession(p)
        stats_session.answer_many(queries)
        results.append(
            {
                "persons": persons,
                "pdocument_size": p.size(),
                "queries": len(queries),
                "answers": sum(len(a) for a in exact),
                **timings,
                "speedup_batched_vs_sequential": timings["sequential_s"]
                / timings["batched_cold_s"],
                "speedup_warm_vs_sequential": timings["sequential_s"]
                / timings["batched_warm_s"],
                "backends": _backend_columns(
                    p, queries, exact, backends, repeats
                ),
                "cold_session_stats": stats_session.stats.snapshot(),
            }
        )
    report = {
        "benchmark": "bench_batch",
        "workload": "workloads/synthetic batch_workload "
        f"({PROJECTS} per-project queries, neutral profile subtrees)",
        "strategies": ["sequential", "batched_cold", "batched_warm"],
        "backends": backends,
        "repeats": repeats,
        "fast_vs_exact_max_abs_error": max_abs_error,
        "results": results,
    }
    if {"fast", "array"} <= set(backends):
        largest = results[-1]["backends"]
        report["array_vs_fast_warm_speedup"] = (
            largest["fast"]["batched_warm_s"]
            / largest["array"]["batched_warm_s"]
        )
        report["array_vs_exact_max_abs_error"] = max(
            row["backends"]["array"]["max_abs_error_vs_exact"]
            for row in results
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    parser.add_argument(
        "--backend",
        choices=["fast", "array", "all"],
        default="all",
        help="which non-exact backends to compare ('array' keeps 'fast' "
        "as its warm-speedup reference)",
    )
    args = parser.parse_args(argv)
    sizes = SIZES if args.quick else FULL_SIZES
    backends = ["fast"] if args.backend == "fast" else ["fast", "array"]
    report = run(sizes, repeats=1 if args.quick else 3, backends=backends)
    write_report(args.output, report)
    largest = report["results"][-1]
    print(f"wrote {args.output}")
    print(
        f"persons={largest['persons']}: "
        f"batched vs sequential ×{largest['speedup_batched_vs_sequential']:.1f} "
        f"cold / ×{largest['speedup_warm_vs_sequential']:.1f} warm, "
        f"max |fast − exact| = {report['fast_vs_exact_max_abs_error']:.2e}"
    )
    if "array_vs_fast_warm_speedup" in report:
        print(
            f"persons={largest['persons']}: array vs fast warm "
            f"×{report['array_vs_fast_warm_speedup']:.1f}, "
            f"max |array − exact| = "
            f"{report['array_vs_exact_max_abs_error']:.2e}"
        )
    if largest["speedup_batched_vs_sequential"] <= 1.0:
        print("FAIL: batched evaluation not faster than sequential",
              file=sys.stderr)
        return 1
    if not args.quick and largest["speedup_batched_vs_sequential"] < 3.0:
        print("FAIL: batched speedup below the 3x acceptance bar",
              file=sys.stderr)
        return 1
    if "array_vs_fast_warm_speedup" in report:
        if report["array_vs_exact_max_abs_error"] > 1e-9:
            print("FAIL: array backend outside the 1e-9 exactness bar",
                  file=sys.stderr)
            return 1
        if not args.quick and report["array_vs_fast_warm_speedup"] < 3.0:
            print("FAIL: array warm speedup below the 3x acceptance bar",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
