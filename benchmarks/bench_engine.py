"""Engine benchmark: per-candidate baseline vs single-pass vs fast backend.

Three strategies answer the same ``q(P̂)`` on the ``workloads/synthetic``
personnel scaling family:

* ``per_candidate`` — the pre-engine formulation: one full anchored DP
  (``node_probability``) per candidate node, exact arithmetic;
* ``engine_exact``  — the single-pass engine (one DP traversal for all
  candidates), exact ``Fraction`` backend;
* ``engine_fast``   — the single-pass engine on the ``fast`` ``float``
  backend.

Run standalone to emit the machine-readable comparison::

    PYTHONPATH=src python benchmarks/bench_engine.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_engine.py --quick   # CI smoke

which writes ``BENCH_engine.json`` at the repository root.  Under pytest
the same strategies run through pytest-benchmark with exactness asserted
against each other.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

from common import best_of as _best_of, write_report

from repro.prob import EvaluationEngine, node_probability
from repro.workloads.synthetic import personnel_pdocument, personnel_query

SIZES = [4, 8, 16]
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _setup(persons: int):
    p = personnel_pdocument(persons=persons, projects=3, seed=persons)
    q = personnel_query("project0")
    candidates = sorted(EvaluationEngine(p, [q]).candidate_ids())
    return p, q, candidates


def per_candidate_answer(p, q, candidates):
    """The old ``query_answer`` control flow: one anchored DP per node."""
    answer = {}
    for node_id in candidates:
        probability = node_probability(p, q, node_id)
        if probability > 0:
            answer[node_id] = probability
    return answer


def engine_answer(p, q, candidates, backend):
    return EvaluationEngine(p, [q], backend=backend).answer(candidates)


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------
@pytest.mark.paper("§7 cost claim — per-candidate anchored DP baseline")
@pytest.mark.parametrize("persons", SIZES)
def test_per_candidate_baseline(benchmark, report, persons):
    p, q, candidates = _setup(persons)
    answer = benchmark(per_candidate_answer, p, q, candidates)
    report.append(
        f"engine persons={persons}: per-candidate baseline, "
        f"{len(candidates)} candidates, {len(answer)} answers"
    )


@pytest.mark.paper("§7 cost claim — single-pass engine, exact backend")
@pytest.mark.parametrize("persons", SIZES)
def test_engine_exact(benchmark, report, persons):
    p, q, candidates = _setup(persons)
    answer = benchmark(engine_answer, p, q, candidates, "exact")
    assert answer == per_candidate_answer(p, q, candidates)  # exactness
    report.append(f"engine persons={persons}: single-pass exact, one traversal")


@pytest.mark.paper("§7 cost claim — single-pass engine, fast backend")
@pytest.mark.parametrize("persons", SIZES)
def test_engine_fast(benchmark, report, persons):
    p, q, candidates = _setup(persons)
    answer = benchmark(engine_answer, p, q, candidates, "fast")
    exact = per_candidate_answer(p, q, candidates)
    assert set(answer) == set(exact)
    assert all(abs(answer[n] - float(exact[n])) < 1e-9 for n in exact)
    report.append(f"engine persons={persons}: single-pass fast floats")


# ----------------------------------------------------------------------
# Standalone JSON emitter
# ----------------------------------------------------------------------
def run(sizes: list[int], repeats: int = 3) -> dict:
    results = []
    max_abs_error = 0.0
    for persons in sizes:
        p, q, candidates = _setup(persons)
        exact = engine_answer(p, q, candidates, "exact")
        fast = engine_answer(p, q, candidates, "fast")
        assert exact == per_candidate_answer(p, q, candidates)
        for node_id in set(exact) | set(fast):
            error = abs(fast.get(node_id, 0.0) - float(exact.get(node_id, 0)))
            max_abs_error = max(max_abs_error, error)
        timings = {
            "per_candidate_s": _best_of(repeats, per_candidate_answer, p, q, candidates),
            "engine_exact_s": _best_of(repeats, engine_answer, p, q, candidates, "exact"),
            "engine_fast_s": _best_of(repeats, engine_answer, p, q, candidates, "fast"),
        }
        results.append(
            {
                "persons": persons,
                "pdocument_size": p.size(),
                "candidates": len(candidates),
                "answers": len(exact),
                **timings,
                "speedup_engine_vs_per_candidate": timings["per_candidate_s"]
                / timings["engine_exact_s"],
                "speedup_fast_vs_exact": timings["engine_exact_s"]
                / timings["engine_fast_s"],
            }
        )
    return {
        "benchmark": "bench_engine",
        "workload": "workloads/synthetic personnel scaling family",
        "query": personnel_query("project0").xpath(),
        "strategies": ["per_candidate", "engine_exact", "engine_fast"],
        "repeats": repeats,
        "fast_vs_exact_max_abs_error": max_abs_error,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / single repeat (CI smoke pass)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"where to write the JSON report (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    sizes = [4, 8] if args.quick else [4, 8, 16, 32]
    report = run(sizes, repeats=1 if args.quick else 3)
    write_report(args.output, report)
    largest = report["results"][-1]
    print(f"wrote {args.output}")
    print(
        f"persons={largest['persons']}: "
        f"engine vs per-candidate ×{largest['speedup_engine_vs_per_candidate']:.1f}, "
        f"fast vs exact ×{largest['speedup_fast_vs_exact']:.1f}, "
        f"max |fast − exact| = {report['fast_vs_exact_max_abs_error']:.2e}"
    )
    if largest["speedup_fast_vs_exact"] <= 1.0:
        print("FAIL: fast backend not faster than exact", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
