"""E15: §7's cost claim — answering from views is no more expensive than
direct evaluation, and intersection-only plans (product f_r, no compensation
re-evaluation) are cheaper than the dynamic programming over the original
p-document.

The personnel family scales Figure 1/2's scenario; the three benchmark
groups share workloads so their columns are directly comparable:

* ``direct``      — ``q(P̂)`` on the original p-document;
* ``via_plan``    — the single-view TP-rewriting evaluated on the extension;
* ``product_fr``  — Theorem 3-style product over precomputed extensions
  (the paper's "operations that should cost significantly less").
"""

import pytest

from repro.prob import query_answer
from repro.rewrite import probabilistic_tp_plan, tpi_rewrite
from repro.views import probabilistic_extension
from repro.workloads.synthetic import (
    personnel_pdocument,
    personnel_query,
    personnel_views,
)

SIZES = [4, 8, 16]


def _setup(persons: int):
    p = personnel_pdocument(persons=persons, projects=3, seed=persons)
    q = personnel_query("project0")
    view = personnel_views()[0]
    ext = probabilistic_extension(p, view)
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None
    return p, q, view, ext, plan


@pytest.mark.paper("§7 cost claim — direct evaluation baseline")
@pytest.mark.parametrize("persons", SIZES)
def test_direct_evaluation(benchmark, report, persons):
    p, q, _, _, _ = _setup(persons)
    answer = benchmark(query_answer, p, q)
    report.append(f"E15 direct persons={persons}: {len(answer)} answers")


@pytest.mark.paper("§7 cost claim — plan over the view extension")
@pytest.mark.parametrize("persons", SIZES)
def test_plan_evaluation(benchmark, report, persons):
    p, q, _, ext, plan = _setup(persons)
    answer = benchmark(plan.evaluate, ext)
    assert answer == query_answer(p, q)  # exactness, not just speed
    report.append(
        f"E15 via-plan persons={persons}: exact, evaluated on the extension only"
    )


@pytest.mark.paper("§7 cost claim — intersection-only product f_r")
@pytest.mark.parametrize("persons", SIZES)
def test_product_fr_evaluation(benchmark, report, persons):
    p = personnel_pdocument(persons=persons, projects=3, seed=persons)
    q = personnel_query("project0")
    views = personnel_views()
    exts = {v.name: probabilistic_extension(p, v) for v in views}
    plan = tpi_rewrite(q, views, exts)
    assert plan is not None
    answer = benchmark(plan.evaluate)
    assert answer == query_answer(p, q)
    report.append(
        f"E15 product-f_r persons={persons}: exact; probability retrieval is "
        "arithmetic over stored view probabilities"
    )
