"""E13: Theorem 4 — selecting pairwise c-independent views is NP-hard.

The reduction instances from k-dimensional perfect matching are solved by
brute-force subset search; the benchmark series charts the blow-up in the
number of hyperedges (the certificate of hardness the paper predicts), while
asserting that every instance is decided *correctly* against the exhaustive
matching solver.
"""

import pytest

from repro.rewrite import find_c_independent_subset
from repro.workloads.hypergraph import (
    has_perfect_matching,
    matching_hypergraph,
    random_hypergraph,
    reduction_query,
    reduction_views,
)


@pytest.mark.paper("Theorem 4: NP-hard view selection (positive instances)")
@pytest.mark.parametrize("extra", [0, 2, 4, 6])
def test_kdpm_reduction_positive(benchmark, report, extra):
    h = matching_hypergraph(k=2, groups=2, extra_edges=extra, seed=extra + 1)
    q = reduction_query(h)
    views = reduction_views(h)
    subset = benchmark(find_c_independent_subset, q, views)
    assert subset is not None
    assert has_perfect_matching(h)
    report.append(
        f"E13 k-DPM m={len(views)} edges: subset of {len(subset)} "
        "c-independent views found (runtime grows exponentially in m)"
    )


@pytest.mark.paper("Theorem 4: NP-hard view selection (negative instances)")
@pytest.mark.parametrize("m", [3, 5, 7])
def test_kdpm_reduction_negative(benchmark, report, m):
    # Random 3-uniform edges over 9 vertices rarely contain a matching for
    # these seeds; assert agreement with the exhaustive solver either way.
    h = random_hypergraph(k=3, s=9, m=m, seed=m * 17 + 1)
    q = reduction_query(h)
    views = reduction_views(h)
    subset = benchmark(find_c_independent_subset, q, views)
    assert (subset is not None) == has_perfect_matching(h)
    verdict = "matching found" if subset else "no matching"
    report.append(f"E13 random 3-uniform m={m}: {verdict}, agrees with solver")
