"""Shared fixtures: the paper's figures, ready-made extensions, RNG."""

from __future__ import annotations

import random

import pytest

from repro.views import View, probabilistic_extension
from repro.workloads import paper


@pytest.fixture
def d_per():
    return paper.d_per()


@pytest.fixture
def p_per():
    return paper.p_per()


@pytest.fixture
def q_rbon():
    return paper.q_rbon()


@pytest.fixture
def q_bon():
    return paper.q_bon()


@pytest.fixture
def v1_bon():
    return View("v1BON", paper.v1_bon())


@pytest.fixture
def v2_bon():
    return View("v2BON", paper.v2_bon())


@pytest.fixture
def ext_v1(p_per, v1_bon):
    return probabilistic_extension(p_per, v1_bon)


@pytest.fixture
def ext_v2(p_per, v2_bon):
    return probabilistic_extension(p_per, v2_bon)


@pytest.fixture
def rng():
    return random.Random(20120827)  # VLDB 2012 started August 27
