"""Integration tests for the theorems' side conditions and edge cases.

These exercise the *decision boundary* of the paper's results: instances
just inside and just outside each theorem's hypotheses.
"""

from fractions import Fraction

from repro.prob import query_answer
from repro.pxml import ind, mux, ordinary, pdoc
from repro.rewrite import probabilistic_tp_plan, tpi_rewrite
from repro.rewrite.decomposition import decompose_views
from repro.tp import ops, parse_pattern
from repro.views import View, probabilistic_extension

F = Fraction


class TestProposition3Boundary:
    def test_interacting_desc_predicate_rejected(self):
        # v' has [.//x] that can reach the compensation's [x] region.
        q = parse_pattern("a/b[x]")
        v = View("v", parse_pattern("a[.//x]/b"))
        assert probabilistic_tp_plan(q, v) is None

    def test_non_interacting_accepted(self):
        # The view predicate is /-bounded strictly above the compensation's.
        q = parse_pattern("a/b[x]")
        v = View("v", parse_pattern("a[y]/b"))
        plan = probabilistic_tp_plan(q, v)
        # comp(a[y]/b, b[x]) = a[y]/b[x] ≢ a/b[x]: Fact 1 fails -> still None.
        assert plan is None

    def test_matching_prefix_accepted(self):
        q = parse_pattern("a[y]/b[x]")
        v = View("v", parse_pattern("a[y]/b"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None and plan.restricted


class TestTheorem1Division:
    def test_out_predicate_division(self):
        """Pr(n∈q) = Pr(n∈qr(Pv)) ÷ Pr(na∈v_(k)) when out(v) has predicates."""
        p = pdoc(ordinary(0, "a",
                          ordinary(1, "b",
                                   ind(2, (ordinary(3, "c"), "0.5")),
                                   ind(4, (ordinary(5, "d"), "0.5")))))
        q = parse_pattern("a/b[c][d]")
        v = View("v", parse_pattern("a/b[c]"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None
        ext = probabilistic_extension(p, v)
        # selection already contains Pr([c]) = 0.5; f_r must divide it away
        # before re-counting it via the compensation.
        assert ext.selection == {1: F(1, 2)}
        assert plan.evaluate(ext) == {1: F(1, 4)} == query_answer(p, q)


class TestTheorem2Boundary:
    def test_predicate_on_first_token_node_rejected(self):
        q = parse_pattern("a//b[e]/c/b/c//d")
        v = View("v", parse_pattern("a//b[e]/c/b/c"))
        assert probabilistic_tp_plan(q, v) is None

    def test_predicate_on_later_token_node_accepted(self):
        # u = 2; predicates allowed from the u-th token node on.
        q = parse_pattern("a//b/c[e]/b/c//d")
        v = View("v", parse_pattern("a//b/c[e]/b/c"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None and plan.u == 2

    def test_theorem2_numbers_on_overlapping_images(self):
        """A document where the view's token images genuinely overlap."""
        q = parse_pattern("a//b/c/b/c//d")
        v = View("v", parse_pattern("a//b/c/b/c"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None
        # Spine a/b/c/b/c/b/c with gated tail and an extra d under each c.
        p = pdoc(ordinary(0, "a",
                 ordinary(1, "b",
                 ordinary(2, "c",
                 ordinary(3, "b",
                 ordinary(4, "c",
                          ind(5, (ordinary(6, "b",
                                   ordinary(7, "c",
                                            ind(8, (ordinary(9, "d"), "0.5")))),
                                  "0.5"))))))))
        ext = probabilistic_extension(p, v)
        assert plan.evaluate(ext) == query_answer(p, q)


class TestLinearSystemBoundaries:
    def test_redundant_views_keep_system_solvable(self):
        q = parse_pattern("a[1]/b/c")
        tagged = [
            ("w1", parse_pattern("a[1]/b/c")),
            ("w2", parse_pattern("a[1]/b/c")),  # duplicate view
            ("w3", parse_pattern("a/b/c")),
        ]
        system = decompose_views(q, tagged)
        assert system.solvable()

    def test_desc_main_branch_views(self):
        q = parse_pattern("a[1]//c")
        tagged = [("w1", parse_pattern("a[1]//c")), ("w2", parse_pattern("a//c"))]
        system = decompose_views(q, tagged)
        cert = system.certificate()
        assert cert is not None
        assert cert["w1"] == 1 and cert["w2"] == 0


class TestMuxCorrelationEndToEnd:
    def test_mux_made_dependence_is_caught_by_refusal(self):
        """A mux makes the view predicate and compensation predicate
        mutually exclusive; TPrewrite must refuse, and indeed no function of
        the extension can be correct (we verify with two documents)."""
        q = parse_pattern("a/b[c]")
        v = View("v", parse_pattern("a[.//c]/b"))
        assert probabilistic_tp_plan(q, v) is None
        p_corr = pdoc(ordinary(0, "a",
                               mux(1, (ordinary(2, "c"), "0.5"),
                                      (ordinary(3, "b", ordinary(4, "c")), "0.5"))))
        # In the correlated document, q selects b only when the mux picks b.
        assert query_answer(p_corr, q) == {3: F(1, 2)}
