"""Integration tests reproducing every worked example of the paper.

Each test regenerates the numbers printed in the paper *exactly* (all
arithmetic is rational).  The experiment index in DESIGN.md maps these to
the benchmark harness; the tests are the correctness gate.
"""

from fractions import Fraction

from repro.prob import (
    intersection_answer,
    node_probability,
    query_answer,
)
from repro.pxml.worlds import enumerate_worlds, world_probability
from repro.rewrite import probabilistic_tp_plan, theorem3_plan, tpi_rewrite
from repro.rewrite.multi_view import Theorem3Member
from repro.tp import equivalent, evaluate, ops, parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads import paper

F = Fraction


class TestExample1and3:
    def test_document_of_figure1(self, d_per):
        assert d_per.name == "IT-personnel"
        assert d_per.size() == 17

    def test_example3_run_probability(self, p_per, d_per):
        """Pr(d_PER) = 0.75 × 0.9 × 0.7 × 1 × 1 = 0.4725."""
        assert world_probability(p_per, d_per) == F(4725, 10000)

    def test_px_space_is_a_probability_space(self, p_per):
        worlds = enumerate_worlds(p_per)
        assert sum(pr for _, pr in worlds) == 1


class TestExample5:
    def test_deterministic_results(self, d_per):
        assert evaluate(paper.q_rbon(), d_per) == {5}
        assert evaluate(paper.q_bon(), d_per) == {5}
        assert evaluate(paper.v1_bon(), d_per) == {5}
        assert evaluate(paper.v2_bon(), d_per) == {5, 7}


class TestExample6:
    def test_probabilistic_results(self, p_per):
        assert query_answer(p_per, paper.q_bon()) == {5: F(9, 10)}
        assert query_answer(p_per, paper.v1_bon()) == {5: F(3, 4)}
        assert query_answer(p_per, paper.q_rbon()) == {5: F(9, 10) * F(3, 4)}
        assert query_answer(p_per, paper.v2_bon()) == {5: F(1), 7: F(1)}


class TestExample8:
    def test_view_extension_structure(self, ext_v1):
        """Figure 4, right: one bonus subtree with probability 0.75."""
        assert ext_v1.pdocument.name == "doc(v1BON)"
        assert ext_v1.selection == {5: F(3, 4)}
        sub = ext_v1.result_subdocument(5)
        assert {"laptop", "pda"} <= {n.label for n in sub.ordinary_nodes()}

    def test_v2_extension(self, ext_v2):
        assert ext_v2.selection == {5: F(1), 7: F(1)}


class TestExample9and10:
    def test_splitting(self):
        q = paper.q_rbon()
        assert equivalent(
            ops.prefix(q, 2),
            parse_pattern("IT-personnel//person[name/Rick][bonus/laptop]"),
        )
        assert ops.suffix(q, 2) == parse_pattern("person[name/Rick]/bonus[laptop]")
        tokens = ops.tokens(q)
        assert [t.xpath() for t in tokens] == [
            "IT-personnel", "person[name/Rick]/bonus[laptop]",
        ]
        assert equivalent(ops.q_prime(q, 3),
                          parse_pattern("IT-personnel//person[name/Rick]/bonus"))
        assert ops.q_double_prime(q, 3) == parse_pattern(
            "IT-personnel//person/bonus[laptop]")
        assert ops.v_prime(paper.v1_bon()) == paper.v1_bon()


class TestExample11:
    """Deterministic rewriting exists; probabilistic rewriting does not."""

    def test_deterministic_rewriting_exists(self):
        q, v = paper.example11_query(), paper.example11_view()
        assert equivalent(ops.compensation(v, ops.suffix(q, 2)), q)

    def test_true_probabilities_differ(self):
        q = paper.example11_query()
        assert node_probability(paper.p1_example11(), q, 3) == F(13, 40)
        assert node_probability(paper.p2_example11(), q, 3) == F(1, 2)

    def test_view_cannot_distinguish(self):
        """(P̂1)_v = (P̂2)_v — the footnote's 0.65 = 1−(1−0.3)(1−0.5)."""
        v = View("v", paper.example11_view())
        ext1 = probabilistic_extension(paper.p1_example11(), v)
        ext2 = probabilistic_extension(paper.p2_example11(), v)
        assert ext1.selection == {3: F(13, 20)} == ext2.selection
        assert ext1.pdocument == ext2.pdocument

    def test_no_probabilistic_plan(self):
        assert probabilistic_tp_plan(
            paper.example11_query(), View("v", paper.example11_view())
        ) is None


class TestExample12:
    """The prefix-suffix obstruction for unrestricted rewritings."""

    def test_u_equals_two(self):
        token = ops.last_token(paper.example12_view())
        assert ops.token_label_sequence(token) == ["b", "c", "b", "c"]
        assert ops.max_prefix_suffix(["b", "c", "b", "c"]) == 2

    def test_true_probabilities(self):
        q = paper.example12_query()
        assert node_probability(paper.p3_example12(), q, 12) == F(288, 1000)
        assert node_probability(paper.p4_example12(), q, 12) == F(264, 1000)

    def test_view_answers_match(self):
        """n_c1 selected with 0.12 and n_c2 with 0.24 in both documents."""
        v = paper.example12_view()
        for p in (paper.p3_example12(), paper.p4_example12()):
            assert query_answer(p, v) == {9: F(12, 100), 11: F(24, 100)}

    def test_extensions_indistinguishable(self):
        view = View("v", paper.example12_view())
        ext3 = probabilistic_extension(paper.p3_example12(), view)
        ext4 = probabilistic_extension(paper.p4_example12(), view)
        assert ext3.pdocument == ext4.pdocument

    def test_no_probabilistic_plan(self):
        assert probabilistic_tp_plan(
            paper.example12_query(), View("v", paper.example12_view())
        ) is None


class TestExample13:
    def test_restricted_rewriting(self, p_per, v2_bon, ext_v2):
        plan = probabilistic_tp_plan(paper.q_bon(), v2_bon)
        assert plan is not None and plan.restricted
        # Pr(n5 ∈ qBON) = Pr(n5 ∈ qr(Pv)) ÷ Pr(n5 ∈ v_(3)) = 0.9 ÷ 1.
        assert plan.fr(ext_v2, 5) == F(9, 10)
        # "For all other nodes ni the probability is 0."
        assert plan.evaluate(ext_v2) == {5: F(9, 10)}


class TestExample15:
    def test_product_formula(self, p_per, v1_bon, v2_bon):
        exts = {
            "v1BON": probabilistic_extension(p_per, v1_bon),
            "v2BON": probabilistic_extension(p_per, v2_bon),
        }
        plan = theorem3_plan(
            paper.q_rbon(),
            [Theorem3Member("v1BON", v1_bon),
             Theorem3Member("v", v2_bon, compensation_depth=3)],
            exts,
        )
        assert plan is not None
        # 0.75 × 0.9 ÷ 1 = 0.675.
        assert plan.fr(5) == F(75, 100) * F(9, 10)
        assert plan.evaluate() == {5: F(27, 40)}

    def test_matches_direct_intersection(self, p_per):
        direct = intersection_answer(
            p_per,
            [paper.v1_bon(), parse_pattern("IT-personnel//person/bonus[laptop]")],
        )
        assert direct == {5: F(27, 40)}


class TestExample16:
    def test_certificate_and_answer(self):
        from repro.pxml import ind, ordinary, pdoc

        q = paper.example16_query()
        p = pdoc(ordinary(0, "a",
                          ind(10, (ordinary(11, "1"), "0.9")),
                          ordinary(1, "b",
                                   ind(20, (ordinary(21, "2"), "0.8")),
                                   ordinary(2, "c",
                                            ind(30, (ordinary(31, "3"), "0.7")),
                                            ordinary(3, "d")))))
        views = [View(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        plan = tpi_rewrite(q, views, exts)
        assert plan is not None
        assert plan.exponents == {
            "v1": F(1, 2), "v2": F(1, 2), "v3": F(1, 2), "v4": F(-1, 2),
        }
        expected = {3: F(9, 10) * F(8, 10) * F(7, 10)}
        assert plan.evaluate() == expected == query_answer(p, q)
