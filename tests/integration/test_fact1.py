"""Integration tests for Fact 1 / Proposition 1: node retrieval equivalence.

``Pr(n ∈ q(P)) > 0  ⟺  Pr(n ∈ q_r(P_v)) > 0`` whenever
``q_r = comp(doc(v)/lbl(v), q_(k))`` is a deterministic TP-rewriting.
"""

import random

from repro.prob import boolean_probability, query_answer
from repro.rewrite import fact1_holds, fact1_reformulation_holds
from repro.tp import ops, parse_pattern
from repro.views import View, probabilistic_extension
from repro.views.view import doc_label
from repro.workloads import paper
from repro.workloads.synthetic import prefix_views, random_pdocument


def extension_pattern(view: View, q):
    head = parse_pattern(f"{doc_label(view.name)}/{view.pattern.out.label}")
    return ops.compensation(head, ops.suffix(q, view.pattern.main_branch_length()))


def anchored_probability(ext, qr, n):
    """``Pr(out(q_r) ↦ a copy of n)`` via provenance anchor sets."""
    return boolean_probability(
        ext.pdocument, qr, anchors={qr.out: ext.occurrence_copies(n)}
    )


class TestProposition1:
    def test_on_paper_fixture(self, p_per):
        q = paper.q_rbon()
        view = View("v1", paper.v1_bon())
        assert fact1_holds(q, view.pattern)
        ext = probabilistic_extension(p_per, view)
        qr = extension_pattern(view, q)
        direct = query_answer(p_per, q)
        for n in (5, 7, 4, 24):
            via_view = anchored_probability(ext, qr, n)
            assert (direct.get(n, 0) > 0) == (via_view > 0)

    def test_on_random_instances(self):
        rng = random.Random(99)
        q = parse_pattern("a//b[c]/d")
        view = View("v", parse_pattern("a//b[c]"))
        assert fact1_holds(q, view.pattern)
        qr = extension_pattern(view, q)
        checked = 0
        for trial in range(25):
            p = random_pdocument(rng, labels=("a", "b", "c", "d"), max_depth=4)
            direct = query_answer(p, q)
            ext = probabilistic_extension(p, view)
            for n in [node.node_id for node in p.ordinary_nodes()]:
                via = anchored_probability(ext, qr, n)
                assert (direct.get(n, 0) > 0) == (via > 0)
                checked += 1
        assert checked > 50


class TestFact1Criteria:
    def test_both_formulations_agree_on_random_pairs(self, rng):
        from repro.workloads.synthetic import random_tree_pattern

        agreements = 0
        for _ in range(60):
            q = random_tree_pattern(rng, mb_length=rng.randint(2, 4))
            v = random_tree_pattern(rng, mb_length=rng.randint(1, 4))
            assert fact1_holds(q, v) == fact1_reformulation_holds(q, v)
            agreements += 1
        assert agreements == 60

    def test_prefix_views_always_rewrite(self, rng):
        from repro.workloads.synthetic import random_tree_pattern

        for _ in range(20):
            q = random_tree_pattern(rng, mb_length=rng.randint(2, 4))
            for view in prefix_views(q):
                assert fact1_holds(q, view.pattern)
