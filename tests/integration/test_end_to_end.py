"""End-to-end integration: rewritings recover exact probabilities on
realistic scaled workloads, reading only the view extensions."""

from repro.prob import query_answer
from repro.rewrite import probabilistic_tp_plan, tpi_rewrite, tp_rewrite
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads.synthetic import (
    personnel_pdocument,
    personnel_query,
    personnel_views,
)


class TestPersonnelScenario:
    def test_single_view_plan_exact(self):
        p = personnel_pdocument(persons=5, projects=3, seed=11)
        q = personnel_query("project0")
        view = personnel_views()[0]  # Rick's bonuses
        plan = probabilistic_tp_plan(q, view)
        assert plan is not None
        ext = probabilistic_extension(p, view)
        assert plan.evaluate(ext) == query_answer(p, q)

    def test_only_rick_view_yields_a_plan(self):
        # allbonus loses [name/Rick] above the compensation depth
        # (Corollary 1: v' must be ≡ q'), so only rickbonus rewrites.
        q = personnel_query("project1")
        plans = tp_rewrite(q, personnel_views())
        assert {plan.view.name for plan in plans} == {"rickbonus"}

    def test_plans_agree_with_each_other(self):
        p = personnel_pdocument(persons=4, projects=2, seed=23)
        q = personnel_query("project0")
        plans = tp_rewrite(q, personnel_views())
        answers = []
        for plan in plans:
            ext = probabilistic_extension(p, plan.view)
            answers.append(plan.evaluate(ext))
        assert all(a == answers[0] for a in answers)
        assert answers[0] == query_answer(p, q)

    def test_tpi_rewrite_on_personnel(self):
        p = personnel_pdocument(persons=3, projects=2, seed=7)
        q = personnel_query("project0")
        views = personnel_views()
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        plan = tpi_rewrite(q, views, exts)
        assert plan is not None
        assert plan.evaluate() == query_answer(p, q)


class TestMixedWorkload:
    def test_deep_query_through_shallow_view(self):
        p = personnel_pdocument(persons=3, projects=3, seed=5)
        q = parse_pattern(
            "IT-personnel//person[name/Rick]/bonus[project0][project1]"
        )
        view = View("allbonus", parse_pattern("IT-personnel//person/bonus"))
        plan = probabilistic_tp_plan(q, view)
        assert plan is None or plan.view.name == "allbonus"
        if plan is not None:
            ext = probabilistic_extension(p, view)
            assert plan.evaluate(ext) == query_answer(p, q)

    def test_view_equals_query(self):
        p = personnel_pdocument(persons=2, projects=2, seed=2)
        q = personnel_query("project0")
        view = View("self", q)
        plan = probabilistic_tp_plan(q, view)
        assert plan is not None
        ext = probabilistic_extension(p, view)
        assert plan.evaluate(ext) == query_answer(p, q)
