"""Unit tests for the persistent structural memo store subsystem.

Covers the tentpole guarantees: structural digests identify subtrees by
shape (not Ids), cost-aware LRU eviction keeps hot high-weight entries
under pressure, the SQLite tier round-trips exact and float payloads
across reopen, corrupted store files degrade to memory-only with a
warning, and sessions sharing a store reuse work across isomorphic
subtrees, across documents and across (simulated) restarts.
"""

import warnings
from fractions import Fraction

import pytest

from repro.prob import EvaluationEngine, QuerySession, query_answer
from repro.pxml import ind, mux, ordinary, pdoc
from repro.store import (
    GATE_BLOCKED,
    InMemoryStore,
    SqliteStore,
    SubtreeKeyer,
    open_store,
)
from repro.tp import parse_pattern
from repro.workloads import paper
from repro.workloads.synthetic import batch_workload


def person(i: int, name: str = "Rick", project: str = "project0"):
    """A person subtree; same arguments ⇒ isomorphic (digest-equal)."""
    base = 100 * i
    return ordinary(
        base, "person",
        ordinary(base + 1, "name",
                 mux(base + 2, (ordinary(base + 3, name), "0.5"))),
        ordinary(base + 4, "bonus",
                 ind(base + 5,
                     (ordinary(base + 6, project, ordinary(base + 7, "42")),
                      "0.8"))),
    )


class TestStructuralDigest:
    def test_isomorphic_subtrees_share_digest(self):
        p = pdoc(ordinary(1, "IT-personnel", person(1), person(2)))
        assert p.structural_digest(100) == p.structural_digest(200)
        assert p.subtree_size(100) == p.subtree_size(200)

    def test_digest_ignores_node_ids_and_child_order(self):
        p1 = pdoc(ordinary(1, "IT-personnel", person(1), person(2, name="Ann")))
        p2 = pdoc(ordinary(9, "IT-personnel", person(7, name="Ann"), person(3)))
        assert p1.document_digest == p2.document_digest

    def test_digest_sensitive_to_labels_kinds_probabilities(self):
        base = pdoc(ordinary(1, "a", person(1))).document_digest
        relabeled = pdoc(ordinary(1, "a", person(1, name="Ann"))).document_digest
        reweighted = pdoc(ordinary(1, "a", person(1)))
        node = reweighted.node(102)
        assert node.probabilities is not None
        node.probabilities[103] = Fraction(1, 4)
        reweighted.mark_mutated()
        assert len({base, relabeled, reweighted.document_digest}) == 3
        ind_doc = pdoc(ordinary(1, "a", ind(2, (ordinary(3, "b"), "0.5"))))
        mux_doc = pdoc(ordinary(1, "a", mux(2, (ordinary(3, "b"), "0.5"))))
        assert ind_doc.document_digest != mux_doc.document_digest

    def test_mutation_epoch_invalidates_cached_digest(self):
        p = pdoc(ordinary(1, "a", person(1)))
        before = p.document_digest
        p.node(103).label = "Morty"
        p.mark_mutated()
        assert p.document_digest != before

    def test_subtree_size_counts_all_node_kinds(self, p_per):
        _, sizes = p_per.structural_index()
        assert sizes[p_per.root.node_id] == p_per.size()


class TestInMemoryStore:
    KEY = ("s0", "f0", None, None, "exact")

    def test_get_put_roundtrip_and_counters(self):
        store = InMemoryStore()
        assert store.get(self.KEY) is None
        distribution = {0: Fraction(1, 2), 3: Fraction(1, 2)}
        store.put(self.KEY, distribution, weight=10)
        assert store.get(self.KEY) is distribution
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["puts"] == 1 and stats["entries"] == 1
        assert stats["weight"] == 10

    def test_cost_aware_eviction_keeps_hot_heavy_entry(self):
        store = InMemoryStore(max_weight=100)
        heavy = ("heavy", "f", None, None, "exact")
        store.put(heavy, {0: 1}, weight=50)
        for i in range(30):
            store.put((f"light{i}", "f", None, None, "exact"), {0: 1}, weight=10)
            assert store.get(heavy) is not None  # kept hot
        assert store.evictions > 0
        assert store.weight <= 100
        # the oldest light entries were evicted around the surviving heavy one
        assert store.get(("light0", "f", None, None, "exact")) is None

    def test_aging_eventually_evicts_cold_heavy_entry(self):
        store = InMemoryStore(max_weight=100)
        store.put(("heavy", "f", None, None, "exact"), {0: 1}, weight=50)
        for i in range(30):  # never touched again: the clock catches up
            store.put((f"light{i}", "f", None, None, "exact"), {0: 1}, weight=10)
        assert store.get(("heavy", "f", None, None, "exact")) is None

    def test_max_entries_cap(self):
        store = InMemoryStore(max_entries=8)
        for i in range(40):
            store.put((f"s{i}", "f", None, None, "exact"), {0: 1}, weight=1)
        assert len(store) <= 8

    def test_put_replaces_entry_in_place(self):
        store = InMemoryStore()
        store.put(self.KEY, {0: 1}, weight=5)
        store.put(self.KEY, {0: 2}, weight=9)
        assert store.get(self.KEY) == {0: 2}
        assert len(store) == 1 and store.weight == 9

    def test_clear(self):
        store = InMemoryStore()
        store.put(self.KEY, {0: 1}, weight=5)
        store.clear()
        assert len(store) == 0 and store.weight == 0
        assert store.get(self.KEY) is None

    def test_contains_counts_nothing(self):
        store = InMemoryStore()
        assert not store.contains(self.KEY)
        store.put(self.KEY, {0: 1})
        assert store.contains(self.KEY)
        assert store.stats()["hits"] == 0 and store.stats()["misses"] == 0


class TestSqliteStore:
    EXACT = {0: Fraction(2, 3), (1 << 130) | 5: Fraction(123456789, 987654321)}
    FAST = {0: 0.25, 7: 0.75}

    def test_roundtrip_across_reopen(self, tmp_path):
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        store.put(("s", "f", None, GATE_BLOCKED, "exact"), self.EXACT, weight=12)
        store.put(("s", "f", None, None, "fast"), self.FAST, weight=4)
        store.close()
        reopened = SqliteStore(path)
        exact = reopened.get(("s", "f", None, GATE_BLOCKED, "exact"))
        fast = reopened.get(("s", "f", None, None, "fast"))
        assert exact == self.EXACT
        assert all(isinstance(v, Fraction) for v in exact.values())
        assert fast == self.FAST
        assert all(isinstance(v, float) for v in fast.values())
        assert len(reopened) == 2

    def test_lazy_point_lookups(self, tmp_path):
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        store.put(("s", "f", None, None, "exact"), self.EXACT)
        store.close()
        lazy = SqliteStore(path, preload=False)
        assert lazy.get(("s", "f", None, None, "exact")) == self.EXACT
        assert lazy.get(("absent", "f", None, None, "exact")) is None
        assert lazy.stats()["hits"] == 1 and lazy.stats()["misses"] == 1

    def test_non_serializable_values_stay_in_memory(self, tmp_path):
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        store.put(("s", "f", None, None, "custom"), {0: object()})
        assert store.get(("s", "f", None, None, "custom")) is not None
        store.close()
        assert SqliteStore(path).get(("s", "f", None, None, "custom")) is None

    def test_corrupted_file_degrades_with_warning(self, tmp_path):
        path = tmp_path / "memo.db"
        path.write_bytes(b"this is definitely not a sqlite database......")
        with pytest.warns(RuntimeWarning, match="continuing without"):
            store = SqliteStore(path)
        assert store.degraded
        # still a functioning (memory-only) store
        store.put(("s", "f", None, None, "exact"), self.EXACT, weight=2)
        assert store.get(("s", "f", None, None, "exact")) == self.EXACT
        assert store.stats()["degraded"] is True
        store.close()

    def test_clear_drops_persisted_entries(self, tmp_path):
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        store.put(("s", "f", None, None, "exact"), self.EXACT)
        store.clear()
        store.close()
        assert len(SqliteStore(path)) == 0

    def test_open_store_helper(self, tmp_path):
        assert isinstance(open_store(), InMemoryStore)
        store = open_store(str(tmp_path / "memo.db"))
        assert isinstance(store, SqliteStore)
        store.close()


class TestSubtreeKeyer:
    def test_anchored_restriction_gets_position_key(self, p_per):
        q = paper.q_bon()
        anchored = EvaluationEngine(p_per, [q], {q.out: 5})
        plain = EvaluationEngine(p_per, [q])
        labels = p_per.label_index()
        root_labels = labels[p_per.root.node_id]
        anchored_keyer = SubtreeKeyer(p_per, anchored, anchored.backend)
        plain_keyer = SubtreeKeyer(p_per, plain, plain.backend)
        key = anchored_keyer.store_key(1, root_labels, GATE_BLOCKED)
        assert key is not None and key[4] == "exact"
        # one anchor slot, one admissible node, located by its rank path
        assert key[2] == ((p_per.anchor_index()[5],),)
        plain_key = plain_keyer.store_key(1, root_labels, GATE_BLOCKED)
        assert plain_key is not None and plain_key[2] is None
        assert key != plain_key

    def test_node_keyed_baseline_gets_no_store_key(self, p_per):
        q = paper.q_bon()
        anchored = EvaluationEngine(p_per, [q], {q.out: 5})
        keyer = SubtreeKeyer(
            p_per, anchored, anchored.backend, anchored=False
        )
        root_labels = p_per.label_index()[p_per.root.node_id]
        assert keyer.store_key(1, root_labels, GATE_BLOCKED) is None
        token, is_local, is_anchored = keyer.token(
            1, root_labels, GATE_BLOCKED
        )
        assert is_local and is_anchored and token[0] == 1

    def test_anchor_outside_subtree_encodes_empty_slot(self, p_per):
        # Anchor node 5 (person 1's bonus) lies outside person 2's
        # subtree: the slot encodes as the empty position tuple — pinned
        # to nothing there, shareable with any isomorphic twin subtree
        # whose anchor also lies elsewhere.
        q = paper.q_bon()
        engine = EvaluationEngine(p_per, [q], {q.out: 5})
        keyer = SubtreeKeyer(p_per, engine, engine.backend)
        person2_labels = p_per.label_index()[3]
        key = keyer.store_key(3, person2_labels, GATE_BLOCKED)
        assert key is not None and key[2] == ((),)

    def test_gate_collapses_for_out_insensitive_restriction(self, p_per):
        engine = EvaluationEngine(p_per, [paper.q_bon()])
        keyer = SubtreeKeyer(p_per, engine, engine.backend)
        # the mux subtree under person 2's bonus holds "laptop" (a table
        # label) but not "bonus" (the output label): blocked and unpinned
        # evaluations coincide, so the gate collapses to None
        mux_labels = p_per.label_index()[21]
        assert "laptop" in mux_labels and "bonus" not in mux_labels
        key = keyer.store_key(21, mux_labels, GATE_BLOCKED)
        assert key is not None and key[3] is None


class TestStoreBackedEvaluation:
    def test_isomorphic_subtrees_hit_on_first_cold_pass(self):
        p = pdoc(ordinary(1, "IT-personnel", person(1), person(2), person(3)))
        q = parse_pattern("IT-personnel//person[name/Rick]/bonus")
        session = QuerySession(p)
        answer = session.answer(q)
        assert answer == query_answer(p, q)
        assert session.store is not None
        # persons 2 and 3 reuse person 1's name-subtree evaluation (the
        # bonus subtrees are candidate-bearing and stay live)
        assert session.store.stats()["hits"] > 0

    def test_store_shared_across_documents(self):
        q = parse_pattern("IT-personnel//person[name/Rick]/bonus")
        store = InMemoryStore()
        p1 = pdoc(ordinary(1, "IT-personnel", person(1), person(2, "Ann")))
        p2 = pdoc(ordinary(1, "IT-personnel",
                           person(1), person(2, "Ann"), person(3, "Bob")))
        first = QuerySession(p1, store=store)
        assert first.answer(q) == query_answer(p1, q)
        second = QuerySession(p2, store=store)
        hits_before = store.stats()["hits"]
        assert second.answer(q) == query_answer(p2, q)
        assert store.stats()["hits"] > hits_before
        assert second.stats.memo_hits > 0  # cold session, warm store

    def test_sqlite_store_warm_from_disk(self, tmp_path):
        path = tmp_path / "memo.db"
        p, queries = batch_workload(persons=4, projects=2, seed=3)
        store = SqliteStore(path)
        expected = QuerySession(p, store=store).answer_many(queries)
        store.close()
        reopened = SqliteStore(path)
        fresh = QuerySession(p, store=reopened)
        assert fresh.answer_many(queries) == expected
        assert fresh.stats.memo_hits > 0
        assert fresh.stats.memo_misses == 0  # fully warm from disk
        assert reopened.puts == 0  # and no redundant re-writes either
        reopened.close()

    def test_engine_store_reuse_across_instances(self, p_per):
        store = InMemoryStore()
        q = paper.q_bon()
        first = query_answer(p_per, q, store=store)
        stats = {}
        second = query_answer(p_per, q, stats=stats, store=store)
        assert first == second == query_answer(p_per, q)
        assert stats["node_visits"] < p_per.size()  # subtrees skipped

    def test_mutation_keeps_untouched_structural_entries(self):
        p = pdoc(ordinary(1, "IT-personnel", person(1), person(2, "Ann")))
        q = parse_pattern("IT-personnel//person[name/Rick]/bonus")
        session = QuerySession(p)
        session.answer(q)
        node = p.node(102)  # person 1's name mux
        assert node.probabilities is not None
        node.probabilities[103] = Fraction(1, 4)
        p.mark_mutated()
        hits_before = session.store.stats()["hits"]
        assert session.answer(q) == query_answer(p, q)
        # person 2's subtrees kept their digests and still hit the store
        assert session.store.stats()["hits"] > hits_before

    def test_invalidate_recovers_from_unmarked_mutation(self):
        # invalidate() must restore correctness even when an in-place
        # mutation forgot mark_mutated(): it bumps the epoch itself, so
        # stale digests/label maps are re-derived.
        p = pdoc(ordinary(1, "IT-personnel", person(1), person(2, "Ann")))
        q = parse_pattern("IT-personnel//person[name/Rick]/bonus")
        session = QuerySession(p)
        session.answer(q)
        p.node(203).label = "Rick"  # person 2 becomes a Rick — unmarked!
        session.invalidate()
        assert session.answer(q) == query_answer(p, q)
        assert len(query_answer(p, q)) == 2  # both bonuses now answer

    def test_lazy_mode_repairs_undecodable_rows(self, tmp_path):
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        key = ("s", "f", None, None, "exact")
        store.put(key, {0: Fraction(1)})
        store.close()
        import sqlite3

        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE memo SET payload = '{\"v\": 99, \"d\": []}'")
        lazy = SqliteStore(path, preload=False)
        assert lazy.get(key) is None  # miss: poisoned row is dropped...
        assert not lazy.contains(key)  # ...so contains agrees
        lazy.put(key, {0: Fraction(1, 2)})  # and the writer repairs it
        lazy.close()
        assert SqliteStore(path).get(key) == {0: Fraction(1, 2)}

    def test_invalidate_clears_owned_store_only(self, p_per):
        owned = QuerySession(p_per)
        owned.answer(paper.q_bon())
        assert owned.memo_size > 0
        owned.invalidate()
        assert owned.memo_size == 0
        shared_store = InMemoryStore()
        shared = QuerySession(p_per, store=shared_store)
        shared.answer(paper.q_bon())
        entries = len(shared_store)
        assert entries > 0
        shared.invalidate()
        assert len(shared_store) == entries  # shared stores are kept

    def test_memoize_false_uses_no_store(self, p_per):
        session = QuerySession(p_per, memoize=False)
        assert session.store is None
        assert session.answer(paper.q_bon()) == query_answer(
            p_per, paper.q_bon()
        )
        assert session.memo_size == 0

    def test_memoize_false_rejects_explicit_store(self, p_per):
        with pytest.raises(ValueError, match="memoize=False"):
            QuerySession(p_per, memoize=False, store=InMemoryStore())

    def test_rewrite_plans_share_the_cache_store(self, p_per):
        from repro.cache import AnswerSource, RewritingCache
        from repro.views.view import View

        store = InMemoryStore()
        cache = RewritingCache(p_per, store=store)
        cache.materialize(View("v1", paper.v1_bon()))
        entries_before = len(store)
        answer = cache.answer(paper.q_rbon())
        assert answer.source is AnswerSource.SINGLE_VIEW
        # the plan's sessions over the extension document filled the
        # shared store (not a private one)
        assert len(store) > entries_before
        hits_before = store.stats()["hits"]
        repeat = cache.answer(paper.q_rbon())
        assert repeat.answer == answer.answer
        assert store.stats()["hits"] > hits_before

    def test_no_warning_on_healthy_store(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = SqliteStore(tmp_path / "memo.db")
            store.put(("s", "f", None, None, "exact"), {0: Fraction(1)})
            store.close()


class TestAnchorPositions:
    def test_rank_paths_match_across_isomorphic_documents(self):
        # Same shapes, different Ids and sibling order: corresponding
        # nodes get equal rank paths (ranks follow digest sort keys).
        p1 = pdoc(ordinary(1, "IT-personnel", person(1), person(2, "Ann")))
        p2 = pdoc(ordinary(9, "IT-personnel", person(7, "Ann"), person(3)))
        pos1, pos2 = p1.anchor_index(), p2.anchor_index()
        assert pos1[1] == pos2[9] == ()
        # person(i) ≅ person(3), person(i, "Ann") ≅ person(7, "Ann")
        assert pos1[100] == pos2[300]
        assert pos1[200] == pos2[700]
        assert pos1[103] == pos2[303]  # the "Rick" leaves correspond

    def test_positions_cover_document_and_respect_epoch(self, p_per):
        positions = p_per.anchor_index()
        assert set(positions) == {n.node_id for n in p_per.nodes()}
        assert p_per.anchor_index() is positions  # epoch-cached
        p_per.mark_mutated()
        assert p_per.anchor_index() is not positions

    def test_digest_equal_subtrees_give_equal_relative_positions(self):
        p = pdoc(ordinary(1, "IT-personnel", person(1), person(2)))
        positions = p.anchor_index()
        # strip the person-root prefix: the twins' interiors align
        base1, base2 = positions[100], positions[200]
        rel1 = {positions[nid][len(base1):] for nid in (101, 102, 103)}
        rel2 = {positions[nid][len(base2):] for nid in (201, 202, 203)}
        assert rel1 == rel2


class TestAnchoredStoreBacked:
    def test_anchored_entries_shared_across_sessions(self, p_per):
        q = paper.q_bon()
        store = InMemoryStore()
        first = QuerySession(p_per, store=store)
        got = first.node_probability(q, 5)
        assert got == query_answer(p_per, q)[5]
        assert store.anchored_puts > 0
        hits_before = store.anchored_hits
        second = QuerySession(p_per, store=store)  # fresh session, no local
        assert second.node_probability(q, 5) == got
        assert store.anchored_hits > hits_before
        assert second.stats.anchored_hits > 0

    def test_node_keyed_baseline_keeps_anchored_entries_local(self, p_per):
        q = paper.q_bon()
        store = InMemoryStore()
        session = QuerySession(p_per, store=store, anchored_store=False)
        expected = query_answer(p_per, q)[5]
        assert session.node_probability(q, 5) == expected
        assert store.anchored_puts == 0  # nothing anchored reached the store
        assert session.node_probability(q, 5) == expected
        assert session.stats.anchored_hits > 0  # served by the local memo

    def test_local_memo_evicts_cost_aware_not_clear_all(self, p_per):
        q = paper.q_bon()
        session = QuerySession(
            p_per, store=InMemoryStore(), anchored_store=False, memo_limit=4
        )
        for node_id in (5, 7, 5, 7):
            assert session.node_probability(q, node_id) == query_answer(
                p_per, q
            ).get(node_id, 0)
        assert session._local is not None
        assert len(session._local) <= 4
        assert session.stats.invalidations == 0  # no coarse purge events

    def test_anchored_sqlite_roundtrip_across_restart(self, tmp_path, p_per):
        q = paper.q_bon()
        path = tmp_path / "memo.db"
        store = SqliteStore(path)
        expected = QuerySession(p_per, store=store).node_probability(q, 5)
        assert store.stats()["anchored_entries"] > 0
        store.close()
        reopened = SqliteStore(path)
        fresh = QuerySession(p_per, store=reopened)
        assert fresh.node_probability(q, 5) == expected
        assert reopened.anchored_hits > 0
        assert fresh.stats.memo_misses == 0  # fully warm from disk
        reopened.close()

    def test_anchor_codec_roundtrip(self):
        from repro.store.sqlite import _decode_anchor, _encode_anchor

        for anchor in (
            None,
            ((),),                       # one slot, pinned to nothing
            (((),),),                    # one slot, anchored at the root
            (((0, 2), (1,)), ()),        # two slots, mixed
        ):
            assert _decode_anchor(_encode_anchor(anchor)) == anchor
        with pytest.raises(ValueError):
            _decode_anchor("99;@0")  # future codec version -> miss

    def test_pre_anchor_schema_is_migrated(self, tmp_path):
        import sqlite3

        path = tmp_path / "memo.db"
        with sqlite3.connect(path) as conn:
            conn.execute(
                "CREATE TABLE memo (structure TEXT NOT NULL, "
                "fingerprint TEXT NOT NULL, gate TEXT NOT NULL, "
                "backend TEXT NOT NULL, payload TEXT NOT NULL, "
                "weight INTEGER NOT NULL DEFAULT 1, "
                "PRIMARY KEY (structure, fingerprint, gate, backend))"
            )
            conn.execute(
                "INSERT INTO memo VALUES ('s', 'f', '', 'exact', 'x', 1)"
            )
        store = SqliteStore(path)  # old key format: dropped, not degraded
        assert not store.degraded
        assert len(store) == 0
        store.put(("s", "f", (((0,),),), None, "exact"), {0: Fraction(1)})
        store.close()
        assert len(SqliteStore(path)) == 1

    def test_engine_anchored_store_reuse(self, p_per):
        from repro.prob.engine import node_probability

        store = InMemoryStore()
        q = paper.q_bon()
        first = node_probability(p_per, q, 5, store=store)
        assert store.anchored_puts > 0
        hits_before = store.anchored_hits
        assert node_probability(p_per, q, 5, store=store) == first
        assert store.anchored_hits > hits_before

    def test_cache_stats_surface_anchored_counters(self, p_per):
        from repro.cache import RewritingCache
        from repro.views.view import View

        cache = RewritingCache(p_per, store=InMemoryStore())
        cache.materialize(View("v1", paper.v1_bon()))
        cache.answer(paper.q_rbon())
        stats = cache.stats()
        anchored = stats["anchored"]
        assert anchored["store_puts"] > 0
        assert stats["store"]["anchored_entries"] > 0
        cache.answer(paper.q_rbon())
        assert cache.stats()["anchored"]["store_hits"] > anchored["store_hits"]


class TestUnifiedStatsSchema:
    """Every store's ``stats()`` carries the same key set (ISSUE-8)."""

    SCHEMA = {
        "hits", "misses", "puts", "evictions", "entries",
        "anchored_hits", "anchored_misses", "anchored_puts",
        "spine_recomputes", "survived_entries",
        "kind", "weight", "anchored_entries", "path", "degraded",
        "cached_entries", "max_weight", "max_entries",
        "bulk_probes", "bulk_probe_keys", "flushes", "write_behind_pending",
    }

    def test_memory_store_schema(self):
        stats = InMemoryStore().stats()
        assert set(stats) == self.SCHEMA
        assert stats["kind"] == "memory"
        assert stats["path"] is None
        assert stats["weight"] == 0  # memory stores do know their weight

    def test_sqlite_store_schema(self, tmp_path):
        store = SqliteStore(tmp_path / "schema.db")
        try:
            stats = store.stats()
        finally:
            store.close()
        assert set(stats) == self.SCHEMA
        assert stats["kind"] == "sqlite"
        assert stats["path"] is not None
        assert stats["degraded"] is False

    def test_counters_flow_into_the_unified_keys(self):
        store = InMemoryStore()
        store.get(("s", "f", None, None, "exact"))       # miss
        store.put(("s", "f", None, None, "exact"), {frozenset(): 1})
        store.get(("s", "f", None, None, "exact"))       # hit
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1

    def test_store_counters_publish_to_registry(self):
        from repro.obs import get_registry

        before = get_registry().snapshot()
        store = InMemoryStore()
        key = ("s", "f", None, None, "exact")
        store.get(key)
        store.put(key, {frozenset(): 1})
        store.get(key)
        after = get_registry().snapshot()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("repro_store_hits_total{kind=memory}") == 1
        assert delta("repro_store_misses_total{kind=memory}") == 1
        assert delta("repro_store_puts_total{kind=memory}") == 1

    def test_retired_store_counters_stay_monotone(self):
        """GC'ing a store must not make registry counters go backwards."""
        import gc

        from repro.obs import get_registry

        before = get_registry().snapshot().get(
            "repro_store_puts_total{kind=memory}", 0
        )
        store = InMemoryStore()
        store.put(("s", "f", None, None, "exact"), {frozenset(): 1})
        del store
        gc.collect()
        after = get_registry().snapshot().get(
            "repro_store_puts_total{kind=memory}", 0
        )
        assert after == before + 1
