"""Unit tests for containment mappings, equivalence, isomorphism."""

from repro.tp import contains, equivalent, parse_pattern
from repro.tp.containment import (
    contained,
    contains_boolean,
    containment_mapping,
    isomorphic,
    mapping_witness,
)
from repro.workloads import paper


class TestContains:
    def test_paper_claims(self):
        # q_RBON ⊑ v2BON, q_BON, v1BON; the latter two incomparable.
        q = paper.q_rbon()
        assert contains(paper.v2_bon(), q)
        assert contains(paper.q_bon(), q)
        assert contains(paper.v1_bon(), q)
        assert not contains(paper.q_bon(), paper.v1_bon())
        assert not contains(paper.v1_bon(), paper.q_bon())

    def test_child_into_descendant(self):
        assert contains(parse_pattern("a//b"), parse_pattern("a/b"))
        assert not contains(parse_pattern("a/b"), parse_pattern("a//b"))

    def test_predicate_weakening(self):
        assert contains(parse_pattern("a/b"), parse_pattern("a/b[c]"))
        assert not contains(parse_pattern("a/b[c]"), parse_pattern("a/b"))

    def test_descendant_through_chain(self):
        assert contains(parse_pattern("a//c"), parse_pattern("a/b/c"))

    def test_output_must_map_to_output(self):
        # Same tree shape, different outputs: no containment either way.
        q1 = parse_pattern("a/b[c]")       # out = b
        q2 = parse_pattern("a[b/c]")       # out = a... different out depth
        assert not contains(q1, q2)
        assert not contains(q2, q1)

    def test_desc_edge_maps_to_path(self):
        assert contains(parse_pattern("a//d"), parse_pattern("a/b//c/d"))

    def test_reflexive(self):
        q = paper.q_rbon()
        assert contains(q, q)

    def test_contained_is_inverse(self):
        assert contained(parse_pattern("a/b"), parse_pattern("a//b"))


class TestBooleanContainment:
    def test_out_ignored(self):
        q1 = parse_pattern("a[b/c]")
        q2 = parse_pattern("a/b[c]")
        assert contains_boolean(q1, q2)
        assert contains_boolean(q2, q1)


class TestEquivalence:
    def test_redundant_predicate(self):
        assert equivalent(parse_pattern("a[b]/b"), parse_pattern("a[b]/b"))
        assert equivalent(parse_pattern("a[.//b]//b"), parse_pattern("a//b"))

    def test_not_equivalent(self):
        assert not equivalent(parse_pattern("a/b"), parse_pattern("a//b"))

    def test_fact1_unfolding(self):
        from repro.tp import ops

        comp = ops.compensation(paper.v1_bon(), parse_pattern("bonus[laptop]"))
        assert equivalent(comp, paper.q_rbon())


class TestIsomorphic:
    def test_order_insensitive(self):
        assert isomorphic(parse_pattern("a[b][c]/d"), parse_pattern("a[c][b]/d"))

    def test_output_marks_distinguish(self):
        assert not isomorphic(parse_pattern("a/b[c]"), parse_pattern("a[b/c]"))


class TestWitness:
    def test_witness_structure(self):
        q1, q2 = parse_pattern("a//c"), parse_pattern("a/b/c")
        witness = mapping_witness(q1, q2)
        assert witness is not None
        assert witness[id(q1.root)] is q2.root
        assert witness[id(q1.out)] is q2.out

    def test_no_witness(self):
        assert mapping_witness(parse_pattern("a/b"), parse_pattern("a//b")) is None

    def test_respect_out_flag(self):
        q1 = parse_pattern("a[b/c]")
        q2 = parse_pattern("a/b[c]")
        assert not containment_mapping(q1, q2, respect_out=True)
        assert containment_mapping(q1, q2, respect_out=False)
