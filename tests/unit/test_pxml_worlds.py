"""Unit tests for possible-world enumeration (the px-space semantics)."""

from fractions import Fraction

from repro.pxml import enumerate_worlds, ind, mux, ordinary, pdoc, sample_world
from repro.pxml.worlds import world_probability
from repro.workloads import paper


class TestEnumeration:
    def test_probabilities_sum_to_one(self):
        for p in (paper.p_per(), paper.p1_example11(), paper.p3_example12()):
            worlds = enumerate_worlds(p)
            assert sum(pr for _, pr in worlds) == 1

    def test_simple_mux_worlds(self):
        p = pdoc(ordinary(0, "a", mux(1, (ordinary(2, "b"), "0.6"),
                                         (ordinary(3, "c"), "0.3"))))
        worlds = {frozenset(w.node_ids()): pr for w, pr in enumerate_worlds(p)}
        assert worlds[frozenset({0, 2})] == Fraction(3, 5)
        assert worlds[frozenset({0, 3})] == Fraction(3, 10)
        assert worlds[frozenset({0})] == Fraction(1, 10)

    def test_ind_worlds(self):
        p = pdoc(ordinary(0, "a", ind(1, (ordinary(2, "b"), "0.5"),
                                         (ordinary(3, "c"), "0.5"))))
        worlds = enumerate_worlds(p)
        assert len(worlds) == 4
        assert all(pr == Fraction(1, 4) for _, pr in worlds)

    def test_runs_merged_into_worlds(self):
        # mux over mux: "outer none" and "outer->inner, inner none" both give {a}.
        p = pdoc(ordinary(0, "a",
                          mux(1, (ordinary(2, "b",
                                           mux(3, (ordinary(4, "c"), "0.5"))),
                                  "0.5"))))
        worlds = {frozenset(w.node_ids()): pr for w, pr in enumerate_worlds(p)}
        assert worlds == {
            frozenset({0}): Fraction(1, 2),
            frozenset({0, 2}): Fraction(1, 4),
            frozenset({0, 2, 4}): Fraction(1, 4),
        }

    def test_world_probability_of_dper(self):
        # Example 3: Pr(d_PER) = 0.4725.
        assert world_probability(paper.p_per(), paper.d_per()) == Fraction(189, 400)

    def test_deleted_distributional_reattaches_children(self):
        p = pdoc(ordinary(0, "a", ind(1, (ordinary(2, "b"), 1))))
        (world, pr), = enumerate_worlds(p)
        assert pr == 1
        assert world.node(2).parent.node_id == 0


class TestSampling:
    def test_sampled_worlds_are_worlds(self, rng):
        p = paper.p1_example11()
        valid = {w.canonical_key() for w, _ in enumerate_worlds(p)}
        for _ in range(50):
            assert sample_world(p, rng).canonical_key() in valid

    def test_sampling_frequencies_roughly_match(self, rng):
        p = pdoc(ordinary(0, "a", mux(1, (ordinary(2, "b"), "0.7"))))
        hits = sum(sample_world(p, rng).has_node(2) for _ in range(600))
        assert 330 <= hits <= 510  # ±6 sigma around 420
