"""Unit tests for the workload generators."""

from repro.prob import query_answer
from repro.pxml import enumerate_worlds
from repro.tp import evaluate as evaluate_deterministic
from repro.workloads import paper
from repro.workloads.hypergraph import (
    Hypergraph,
    has_perfect_matching,
    matching_hypergraph,
    random_hypergraph,
    reduction_query,
    reduction_views,
)
from repro.workloads.synthetic import (
    adversarial_intersection,
    chain_query,
    churn_workload,
    personnel_pdocument,
    personnel_query,
    personnel_views,
    prefix_views,
    random_pdocument,
    random_tree_pattern,
)


class TestPaperFixtures:
    def test_dper_is_world_of_pper(self):
        worlds = {w.canonical_key() for w, _ in enumerate_worlds(paper.p_per())}
        assert paper.d_per().canonical_key() in worlds

    def test_example12_family_parametric(self):
        from fractions import Fraction
        from repro.prob import node_probability

        p = paper.example12_family("0.5", "0.5", "0.5")
        got = node_probability(p, paper.example12_query(), 12)
        assert got == Fraction(1, 2) * Fraction(3, 4)


class TestHypergraph:
    def test_matching_construction(self):
        h = matching_hypergraph(k=3, groups=2, extra_edges=2, seed=1)
        assert h.s == 6 and h.k == 3
        assert has_perfect_matching(h)

    def test_reference_solver_negative(self):
        h = Hypergraph(4, (frozenset({1, 2}), frozenset({2, 3})))
        assert not has_perfect_matching(h)

    def test_reduction_shapes(self):
        h = matching_hypergraph(k=2, groups=2, seed=0)
        q = reduction_query(h)
        assert q.main_branch_length() == h.s + 1
        views = reduction_views(h)
        assert len(views) == len(h.edges)
        for view in views:
            assert view.pattern.main_branch_length() == h.s + 1

    def test_random_hypergraph_uniform(self):
        h = random_hypergraph(k=3, s=9, m=5, seed=2)
        assert all(len(e) == 3 for e in h.edges)


class TestSynthetic:
    def test_random_pdocument_valid(self, rng):
        for _ in range(10):
            p = random_pdocument(rng)
            total = sum(pr for _, pr in enumerate_worlds(p))
            assert total == 1

    def test_random_tree_pattern_shape(self, rng):
        q = random_tree_pattern(rng, mb_length=4)
        assert q.main_branch_length() == 4

    def test_prefix_views_satisfy_fact1(self):
        from repro.rewrite import fact1_holds

        q = chain_query(4)
        for view in prefix_views(q):
            assert fact1_holds(q, view.pattern)

    def test_personnel_family(self):
        p = personnel_pdocument(persons=4, projects=2, seed=1)
        q = personnel_query()
        answer = query_answer(p, q)
        assert all(0 < pr <= 1 for pr in answer.values())
        for view in personnel_views():
            assert view.pattern.root_label() == "IT-personnel"

    def test_personnel_query_selects_bonus_nodes(self):
        p = personnel_pdocument(persons=3, projects=2, seed=5)
        world = p.max_world()
        selected = evaluate_deterministic(personnel_views()[1].pattern, world)
        assert selected == {100 * i + 1 for i in (1, 2, 3)}

    def test_adversarial_family(self):
        patterns = adversarial_intersection(3)
        assert len(patterns) == 3
        assert patterns[0].root_label() == "a"

    def test_churn_workload_shape_and_epochs(self):
        p, steps = churn_workload(persons=3, projects=2, rounds=2, seed=4)
        kinds = [kind for kind, _ in steps]
        assert kinds[0] == "queries"
        assert kinds.count("mutate") == 4 and kinds.count("queries") == 5
        digest_before = p.document_digest
        epoch_before = p.mutation_epoch
        for kind, payload in steps:
            if kind == "mutate":
                payload()
        assert p.mutation_epoch == epoch_before + 4
        # probability scaling and amount relabels both alter the digest
        assert p.document_digest != digest_before

    def test_churn_queries_stay_answerable_after_mutations(self):
        p, steps = churn_workload(persons=3, projects=2, rounds=1, seed=9)
        answers = None
        for kind, payload in steps:
            if kind == "mutate":
                payload()
            else:
                answers = [query_answer(p, q) for q in payload]
        assert answers is not None
        assert all(0 <= pr <= 1 for a in answers for pr in a.values())
