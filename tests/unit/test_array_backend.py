"""Unit tests for the vectorized ``array`` numeric backend.

Covers the PR-6 tentpole guarantees: the ArrayOps kernels agree with the
scalar backends at the engine level, supports past ``width_threshold``
escape to exact per-subtree evaluation (and compose with vectorized
regions), the stacked session pass answers whole batches through one
``(lanes × width)`` matrix per subtree, the SQLite codec round-trips the
versioned array payloads, and numpy stays a gracefully-optional
dependency.
"""

import random
import sys
from fractions import Fraction

import pytest

from repro.errors import MissingDependencyError
from repro.probability import (
    BACKENDS,
    ProbabilityError,
    get_backend,
    register_backend,
)
from repro.probability_array import (
    ArrayBackend,
    ArrayDistribution,
    StackedDistribution,
    _import_numpy,
)
from repro.prob import QuerySession, query_answer
from repro.prob.engine import boolean_probability, node_probability
from repro.store import SqliteStore
from repro.workloads import paper
from repro.workloads.synthetic import (
    batch_workload,
    random_pdocument,
    random_tree_pattern,
)

np = _import_numpy()

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9


def close(exact: dict, got: dict) -> bool:
    keys = set(exact) | {k for k, v in got.items() if float(v) > 1e-12}
    return all(
        abs(float(exact.get(k, 0)) - float(got.get(k, 0.0))) < TOLERANCE
        for k in keys
    )


class TestRegistry:
    def test_array_backend_registered(self):
        assert "array" in BACKENDS
        backend = get_backend("array")
        assert isinstance(backend, ArrayBackend)

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(ProbabilityError, match="array"):
            get_backend("quantum")
        with pytest.raises(ProbabilityError, match="exact"):
            get_backend("quantum")

    def test_register_backend_round_trip(self):
        sentinel = ArrayBackend(width_threshold=7)
        register_backend(sentinel, "array-test-tmp")
        try:
            assert get_backend("array-test-tmp") is sentinel
        finally:
            del BACKENDS["array-test-tmp"]

    def test_to_fraction_recovers_clean_ratios(self):
        backend = ArrayBackend()
        assert backend.to_fraction(0.25) == Fraction(1, 4)
        # A repeating binary expansion must still round-trip the intended
        # decimal ratio (the FastBackend regression this PR generalizes).
        assert backend.to_fraction(0.1) == Fraction(1, 10)
        assert backend.to_fraction(Fraction(2, 3)) == Fraction(2, 3)

    def test_missing_numpy_raises_graceful_error(self, monkeypatch):
        import repro.probability_array as mod

        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(MissingDependencyError, match="numpy"):
            mod._import_numpy()


class TestDistributions:
    def test_array_distribution_len_and_dict(self):
        d = ArrayDistribution(
            np.array([0, 5], dtype=np.int64),
            np.array([0.25, 0.75], dtype=np.float64),
        )
        assert len(d) == 2
        assert d.to_dict() == {0: 0.25, 5: 0.75}

    def test_stacked_distribution_rows(self):
        s = StackedDistribution(
            np.array([[0, 3], [1, 0]], dtype=np.int64),
            np.array([[0.5, 0.5], [1.0, 0.0]], dtype=np.float64),
        )
        assert s.lanes == 2
        # Support counts only nonzero mass (store eviction weight).
        assert len(s) == 3
        assert s.row_dict(0) == {0: 0.5, 3: 0.5}
        assert s.row_dict(1) == {1: 1.0}
        # Memoized: the same object comes back on a warm pass.
        assert s.row_dict(0) is s.row_dict(0)


class TestEngineAgreement:
    def test_paper_examples_match_exact(self, p_per):
        for q in (paper.q_bon(), paper.q_rbon(), paper.v1_bon(), paper.v2_bon()):
            exact = query_answer(p_per, q)
            got = query_answer(p_per, q, backend="array")
            assert close(exact, got)

    def test_boolean_and_node_probability(self, p_per):
        q = paper.q_rbon()
        exact = boolean_probability(p_per, q)
        got = boolean_probability(p_per, q, backend="array")
        assert abs(float(exact) - got) < TOLERANCE
        exact_n = node_probability(p_per, q, 5)
        got_n = node_probability(p_per, q, 5, backend="array")
        assert abs(float(exact_n) - got_n) < TOLERANCE

    def test_random_documents_match_exact(self):
        for seed in range(8):
            rng = random.Random(seed)
            p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
            q = random_tree_pattern(rng, labels=LABELS, mb_length=2)
            assert close(
                query_answer(p, q), query_answer(p, q, backend="array")
            )


class TestWidthThresholdFallback:
    def test_fallback_fires_and_stays_exact(self):
        backend = ArrayBackend(width_threshold=1)
        fired = 0
        for seed in range(6):
            rng = random.Random(seed)
            p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
            q = random_tree_pattern(rng, labels=LABELS, mb_length=2)
            assert close(
                query_answer(p, q), query_answer(p, q, backend=backend)
            )
        fired = backend.fallbacks
        assert fired > 0

    def test_default_threshold_never_fires_on_small_documents(self):
        backend = ArrayBackend()
        rng = random.Random(3)
        p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
        q = random_tree_pattern(rng, labels=LABELS, mb_length=2)
        query_answer(p, q, backend=backend)
        assert backend.fallbacks == 0


class TestStackedSession:
    def test_answer_many_matches_exact_cold_and_warm(self):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        expected = [query_answer(p, q) for q in queries]
        session = QuerySession(p, backend="array")
        for _ in range(3):  # cold, then plan-memoized warm repeats
            got = session.answer_many(queries)
            assert all(close(e, g) for e, g in zip(expected, got))
        permuted = session.answer_many(list(reversed(queries)))
        assert all(close(e, g) for e, g in zip(expected, reversed(permuted)))

    def test_warm_answers_are_fresh_copies(self):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        session = QuerySession(p, backend="array")
        first = session.answer_many(queries)
        first[0].clear()  # caller-side mutation must not poison the memo
        again = session.answer_many(queries)
        expected = [query_answer(p, q) for q in queries]
        assert all(close(e, g) for e, g in zip(expected, again))

    def test_invalidate_drops_plan_memo(self):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        expected = [query_answer(p, q) for q in queries]
        session = QuerySession(p, backend="array")
        session.answer_many(queries)
        session.invalidate()
        got = session.answer_many(queries)
        assert all(close(e, g) for e, g in zip(expected, got))

    def test_boolean_many_plain_and_anchored(self):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        session = QuerySession(p, backend="array")
        items = []
        expected = []
        for q in queries:
            items.append(q)
            expected.append(float(boolean_probability(p, q)))
            candidates = sorted(query_answer(p, q))
            if candidates:
                items.append((q, {q.out: candidates[0]}))
                expected.append(float(node_probability(p, q, candidates[0])))
        for _ in range(2):  # cold + warm
            got = session.boolean_many(items)
            assert all(
                abs(e - float(g)) < TOLERANCE for e, g in zip(expected, got)
            )

    def test_boolean_memo_serves_warm_and_drops_on_invalidate(self):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        q = queries[0]
        items = [(q, {q.out: n}) for n in sorted(query_answer(p, q))]
        session = QuerySession(p, backend="array")
        first = session.boolean_many(items)
        walked = session.stats.traversals
        rebuilt = [(q, {q.out: n}) for n in sorted(query_answer(p, q))]
        again = session.boolean_many(rebuilt)  # fresh dicts, same content
        assert session.stats.traversals == walked  # memo hit, no pass
        assert [float(x) for x in again] == [float(x) for x in first]
        session.invalidate()
        fresh = session.boolean_many(items)
        assert session.stats.traversals == walked + 1  # memo dropped
        assert [float(x) for x in fresh] == [float(x) for x in first]

    def test_width_fallback_inside_stacked_pass(self):
        backend = ArrayBackend(width_threshold=1)
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        expected = [query_answer(p, q) for q in queries]
        got = QuerySession(p, backend=backend).answer_many(queries)
        assert backend.fallbacks > 0
        assert all(close(e, g) for e, g in zip(expected, got))


class TestSqliteArrayCodec:
    KEY = ("digest" * 10, "fp" * 20, None, None, "array")

    def test_round_trips_array_distribution(self, tmp_path):
        store = SqliteStore(tmp_path / "memo.sqlite")
        d = ArrayDistribution(
            np.array([0, 5], dtype=np.int64),
            np.array([0.25, 0.75], dtype=np.float64),
        )
        store.put(self.KEY, d, weight=4)
        store.close()
        reopened = SqliteStore(tmp_path / "memo.sqlite")
        got = reopened.get(self.KEY)
        assert isinstance(got, ArrayDistribution)
        assert got.to_dict() == {0: 0.25, 5: 0.75}
        reopened.close()

    def test_round_trips_stacked_distribution(self, tmp_path):
        store = SqliteStore(tmp_path / "memo.sqlite")
        s = StackedDistribution(
            np.array([[0, 3], [1, 0]], dtype=np.int64),
            np.array([[0.5, 0.5], [1.0, 0.0]], dtype=np.float64),
        )
        store.put(self.KEY, s, weight=4)
        store.close()
        reopened = SqliteStore(tmp_path / "memo.sqlite")
        got = reopened.get(self.KEY)
        assert isinstance(got, StackedDistribution)
        assert got.lanes == 2
        assert got.row_dict(0) == {0: 0.5, 3: 0.5}
        assert got.row_dict(1) == {1: 1.0}
        reopened.close()

    def test_malformed_array_payload_is_a_miss(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        store = SqliteStore(path)
        d = ArrayDistribution(
            np.array([0], dtype=np.int64), np.array([1.0], dtype=np.float64)
        )
        store.put(self.KEY, d, weight=1)
        store.close()
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE memo SET payload = ?",
            ('{"v": 2, "k": "a", "m": [0], "p": "garbage"}',),
        )
        conn.commit()
        conn.close()
        reopened = SqliteStore(path)
        assert reopened.get(self.KEY) is None  # miss, not a crash
        reopened.close()

    def test_warm_session_from_disk(self, tmp_path):
        p, queries = batch_workload(persons=8, projects=4, seed=8)
        expected = [query_answer(p, q) for q in queries]
        path = tmp_path / "memo.sqlite"
        store = SqliteStore(path)
        QuerySession(p, backend="array", store=store).answer_many(queries)
        store.close()
        reopened = SqliteStore(path)
        got = QuerySession(p, backend="array", store=reopened).answer_many(
            queries
        )
        assert reopened.hits > 0
        assert all(close(e, g) for e, g in zip(expected, got))
        reopened.close()
