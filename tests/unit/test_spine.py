"""Spine-only incremental maintenance (ISSUE-7 tentpole).

Node-scoped ``PDocument.mark_mutated(node)``: dirty-log semantics,
O(depth) index splicing vs scratch rebuilds, the deprecation shim for
the argument-less form, store survival counters, and session-level
memo/plan retention across spine refreshes.
"""

from fractions import Fraction

import pytest

from repro.errors import PDocumentError
from repro.prob import QuerySession, query_answer
from repro.pxml.builder import ind, mux, ordinary, pdoc
from repro.store import InMemoryStore
from repro.tp.parser import parse_pattern
from repro.workloads.paper import p_per, q_bon
from repro.workloads.synthetic import churn_workload, isomorphic_twin


def small_doc():
    return pdoc(
        ordinary(
            1,
            "r",
            ordinary(2, "a", ordinary(3, "b")),
            mux(4, (ordinary(5, "a", ordinary(6, "c")), "0.5")),
        )
    )


def warm_indexes(p):
    p.structural_index()
    p.label_index()
    p.anchor_index()
    p.identity_digest()


def assert_indexes_equal_scratch(p):
    scratch = p.subdocument(p.root.node_id)
    assert p.structural_index() == scratch.structural_index()
    assert p.anchor_index() == scratch.anchor_index()
    assert p.label_index() == scratch.label_index()
    assert p.identity_digest() == scratch.identity_digest()


class TestMarkMutated:
    def test_argless_form_warns_and_invalidates_everything(self):
        p = small_doc()
        before = p.mutation_epoch
        with pytest.warns(DeprecationWarning, match="mark_all_mutated"):
            p.mark_mutated()
        assert p.mutation_epoch == before + 1
        assert p.dirty_since(before) is None

    def test_argless_form_degrades_to_mark_all_mutated(self):
        """The deprecated form is exactly ``mark_all_mutated()``."""
        p_argless, p_explicit = small_doc(), small_doc()
        for p in (p_argless, p_explicit):
            warm_indexes(p)
            p.mark_mutated(3)  # pending scoped entry, to be wiped
        before = p_argless.mutation_epoch
        with pytest.warns(DeprecationWarning):
            p_argless.mark_mutated()
        p_explicit.mark_all_mutated()
        assert p_argless.mutation_epoch == p_explicit.mutation_epoch
        for epoch in (0, before):
            assert p_argless.dirty_since(epoch) is None
            assert p_explicit.dirty_since(epoch) is None
        # cached derived indexes were dropped, not spliced: both rebuild
        # to the same state as a scratch copy
        assert_indexes_equal_scratch(p_argless)
        assert_indexes_equal_scratch(p_explicit)

    def test_mark_all_mutated_resets_dirty_log(self):
        p = small_doc()
        warm_indexes(p)
        p.mark_mutated(3)
        anchor = p.mutation_epoch
        p.mark_all_mutated()
        assert p.dirty_since(anchor) is None
        # a later scoped mutation is visible from the reset point on
        p.mark_mutated(3)
        changed, _ = p.dirty_since(anchor + 1)
        assert 3 in changed

    def test_dirty_since_merges_entries(self):
        p = small_doc()
        warm_indexes(p)
        start = p.mutation_epoch
        node = p.node(4)
        node.probabilities[5] *= Fraction(1, 2)
        p.mark_mutated(node)
        p.node(3).label = "z"
        p.mark_mutated(3)
        changed, world_changed = p.dirty_since(start)
        # both spines, unioned: {4,1} from the scaling, {3,2,1} from z
        assert {1, 2, 3, 4} <= changed
        assert 5 not in changed and 6 not in changed
        assert world_changed  # the relabel changed the maximal world
        assert p.dirty_since(p.mutation_epoch) == (frozenset(), False)

    def test_probability_only_mutation_keeps_world(self):
        p = small_doc()
        warm_indexes(p)
        start = p.mutation_epoch
        node = p.node(4)
        node.probabilities[5] *= Fraction(1, 2)
        p.mark_mutated(node)
        changed, world_changed = p.dirty_since(start)
        assert not world_changed
        assert changed == {4, 1}
        assert_indexes_equal_scratch(p)

    def test_dirty_log_truncation_floors(self, monkeypatch):
        monkeypatch.setattr("repro.pxml.pdocument._DIRTY_LOG_LIMIT", 2)
        p = small_doc()
        warm_indexes(p)
        start = p.mutation_epoch
        for _ in range(3):
            p.mark_mutated(3)
        assert p.dirty_since(start) is None  # oldest entry dropped
        assert p.dirty_since(p.mutation_epoch - 1) is not None

    def test_attach_registers_fresh_subtree(self):
        p = small_doc()
        warm_indexes(p)
        parent = p.node(2)
        parent.add_child(ordinary(7, "d", ordinary(8, "b")))
        p.mark_mutated(parent)
        assert p.node(8).label == "b"
        changed, world_changed = p.dirty_since(p.mutation_epoch - 1)
        assert {8, 7, 2, 1} <= changed
        assert world_changed
        assert_indexes_equal_scratch(p)

    def test_attach_rejects_id_reuse(self):
        p = small_doc()
        parent = p.node(2)
        parent.add_child(ordinary(5, "dupe"))
        with pytest.raises(PDocumentError, match="reuses existing Id"):
            p.mark_mutated(parent)

    def test_detached_node_rejected(self):
        p = small_doc()
        stray = ordinary(99, "x")
        with pytest.raises(PDocumentError, match="not attached"):
            p.mark_mutated(stray)

    def test_splice_on_cold_document_degrades_conservatively(self):
        # No index was ever built: nothing to splice; the dirty entry
        # still covers the subtree + spine so sessions stay correct.
        p = small_doc()
        start = p.mutation_epoch
        p.node(6).label = "q"
        p.mark_mutated(6)
        changed, world_changed = p.dirty_since(start)
        assert {6, 5, 4, 1} <= changed
        assert world_changed
        assert_indexes_equal_scratch(p)

    def test_answers_track_spliced_mutations(self):
        p = p_per()
        warm_indexes(p)
        q = q_bon()
        before = query_answer(p, q)
        assert before == {5: Fraction(9, 10)}
        # halve the mux edge that admits the laptop under bonus 5: the
        # answer provably moves, through the spliced indexes alone
        node = p.node(21)
        node.probabilities[24] *= Fraction(1, 2)
        p.mark_mutated(node)
        after = query_answer(p, q)
        scratch = p.subdocument(p.root.node_id)
        assert after == query_answer(scratch, q)
        assert after != before


class TestTwinOffset:
    def test_offset_derived_past_max_id(self):
        p = small_doc()
        twin = isomorphic_twin(p)
        assert sorted(n.node_id for n in twin.nodes()) == [
            11, 12, 13, 14, 15, 16,
        ]

    def test_offset_scales_with_large_ids(self):
        p = pdoc(ordinary(1, "r", ordinary(12345, "a")))
        twin = isomorphic_twin(p)
        assert {n.node_id for n in twin.nodes()} == {100001, 112345}

    def test_explicit_offset_still_honoured(self):
        p = small_doc()
        twin = isomorphic_twin(p, 500)
        assert min(n.node_id for n in twin.nodes()) == 501


class TestChurnWorkload:
    def test_mixed_mode_respects_write_ratio_extremes(self):
        p, steps = churn_workload(
            persons=3, rounds=6, seed=5, write_ratio=1.0
        )
        assert [kind for kind, _ in steps[1:]] == ["mutate"] * 6
        _, steps = churn_workload(
            persons=3, rounds=6, seed=5, write_ratio=0.0
        )
        assert [kind for kind, _ in steps[1:]] == ["queries"] * 6

    def test_mutate_full_flag_invalidates_document(self):
        p, steps = churn_workload(
            persons=3, rounds=4, seed=7, write_ratio=1.0
        )
        start = p.mutation_epoch
        mutations = [payload for kind, payload in steps if kind == "mutate"]
        mutations[0]()
        assert p.dirty_since(start) is not None
        mutations[1](full=True)
        assert p.dirty_since(start) is None

    def test_legacy_signature_unchanged(self):
        p, steps = churn_workload(persons=2, projects=2, rounds=2, seed=3)
        kinds = [kind for kind, _ in steps]
        assert kinds == ["queries"] + ["mutate", "queries"] * 4


class TestStoreCounters:
    def test_discard_removes_matching_and_returns_count(self):
        store = InMemoryStore()
        store.put(("a", "f", 0, "exact"), {1: Fraction(1)}, weight=3)
        store.put(("b", "f", 0, "exact"), {2: Fraction(1)}, weight=5)
        removed = store.discard(lambda key: key[0] == "a")
        assert removed == 1
        assert len(store) == 1
        assert store.weight == 5
        assert store.stats()["evictions"] == 0

    def test_record_spine_recompute_accumulates(self):
        store = InMemoryStore()
        store.record_spine_recompute(4)
        store.record_spine_recompute(2)
        stats = store.stats()
        assert stats["spine_recomputes"] == 2
        assert stats["survived_entries"] == 6


class TestSessionSpineRefresh:
    def make_session(self, backend="exact", store=None):
        p = p_per()
        session = QuerySession(p, backend=backend, store=store)
        queries = [q_bon(), parse_pattern("IT-personnel//person")]
        return p, session, queries

    def mutate_probability(self, p):
        node = next(n for n in p.distributional_nodes() if n.probabilities)
        child_id = next(iter(node.probabilities))
        node.probabilities[child_id] *= Fraction(1, 2)
        p.mark_mutated(node)

    def test_probability_mutation_is_a_spine_refresh(self):
        p, session, queries = self.make_session(store=InMemoryStore())
        session.answer_many(queries)
        self.mutate_probability(p)
        assert session.answer_many(queries) == [
            query_answer(p, q) for q in queries
        ]
        assert session.stats.spine_refreshes == 1
        assert session.stats.invalidations == 0
        stats = session.store.stats()
        assert stats["spine_recomputes"] == 1
        # survived = store size at refresh time (before the warm re-pass
        # added the entries for the re-evaluated dirty subtrees)
        assert 0 < stats["survived_entries"] <= len(session.store)

    def test_array_plans_survive_probability_mutation(self):
        pytest.importorskip("numpy")
        p, session, queries = self.make_session(backend="array")
        session.answer_many(queries)
        self.mutate_probability(p)
        scratch = p.subdocument(p.root.node_id)
        expected = [query_answer(scratch, q) for q in queries]
        for want, got in zip(expected, session.answer_many(queries)):
            for key in set(want) | set(got):
                assert abs(
                    float(got.get(key, 0.0)) - float(want.get(key, 0))
                ) < 1e-9
        assert session.stats.spine_refreshes == 1
        assert session.stats.survived_plans >= 1

    def test_world_mutation_drops_plans_without_full_reset(self):
        pytest.importorskip("numpy")
        p, session, queries = self.make_session(backend="array")
        session.answer_many(queries)
        target = next(
            n for n in p.ordinary_nodes() if n.label and n.label.isdigit()
        )
        target.label = str(int(target.label) + 1)
        p.mark_mutated(target)
        session.answer_many(queries)
        assert session.stats.spine_refreshes == 1
        assert session.stats.survived_plans == 0
        assert session.stats.invalidations == 0

    def test_mark_all_mutated_forces_full_reset(self):
        p, session, queries = self.make_session()
        session.answer_many(queries)
        p.mark_all_mutated()
        session.answer_many(queries)
        assert session.stats.invalidations == 1
        assert session.stats.spine_refreshes == 0
