"""Unit tests for the command-line interface and p-document round-trips."""

import pytest

from repro.cli import main
from repro.errors import PDocumentError
from repro.pxml.serialize import pdocument_from_text, pdocument_to_text
from repro.workloads import paper


@pytest.fixture
def doc_file(tmp_path, p_per):
    path = tmp_path / "per.pxml"
    path.write_text(pdocument_to_text(p_per), encoding="utf-8")
    return str(path)


class TestRoundTrip:
    def test_paper_fixture(self, p_per):
        assert pdocument_from_text(pdocument_to_text(p_per)) == p_per

    def test_all_counterexample_fixtures(self):
        for p in (paper.p1_example11(), paper.p2_example11(),
                  paper.p3_example12(), paper.p4_example12()):
            assert pdocument_from_text(pdocument_to_text(p)) == p

    def test_missing_probability_rejected(self):
        with pytest.raises(PDocumentError):
            pdocument_from_text("[1] a\n  [2] mux\n    [3] b\n")

    def test_unexpected_probability_rejected(self):
        with pytest.raises(PDocumentError):
            pdocument_from_text("[1] a\n  (0.5) [2] b\n")

    def test_empty_rejected(self):
        with pytest.raises(PDocumentError):
            pdocument_from_text("\n")


class TestCommands:
    def test_eval(self, doc_file, capsys):
        code = main(["eval", doc_file, "IT-personnel//person/bonus[laptop]"])
        out = capsys.readouterr().out
        assert code == 0
        assert "node 5" in out and "0.9" in out

    def test_eval_empty(self, doc_file, capsys):
        code = main(["eval", doc_file, "IT-personnel/zzz"])
        assert code == 0
        assert "no answers" in capsys.readouterr().out

    def test_eval_multiple_queries_batched(self, doc_file, capsys):
        code = main([
            "eval", doc_file,
            "IT-personnel//person/bonus[laptop]",
            "IT-personnel/zzz",
            "--batch",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "query IT-personnel//person/bonus[laptop]" in out
        assert "node 5" in out and "0.9" in out
        assert "no answers" in out

    def test_eval_multiple_queries_sequential_matches_batched(
        self, doc_file, capsys
    ):
        queries = ["IT-personnel//person/bonus[laptop]",
                   "IT-personnel//person/name"]
        assert main(["eval", doc_file, *queries]) == 0
        sequential = capsys.readouterr().out
        assert main(["eval", doc_file, *queries, "--batch"]) == 0
        assert capsys.readouterr().out == sequential

    def test_worlds(self, doc_file, capsys):
        code = main(["worlds", doc_file, "--limit", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("Pr =") == 3 and "more worlds" in out

    def test_rewrite_positive(self, doc_file, capsys):
        code = main([
            "rewrite", doc_file, "IT-personnel//person/bonus[laptop]",
            "--view", "IT-personnel//person/bonus", "--evaluate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "restricted rewriting" in out and "node 5" in out

    def test_rewrite_negative(self, doc_file, capsys):
        code = main([
            "rewrite", doc_file, "IT-personnel//person/bonus[laptop]",
            "--view", "IT-personnel//name",
        ])
        assert code == 1
        assert "no probabilistic TP-rewriting" in capsys.readouterr().out

    def test_skeleton(self, capsys):
        assert main(["skeleton", "a[b//c]/d//e"]) == 0
        assert main(["skeleton", "a[.//b]//c"]) == 1

    def test_show(self, doc_file, capsys):
        assert main(["show", doc_file]) == 0
        assert "IT-personnel" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "q_RBON" in out and "0.675" in out


class TestStoreCommands:
    QUERY = "IT-personnel//person/bonus[laptop]"

    def test_eval_with_store_reuses_across_runs(
        self, doc_file, tmp_path, capsys
    ):
        store_path = str(tmp_path / "memo.db")
        assert main(["eval", doc_file, self.QUERY,
                     "--store", store_path]) == 0
        cold = capsys.readouterr().out
        assert "node 5" in cold and "store" in cold
        assert main(["eval", doc_file, self.QUERY,
                     "--store", store_path]) == 0
        warm = capsys.readouterr().out
        assert "node 5" in warm
        # the second run answers from the persisted entries
        assert "0 misses" in warm

    def test_batch_eval_with_store_matches_plain(
        self, doc_file, tmp_path, capsys
    ):
        queries = [self.QUERY, "IT-personnel//person/name"]
        assert main(["eval", doc_file, *queries]) == 0
        plain = capsys.readouterr().out
        store_path = str(tmp_path / "memo.db")
        assert main(["eval", doc_file, *queries, "--batch",
                     "--store", store_path]) == 0
        stored = capsys.readouterr().out
        assert plain.splitlines() == stored.splitlines()[:-1]  # + store line

    def test_warm_then_stats_then_clear(self, doc_file, tmp_path, capsys):
        store_path = str(tmp_path / "memo.db")
        assert main(["store", "warm", store_path, doc_file, self.QUERY]) == 0
        assert "warmed" in capsys.readouterr().out
        assert main(["store", "stats", store_path]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and "weight" in stats_out
        assert main(["store", "clear", store_path]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["store", "stats", store_path]) == 0
        assert "entries  0" in capsys.readouterr().out

    def test_store_stats_missing_file(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "absent.db")]) == 1
        assert "no store file" in capsys.readouterr().err


class TestObservabilityCommands:
    QUERY = "IT-personnel//person/bonus[laptop]"

    def test_eval_trace_writes_jsonl(self, doc_file, tmp_path, capsys):
        from repro.obs import read_spans_jsonl, tracing_enabled

        trace_path = str(tmp_path / "trace.jsonl")
        code = main([
            "eval", doc_file, self.QUERY, "IT-personnel/zzz",
            "--batch", "--trace", trace_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "node 5" in out  # tracing never changes the answer
        assert "root spans written to" in out
        assert not tracing_enabled()  # switch restored after the run
        spans = read_spans_jsonl(trace_path)
        assert spans, "expected at least one root span"
        names = set()
        stack = list(spans)
        while stack:
            entry = stack.pop()
            names.add(entry["name"])
            stack.extend(entry.get("children", ()))
        assert "session.answer_many" in names
        assert "session.traversal" in names  # nested under the root

    def test_eval_profile_renders_attribution(self, doc_file, capsys):
        code = main(["eval", doc_file, self.QUERY, "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"query {self.QUERY}:" in out
        assert "attributed" in out

    def test_eval_profile_batch(self, doc_file, capsys):
        code = main([
            "eval", doc_file, self.QUERY, "IT-personnel/zzz",
            "--batch", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-query batch" in out

    def test_stats_table_after_workload(self, doc_file, capsys):
        code = main(["stats", doc_file, self.QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro_session_queries_total" in out
        assert "repro_store_hits_total{kind=memory}" in out

    def test_stats_prometheus_format(self, doc_file, capsys):
        code = main(["stats", doc_file, self.QUERY, "--format", "prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_session_queries_total counter" in out

    def test_stats_bare_dumps_registry(self, capsys):
        assert main(["stats"]) == 0
        # nothing may have run yet in this process; the registry still
        # renders (possibly with every counter at zero)
        assert capsys.readouterr().out.strip()
