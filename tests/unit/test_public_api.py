"""Contract tests for the public package surface and error hierarchy."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        import repro.cache
        import repro.cli
        import repro.prob.approximate
        import repro.rewrite.decomposition
        import repro.tpi.skeleton
        import repro.workloads.hypergraph

        assert repro.cache.RewritingCache is not None
        assert repro.cli.main is not None


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "DocumentError", "PDocumentError", "PatternError",
        "PatternParseError", "CompensationError", "IntersectionError",
        "UnsatisfiableIntersectionError", "RewritingError",
        "NoRewritingError", "ProbabilityError", "LinearSystemError",
    ])
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.PatternParseError, errors.PatternError)
        assert issubclass(errors.CompensationError, errors.PatternError)
        assert issubclass(
            errors.UnsatisfiableIntersectionError, errors.IntersectionError
        )
        assert issubclass(errors.NoRewritingError, errors.RewritingError)

    def test_single_except_clause_suffices(self):
        from repro import parse_pattern

        with pytest.raises(errors.ReproError):
            parse_pattern("a[")


class TestConvenienceConversions:
    def test_prob_str_examples(self):
        from fractions import Fraction

        from repro import prob_str

        assert prob_str(Fraction(27, 40)) == "0.675"
        assert prob_str(Fraction(9, 10)) == "0.9"

    def test_as_probability_accepts_mixed_types(self):
        from fractions import Fraction

        from repro import as_probability

        assert as_probability("0.75") == as_probability(0.75) == Fraction(3, 4)


class TestDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        package = importlib.import_module("repro")
        missing = []
        for info in pkgutil.walk_packages(package.__path__, "repro."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"undocumented modules: {missing}"

    def test_core_classes_documented(self):
        from repro import Document, PDocument, TreePattern, View
        from repro.cache import RewritingCache
        from repro.rewrite import TPIRewritePlan, TPRewritePlan

        for cls in (Document, PDocument, TreePattern, View,
                    RewritingCache, TPRewritePlan, TPIRewritePlan):
            assert (cls.__doc__ or "").strip(), cls
