"""Unit tests for p-documents (Definition 1 validation + accessors)."""

from fractions import Fraction

import pytest

from repro.errors import PDocumentError
from repro.pxml import PDocument, PNodeKind, det, ind, mux, ordinary, pdoc
from repro.workloads import paper


class TestValidation:
    def test_distributional_root_rejected(self):
        with pytest.raises(PDocumentError):
            pdoc_root = mux(1, (ordinary(2, "a"), "0.5"))
            PDocument(pdoc_root)

    def test_distributional_leaf_rejected(self):
        with pytest.raises(PDocumentError):
            bad = ordinary(1, "a")
            bad.add_child(mux(2).__class__(2, PNodeKind.MUX))  # empty mux leaf
            pdoc(bad)

    def test_mux_overflow_rejected(self):
        with pytest.raises(PDocumentError):
            pdoc(ordinary(1, "a",
                          mux(2, (ordinary(3, "b"), "0.7"),
                                 (ordinary(4, "c"), "0.7"))))

    def test_ind_may_exceed_one_total(self):
        p = pdoc(ordinary(1, "a",
                          ind(2, (ordinary(3, "b"), "0.7"),
                                 (ordinary(4, "c"), "0.7"))))
        assert p.size() == 4

    def test_probability_out_of_range(self):
        with pytest.raises(Exception):
            pdoc(ordinary(1, "a", mux(2, (ordinary(3, "b"), "1.5"))))

    def test_duplicate_ids(self):
        with pytest.raises(PDocumentError):
            pdoc(ordinary(1, "a", ordinary(1, "b")))

    def test_det_builder_is_sure_ind(self):
        p = pdoc(ordinary(1, "a", det(2, ordinary(3, "b"), ordinary(4, "c"))))
        assert p.appearance_probability(3) == 1
        assert p.appearance_probability(4) == 1


class TestAccessors:
    def test_paper_document_size(self):
        p = paper.p_per()
        # 21 ordinary nodes + 4 distributional (11, 21, 52, 53).
        assert len(p.ordinary_nodes()) == 21
        assert len(p.distributional_nodes()) == 4

    def test_appearance_probability(self):
        p = paper.p_per()
        assert p.appearance_probability(8) == Fraction(3, 4)     # Rick
        assert p.appearance_probability(24) == Fraction(9, 10)   # laptop
        assert p.appearance_probability(5) == 1                  # bonus n5
        assert p.appearance_probability(54) == Fraction(7, 10)   # 15 under ind

    def test_ancestors_or_self_ordinary(self):
        p = paper.p_per()
        ids = [n.node_id for n in p.ancestors_or_self_ordinary(25)]
        assert ids == [25, 24, 5, 2, 1]

    def test_is_ancestor_or_self(self):
        p = paper.p_per()
        assert p.is_ancestor_or_self(5, 25)
        assert p.is_ancestor_or_self(25, 25)
        assert not p.is_ancestor_or_self(25, 5)
        assert p.is_ancestor_or_self(21, 24)  # through the mux

    def test_subdocument(self):
        p = paper.p_per()
        sub = p.subdocument(5)
        assert sub.root.node_id == 5
        assert sub.has_node(24) and sub.has_node(22)
        assert not sub.has_node(4)

    def test_subdocument_of_distributional_rejected(self):
        with pytest.raises(PDocumentError):
            paper.p_per().subdocument(21)

    def test_max_world_contracts_distributional(self):
        world = paper.p_per().max_world()
        assert world.has_node(22) and world.has_node(24)  # both mux children
        assert not world.has_node(21)
        # laptop attaches to bonus (closest ordinary ancestor)
        assert world.node(24).parent.node_id == 5

    def test_effective_children(self):
        p = paper.p_per()
        ids = {c.node_id for c in p.effective_children(p.node(5))}
        assert ids == {22, 24, 31}


class TestEquality:
    def test_example12_pair_not_equal_with_probabilities(self):
        assert paper.p3_example12() != paper.p4_example12()

    def test_self_equality(self):
        assert paper.p_per() == paper.p_per()

    def test_shape_only(self):
        p3 = paper.p3_example12()
        p4 = paper.p4_example12()
        # Same shape, different probabilities — distinguishable even without Ids.
        assert p3.canonical_key(with_ids=False) != p4.canonical_key(with_ids=False)


class TestStructuralIdentity:
    def test_document_digest_matches_between_equal_builds(self):
        assert paper.p_per().document_digest == paper.p_per().document_digest
        assert (
            paper.p3_example12().document_digest
            != paper.p4_example12().document_digest
        )

    def test_subdocument_digest_agrees_with_subtree_digest(self):
        p = paper.p_per()
        for node in p.ordinary_nodes():
            assert (
                p.subdocument(node.node_id).document_digest
                == p.structural_digest(node.node_id)
            )

    def test_structural_index_covers_every_node(self):
        p = paper.p_per()
        digests, sizes = p.structural_index()
        assert set(digests) == {n.node_id for n in p.nodes()}
        assert sizes[p.root.node_id] == p.size()
        leaf = p.node(8)  # Rick leaf
        assert sizes[leaf.node_id] == 1 and p.subtree_size(8) == 1

    def test_label_index_interns_and_accumulates(self):
        p = paper.p_per()
        labels = p.label_index()
        assert labels[8] == frozenset({"Rick"})
        assert "Rick" in labels[p.root.node_id]
        assert labels[11] == frozenset({"John", "Rick"})  # mux adds no label

    def test_ancestral_closure(self):
        p = paper.p_per()
        closure = p.ancestral_closure([8])  # Rick: mux 11, name 4, person 2
        assert closure == frozenset({8, 11, 4, 2, 1})
        assert p.ancestral_closure([]) == frozenset()
