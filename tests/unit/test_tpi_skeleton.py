"""Unit tests for the extended-skeleton fragment check (§5.1)."""

import pytest

from repro.tp import parse_pattern
from repro.tpi import is_extended_skeleton
from repro.workloads import paper


class TestPaperVerdicts:
    @pytest.mark.parametrize("expr", ["a[b//c//d]/e//d", "a[b//c]/d//e"])
    def test_positive(self, expr):
        assert is_extended_skeleton(parse_pattern(expr))

    @pytest.mark.parametrize(
        "expr", ["a[b//c]/b//d", "a[b//c]//d", "a[.//b]/c//d", "a[.//b]//c"]
    )
    def test_negative(self, expr):
        assert not is_extended_skeleton(parse_pattern(expr))


class TestFragmentScope:
    def test_main_branch_descendants_unrestricted(self):
        assert is_extended_skeleton(parse_pattern("a//b//c//d"))

    def test_slash_only_predicates_unrestricted(self):
        assert is_extended_skeleton(parse_pattern("a[b/c][d]/e[f]//g"))

    def test_no_predicates(self):
        assert is_extended_skeleton(parse_pattern("a//b/c"))

    def test_paper_fixtures_are_extended_skeletons(self):
        for q in (paper.q_rbon(), paper.q_bon(), paper.v1_bon(), paper.v2_bon()):
            assert is_extended_skeleton(q)

    def test_example16_views_are_extended_skeletons(self):
        for v in paper.example16_views():
            assert is_extended_skeleton(v)

    def test_prefix_equal_paths_rejected(self):
        # incoming path 'b' maps into mb /-path 'b/c' (prefix) → not a skeleton.
        assert not is_extended_skeleton(parse_pattern("a[b//x]/b/c//d"))

    def test_mb_path_maps_into_incoming(self):
        # mb /-path 'b' is a prefix of incoming path 'b/c' → not a skeleton.
        assert not is_extended_skeleton(parse_pattern("a[b/c//x]/b//d"))

    def test_diverging_paths_accepted(self):
        assert is_extended_skeleton(parse_pattern("a[b/c//x]/b/e//d"))
