"""Unit tests for the QuerySession workload layer.

Covers the tentpole guarantees: batched answers equal per-query engine
answers, one shared traversal per batch regardless of the batch size,
cross-query subtree memoization (with hits inside a single cold pass on
structurally identical queries), and memo invalidation through the
p-document mutation epoch.
"""

from fractions import Fraction

import pytest

from repro.prob import EvaluationEngine, QuerySession, query_answer
from repro.prob.engine import (
    boolean_probability,
    intersection_node_probability,
    node_probability,
)
from repro.pxml import ind, mux, ordinary, pdoc
from repro.tp import parse_pattern
from repro.workloads import paper
from repro.workloads.synthetic import batch_workload, personnel_pdocument, personnel_query


class TestAnswerMany:
    def test_matches_sequential_on_paper_document(self, p_per):
        queries = [paper.q_bon(), paper.v1_bon(), paper.q_rbon(), paper.v2_bon()]
        session = QuerySession(p_per)
        assert session.answer_many(queries) == [
            query_answer(p_per, q) for q in queries
        ]

    def test_single_query_answer(self, p_per):
        session = QuerySession(p_per)
        assert session.answer(paper.q_bon()) == query_answer(p_per, paper.q_bon())

    def test_empty_batch(self, p_per):
        assert QuerySession(p_per).answer_many([]) == []
        assert QuerySession(p_per).stats.traversals == 0

    def test_query_without_candidates(self, p_per):
        session = QuerySession(p_per)
        answers = session.answer_many(
            [paper.q_bon(), parse_pattern("IT-personnel/nosuchlabel")]
        )
        assert answers[0] == query_answer(p_per, paper.q_bon())
        assert answers[1] == {}

    def test_one_traversal_per_batch(self):
        # The tentpole counter: a cold batch touches each p-document node
        # exactly once, no matter how many queries ride in it.  The
        # document's labels all occur in the first query's goal table, so
        # no subtree is neutral and the count is exact.
        p = pdoc(
            ordinary(0, "a",
                     ind(1, (ordinary(2, "b", ordinary(3, "c")), "0.5")),
                     mux(4,
                         (ordinary(5, "b", ordinary(6, "c")), "0.4"),
                         (ordinary(7, "b"), "0.5")),
                     ordinary(8, "b", ordinary(9, "c")))
        )
        queries = [parse_pattern("a/b[c]"), parse_pattern("a/b"),
                   parse_pattern("a//c")]
        session = QuerySession(p)
        answers = session.answer_many(queries)
        assert answers == [query_answer(p, q) for q in queries]
        assert session.stats.traversals == 1
        assert session.stats.node_visits == p.size()

    def test_warm_batch_skips_subtrees(self):
        p, queries = batch_workload(persons=6, projects=4, seed=3)
        session = QuerySession(p)
        first = session.answer_many(queries)
        assert session.stats.traversals == 1
        cold_visits = session.stats.node_visits
        assert cold_visits <= p.size()
        # A second identical batch reuses the memo: whole subtrees are
        # skipped, so strictly fewer nodes are visited the second time.
        assert session.answer_many(queries) == first
        assert session.stats.traversals == 2
        assert session.stats.node_visits - cold_visits < cold_visits
        assert session.stats.subtree_skips > 0

    def test_cross_query_memo_hits_inside_cold_pass(self):
        # Structurally identical queries share per-subtree blocked
        # distributions already during their first joint pass.
        p, queries = batch_workload(persons=6, projects=4, seed=1)
        session = QuerySession(p)
        session.answer_many(queries)
        assert session.stats.memo_hits > 0
        assert session.stats.memo_misses > 0

    def test_memoize_false_still_correct(self):
        p, queries = batch_workload(persons=5, projects=3, seed=9)
        session = QuerySession(p, memoize=False)
        assert session.answer_many(queries) == [
            query_answer(p, q) for q in queries
        ]

    def test_fast_backend_close_to_exact(self):
        p, queries = batch_workload(persons=5, projects=3, seed=4)
        exact = QuerySession(p).answer_many(queries)
        fast = QuerySession(p, backend="fast").answer_many(queries)
        for d_exact, d_fast in zip(exact, fast):
            assert set(d_exact) == set(d_fast)
            for node_id in d_exact:
                assert abs(float(d_exact[node_id]) - d_fast[node_id]) < 1e-9

    def test_batch_of_nested_candidates(self):
        # Candidates below other candidates exercise the pinned machinery.
        p = pdoc(
            ordinary(0, "a",
                     ordinary(1, "b",
                              ind(2, (ordinary(3, "b"), "0.5"))),
                     mux(4,
                         (ordinary(5, "b", ordinary(6, "c")), "0.4"),
                         (ordinary(7, "b"), "0.5")))
        )
        queries = [parse_pattern("a//b"), parse_pattern("a/b[c]"),
                   parse_pattern("a/b")]
        session = QuerySession(p)
        assert session.answer_many(queries) == [
            query_answer(p, q) for q in queries
        ]


class TestBooleanMany:
    def test_matches_engine_booleans(self, p_per):
        q = paper.q_bon()
        got = session_booleans = QuerySession(p_per).boolean_many(
            [q, (q, {q.out: 5}), ([paper.v1_bon(), paper.v2_bon()], None)]
        )
        expected = [
            boolean_probability(p_per, q),
            node_probability(p_per, q, 5),
            EvaluationEngine(
                p_per, [paper.v1_bon(), paper.v2_bon()]
            ).match_probability(),
        ]
        assert got == expected

    def test_node_probability_helper(self, p_per):
        session = QuerySession(p_per)
        q = paper.v1_bon()
        for node_id in (5, 7):
            assert session.node_probability(q, node_id) == node_probability(
                p_per, q, node_id
            )

    def test_intersection_item(self, p_per):
        session = QuerySession(p_per)
        patterns = [paper.v1_bon(), parse_pattern("IT-personnel//person/bonus[laptop]")]
        anchors = {q.out: 5 for q in patterns}
        got = session.boolean_many([(patterns, anchors)])[0]
        assert got == intersection_node_probability(p_per, patterns, 5)

    def test_memo_shared_between_boolean_and_answer(self, p_per):
        session = QuerySession(p_per)
        session.answer(paper.q_bon())
        before = session.stats.memo_hits
        session.boolean_probability(paper.q_bon())
        assert session.stats.memo_hits > before


class TestInvalidation:
    def test_mutation_epoch_clears_memo(self):
        p, queries = batch_workload(persons=4, projects=2, seed=7)
        session = QuerySession(p)
        first = session.answer_many(queries)
        assert session.memo_size > 0
        p.mark_mutated()
        # The session notices the epoch on its next use and re-derives
        # everything from the document.
        assert session.answer_many(queries) == first
        assert session.stats.invalidations == 1

    def test_manual_invalidate(self, p_per):
        session = QuerySession(p_per)
        session.answer(paper.q_bon())
        session.invalidate()
        assert session.memo_size == 0
        assert session.answer(paper.q_bon()) == query_answer(p_per, paper.q_bon())

    def test_epoch_starts_at_zero_and_counts(self, p_per):
        assert p_per.mutation_epoch == 0
        p_per.mark_mutated()
        p_per.mark_mutated()
        assert p_per.mutation_epoch == 2

    def test_memo_limit_bounds_entries(self):
        p, queries = batch_workload(persons=4, projects=2, seed=5)
        session = QuerySession(p, memo_limit=8)
        first = session.answer_many(queries)
        assert session.memo_size <= 8
        assert session.answer_many(queries) == first


class TestVisitAccounting:
    def test_engine_answer_unchanged(self):
        # The pre-session contract still holds for direct engine use.
        p = personnel_pdocument(persons=8, projects=3, seed=2)
        q = personnel_query("project0")
        engine = EvaluationEngine(p, [q])
        engine.answer(engine.candidate_ids())
        assert engine.visits == p.size()

    def test_session_visits_scale_with_document_not_batch(self):
        # Cold visit counts depend on the document (minus its query-neutral
        # subtrees), not on how many queries ride in the batch.
        p, queries = batch_workload(persons=5, projects=4, seed=11)
        visit_counts = []
        for batch_size in (1, 2, 4):
            session = QuerySession(p)
            session.answer_many(queries[:batch_size])
            assert session.stats.traversals == 1
            visit_counts.append(session.stats.node_visits)
        # 4x the queries must stay far below 4x the visits (a subtree is
        # only re-opened when a batch member actually mentions its labels).
        assert visit_counts[-1] < 2 * visit_counts[0]
        assert all(count <= p.size() for count in visit_counts)
