"""Unit tests for c-independence (§4.1, Proposition 2)."""

import pytest

from repro.rewrite import c_independent, c_independent_empirical
from repro.tp import ops, parse_pattern
from repro.workloads import paper


class TestPaperVerdicts:
    def test_qbon_v1bon_independent(self):
        """Stated right after the definition: qBON ⊥ v1BON."""
        assert c_independent(paper.q_bon(), paper.v1_bon())

    def test_ab_ac_dependent(self):
        """The paper's non-example: a[b] and a[c] are not c-independent."""
        assert not c_independent(parse_pattern("a[b]"), parse_pattern("a[c]"))

    def test_example11_dependence(self):
        """v′ = a[.//c]/b and q″ = a/b[c] must interact (Example 11)."""
        assert not c_independent(parse_pattern("a[.//c]/b"), parse_pattern("a/b[c]"))

    def test_example12_conditions_hold(self):
        """Example 12 satisfies Proposition 3 — v′ ⊥ q″ there."""
        v = paper.example12_view()
        q = paper.example12_query()
        assert c_independent(ops.v_prime(v), ops.q_double_prime(q, 5))

    def test_example13_conditions_hold(self):
        assert c_independent(
            ops.v_prime(paper.v2_bon()), ops.q_double_prime(paper.q_bon(), 3)
        )

    def test_example15_views_independent(self):
        v = parse_pattern("IT-personnel//person/bonus[laptop]")
        assert c_independent(paper.v1_bon(), v)

    def test_example16_views_pairwise_dependent(self):
        v1, v2, v3, v4 = paper.example16_views()
        assert not c_independent(v1, v2)
        assert not c_independent(v1, v3)
        assert not c_independent(v2, v3)
        for v in (v1, v2, v3):
            assert c_independent(v, v4)


class TestStructuralCases:
    def test_identical_predicates_dependent(self):
        assert not c_independent(parse_pattern("a[b]"), parse_pattern("a[b]"))

    def test_no_predicates_trivially_independent(self):
        assert c_independent(parse_pattern("a//b"), parse_pattern("a/x/b"))

    def test_predicates_at_distinct_exact_depths(self):
        assert c_independent(parse_pattern("a[x]/b/c"), parse_pattern("a/b[y]/c"))

    def test_descendant_predicate_reaches_down(self):
        assert not c_independent(parse_pattern("a[.//x]/b/c"), parse_pattern("a/b[y]/c"))

    def test_descendant_main_branches_can_align(self):
        # With //-edges the anchors can coincide, so same-label predicates clash.
        assert not c_independent(parse_pattern("a//m[x]/b"), parse_pattern("a//m[y]/b"))

    def test_hypergraph_reduction_behaviour(self):
        """Theorem 4: views are c-independent iff hyperedges are disjoint."""
        from repro.workloads.hypergraph import Hypergraph, reduction_views

        h = Hypergraph(4, (frozenset({1, 2}), frozenset({3, 4}), frozenset({2, 3})))
        e1, e2, e3 = (v.pattern for v in reduction_views(h))
        assert c_independent(e1, e2)       # disjoint
        assert not c_independent(e1, e3)   # share vertex 2
        assert not c_independent(e2, e3)   # share vertex 3

    def test_root_label_mismatch_is_independent(self):
        # The two queries can never co-select a node: trivially independent.
        assert c_independent(parse_pattern("a[x]/m"), parse_pattern("b[x]/m"))


class TestEmpiricalValidator:
    @pytest.mark.parametrize("e1,e2", [
        ("a[b]", "a[c]"),
        ("a[b]", "a[b]"),
        ("a[.//c]/b", "a/b[c]"),
    ])
    def test_definitive_counterexamples(self, e1, e2):
        """Empirical False ⇒ truly dependent; these must be found quickly."""
        assert not c_independent_empirical(parse_pattern(e1), parse_pattern(e2),
                                           trials=30, seed=7)

    def test_independent_verdicts_never_violated(self):
        """Soundness: syntactically independent pairs show no violation."""
        pairs = [
            (paper.q_bon(), paper.v1_bon()),
            (parse_pattern("a[x]/b/c"), parse_pattern("a/b[y]/c")),
        ]
        for q1, q2 in pairs:
            assert c_independent(q1, q2)
            assert c_independent_empirical(q1, q2, trials=30, seed=11)
