"""Unit tests for the exact probabilistic evaluator (goal-set DP)."""

from fractions import Fraction

from repro.prob import (
    boolean_probability,
    brute_force_node_probability,
    brute_force_query_answer,
    conditional_node_probability,
    intersection_answer,
    intersection_node_probability,
    node_probability,
    query_answer,
)
from repro.pxml import ind, mux, ordinary, pdoc
from repro.tp import parse_pattern
from repro.workloads import paper


class TestPaperValues:
    def test_example6(self, p_per):
        assert query_answer(p_per, paper.q_bon()) == {5: Fraction(9, 10)}
        assert query_answer(p_per, paper.v1_bon()) == {5: Fraction(3, 4)}
        assert query_answer(p_per, paper.q_rbon()) == {5: Fraction(27, 40)}
        assert query_answer(p_per, paper.v2_bon()) == {
            5: Fraction(1),
            7: Fraction(1),
        }

    def test_example11_probabilities(self):
        q, v = paper.example11_query(), paper.example11_view()
        p1, p2 = paper.p1_example11(), paper.p2_example11()
        assert node_probability(p1, q, 3) == Fraction(13, 40)  # 0.325
        assert node_probability(p2, q, 3) == Fraction(1, 2)
        assert node_probability(p1, v, 3) == Fraction(13, 20)  # 0.65
        assert node_probability(p2, v, 3) == Fraction(13, 20)

    def test_example12_probabilities(self):
        q = paper.example12_query()
        assert node_probability(paper.p3_example12(), q, 12) == Fraction(36, 125)
        assert node_probability(paper.p4_example12(), q, 12) == Fraction(33, 125)


class TestAgainstBruteForce:
    def test_full_fixture(self, p_per):
        for q in (paper.q_rbon(), paper.q_bon(), paper.v1_bon(), paper.v2_bon()):
            assert query_answer(p_per, q) == brute_force_query_answer(p_per, q)

    def test_counterexample_fixtures(self):
        q = paper.example12_query()
        for p in (paper.p3_example12(), paper.p4_example12()):
            assert node_probability(p, q, 12) == brute_force_node_probability(
                p, q, 12
            )


class TestSemantics:
    def test_descendant_is_proper(self):
        p = pdoc(ordinary(0, "a", ordinary(1, "a")))
        assert boolean_probability(p, parse_pattern("a//a")) == 1
        assert query_answer(p, parse_pattern("a//a")) == {1: Fraction(1)}

    def test_mux_exclusivity(self):
        p = pdoc(ordinary(0, "a", mux(1, (ordinary(2, "b"), "0.5"),
                                         (ordinary(3, "c"), "0.5"))))
        both = boolean_probability(p, parse_pattern("a[b][c]"))
        assert both == 0

    def test_ind_independence(self):
        p = pdoc(ordinary(0, "a", ind(1, (ordinary(2, "b"), "0.5"),
                                         (ordinary(3, "c"), "0.5"))))
        assert boolean_probability(p, parse_pattern("a[b][c]")) == Fraction(1, 4)

    def test_distributional_chain_pass_through(self):
        p = pdoc(ordinary(0, "a",
                          mux(1, (ind(2, (ordinary(3, "b"), "0.5")), "0.5"))))
        # b becomes a /-child of a when both choices keep it.
        assert boolean_probability(p, parse_pattern("a/b")) == Fraction(1, 4)

    def test_anchoring_distinguishes_nodes(self, p_per):
        q = paper.v2_bon()
        assert node_probability(p_per, q, 5) == 1
        assert node_probability(p_per, q, 4) == 0  # a name node, not a bonus

    def test_conditional_probability(self, p_per):
        # Pr(n24 ∈ q(P) | n24 ∈ P) for q selecting the laptop node.
        q = parse_pattern("IT-personnel//person/bonus/laptop")
        assert node_probability(p_per, q, 24) == Fraction(9, 10)
        assert conditional_node_probability(p_per, q, 24) == 1

    def test_same_label_siblings(self):
        p = pdoc(ordinary(0, "a",
                          ind(1, (ordinary(2, "b"), "0.5")),
                          ind(3, (ordinary(4, "b"), "0.5"))))
        q = parse_pattern("a/b")
        assert node_probability(p, q, 2) == Fraction(1, 2)
        assert boolean_probability(p, q) == Fraction(3, 4)


class TestIntersections:
    def test_joint_correlation_mux(self):
        p = pdoc(ordinary(0, "a",
                          mux(1,
                              (ordinary(2, "n", ordinary(3, "b")), "0.5"),
                              (ordinary(4, "n", ordinary(5, "c")), "0.5"))))
        q1 = parse_pattern("a/n[b]")
        q2 = parse_pattern("a/n[c]")
        # Each alone selects its node with 1/2 but jointly never the same node.
        assert intersection_node_probability(p, [q1, q2], 2) == 0
        assert intersection_node_probability(p, [q1, q2], 4) == 0

    def test_joint_correlation_shared(self):
        p = pdoc(ordinary(0, "a",
                          ordinary(1, "n", ind(2, (ordinary(3, "b"), "0.5")))))
        q1 = parse_pattern("a/n[b]")
        q2 = parse_pattern("a/n[b]")
        assert intersection_node_probability(p, [q1, q2], 1) == Fraction(1, 2)

    def test_example15_intersection(self, p_per):
        answer = intersection_answer(
            p_per,
            [paper.v1_bon(), parse_pattern("IT-personnel//person/bonus[laptop]")],
        )
        assert answer == {5: Fraction(27, 40)}
