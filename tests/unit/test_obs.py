"""The unified telemetry layer (ISSUE-8 tentpole).

Registry primitives and collector merging, span tracing (no-op fast
path, nesting, capture windows, JSON-lines sinks), per-query cost
profiles, and the exporters.  Component integration — sessions, stores
and the CLI publishing into the registry — is covered in
``test_session.py`` / ``test_store.py`` / ``test_cli.py``; the
Hypothesis guarantee that tracing never changes answers lives in
``tests/property/test_prop_obs.py``.
"""

import math

import pytest

from repro.obs import (
    NULL_SPAN,
    CostProfile,
    MetricsRegistry,
    Sample,
    Tracer,
    build_profiles,
    capture,
    disable_tracing,
    enable_tracing,
    get_registry,
    metrics_table,
    prometheus_text,
    read_spans_jsonl,
    render_span_dicts,
    span,
    take_spans,
    tracing_enabled,
    write_spans_jsonl,
)
from repro.prob import QuerySession, query_answer
from repro.workloads.synthetic import batch_workload


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends on the disabled fast path."""
    was_enabled = tracing_enabled()
    disable_tracing()
    take_spans()
    yield
    disable_tracing()
    take_spans()
    if was_enabled:  # pragma: no cover - REPRO_TRACE=1 runs
        enable_tracing()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", help="a test count")
        counter.inc()
        counter.inc(4)
        assert registry.counter("repro_test_total") is counter
        assert registry.snapshot() == {"repro_test_total": 5}

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"kind": "a"}).inc(1)
        registry.counter("repro_x_total", {"kind": "b"}).inc(2)
        assert registry.snapshot() == {
            "repro_x_total{kind=a}": 1,
            "repro_x_total{kind=b}": 2,
        }

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.read() == 8

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_probe_seconds", buckets=(0.001, 0.1)
        )
        for value in (0.0005, 0.05, 0.05, 5.0):
            histogram.observe(value)
        reading = histogram.read()
        assert reading["count"] == 4
        assert math.isclose(reading["sum"], 5.1005)
        assert reading["buckets"] == {0.001: 1, 0.1: 3}

    def test_collector_samples_merge_with_direct(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total").inc(10)
        registry.register_collector(
            lambda: [Sample("repro_hits_total", "counter", (), 32)]
        )
        assert registry.snapshot() == {"repro_hits_total": 42}

    def test_reset_zeroes_direct_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(7)
        registry.histogram("repro_b_seconds").observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["repro_a_total"] == 0
        assert snapshot["repro_b_seconds"]["count"] == 0


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_span_is_the_falsy_null_span(self):
        sp = span("anything", queries=3)
        assert sp is NULL_SPAN
        assert not sp
        with sp:
            sp.set("key", "value")
            sp.inc("count")
        assert take_spans() == []

    def test_enabled_spans_nest_and_record(self):
        enable_tracing()
        with span("outer", queries=2) as outer:
            with span("inner") as inner:
                inner.inc("visits", 5)
            outer.set("answers", 1)
        roots = take_spans()
        assert [root.name for root in roots] == ["outer"]
        root = roots[0]
        assert root.attrs == {"queries": 2, "answers": 1}
        assert [child.name for child in root.children] == ["inner"]
        assert root.children[0].attrs == {"visits": 5}
        assert root.duration >= root.children[0].duration >= 0.0

    def test_exception_unwinds_through_open_spans(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        (root,) = take_spans()
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner"]

    def test_root_ring_drops_oldest(self):
        tracer = Tracer(max_roots=2)
        tracer.enabled = True
        for index in range(4):
            with tracer.span("s", index=index):
                pass
        assert tracer.dropped == 2
        assert [root.attrs["index"] for root in tracer.take()] == [2, 3]

    def test_capture_restores_disabled_state(self):
        with capture() as cap:
            assert tracing_enabled()
            with span("captured"):
                pass
        assert not tracing_enabled()
        assert [root.name for root in cap.spans] == ["captured"]
        assert take_spans() == []  # drained by the capture window

    def test_capture_keeps_outside_roots(self):
        enable_tracing()
        with span("before"):
            pass
        with capture() as cap:
            with span("inside"):
                pass
        assert [root.name for root in cap.spans] == ["inside"]
        assert [root.name for root in take_spans()] == ["before"]
        assert tracing_enabled()  # restored to the prior enabled state

    def test_span_counter_publishes_to_registry(self):
        before = get_registry().snapshot().get("repro_trace_spans_total", 0)
        enable_tracing()
        with span("one"):
            pass
        take_spans()
        after = get_registry().snapshot()["repro_trace_spans_total"]
        assert after == before + 1

    def test_sink_streams_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        enable_tracing(sink=path)
        with span("root", queries=1):
            with span("child"):
                pass
        disable_tracing()
        (entry,) = read_spans_jsonl(path)
        assert entry["name"] == "root"
        assert entry["attrs"] == {"queries": 1}
        assert [child["name"] for child in entry["children"]] == ["child"]


# ----------------------------------------------------------------------
# Cost profiles
# ----------------------------------------------------------------------
class TestProfiles:
    def test_profiles_split_wall_time_evenly(self):
        enable_tracing()
        with span("session.answer_many", queries=2) as sp:
            sp.inc("node_visits", 8)
        roots = take_spans()
        total = sum(root.duration for root in roots)
        profiles = build_profiles(roots, ["q0", "q1"])
        assert [profile.label for profile in profiles] == ["q0", "q1"]
        assert math.isclose(sum(p.wall_s for p in profiles), total)
        assert math.isclose(sum(p.share for p in profiles), 1.0)
        for profile in profiles:
            assert profile.batch_queries == 2
            rendered = profile.render()
            assert profile.label in rendered
            as_dict = profile.to_dict()
            assert as_dict["label"] == profile.label
            assert math.isclose(as_dict["wall_s"], profile.wall_s)

    def test_session_profile_matches_plain_answers(self):
        p, queries = batch_workload(persons=6, projects=2, seed=1)
        session = QuerySession(p)
        expected = session.answer_many(queries)
        answers, profiles = session.answer_many(queries, profile=True)
        assert answers == expected
        assert not tracing_enabled()  # profiling never leaks the switch
        assert len(profiles) == len(queries)
        assert all(isinstance(p_, CostProfile) for p_ in profiles)
        assert [p_.label for p_ in profiles] == [q.xpath() for q in queries]
        assert all(p_.wall_s >= 0.0 for p_ in profiles)

    def test_query_answer_profile_matches_plain_answer(self):
        p, queries = batch_workload(persons=4, projects=1, seed=2)
        q = queries[0]
        expected = query_answer(p, q)
        answer, profile = query_answer(p, q, profile=True)
        assert answer == expected
        assert profile.label == q.xpath()
        assert profile.wall_s >= 0.0
        assert "engine.answer" in {entry["name"] for entry in profile.spans}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_hits_total", {"kind": "memory"}, help="memo hits"
        ).inc(3)
        registry.histogram("repro_probe_seconds", buckets=(0.1,)).observe(0.05)
        return registry

    def test_metrics_table_lists_every_sample(self):
        table = metrics_table(self._registry())
        assert "repro_hits_total{kind=memory}" in table
        assert "3" in table
        assert "count=1" in table

    def test_metrics_table_empty_registry(self):
        assert metrics_table(MetricsRegistry()) == "(no metrics recorded)"

    def test_prometheus_text_format(self):
        text = prometheus_text(self._registry())
        assert "# HELP repro_hits_total memo hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{kind="memory"} 3' in text
        assert "# TYPE repro_probe_seconds histogram" in text
        assert 'repro_probe_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_probe_seconds_count 1" in text

    def test_spans_jsonl_roundtrip(self, tmp_path):
        enable_tracing()
        with span("a", n=1):
            with span("b"):
                pass
        with span("c"):
            pass
        roots = take_spans()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(roots, path) == 2
        assert read_spans_jsonl(path) == [root.to_dict() for root in roots]

    def test_render_span_dicts_indents_children(self):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        rendered = render_span_dicts(take_spans())
        lines = rendered.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
