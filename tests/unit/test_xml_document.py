"""Unit tests for the deterministic XML substrate."""

import pytest

from repro.errors import DocumentError
from repro.xml import Document, DocNode, doc, node


def small_doc() -> Document:
    return doc(
        node(1, "a",
             node(2, "b", node(4, "d")),
             node(3, "c")))


class TestStructure:
    def test_name_is_root_label(self):
        assert small_doc().name == "a"

    def test_size(self):
        assert small_doc().size() == 4

    def test_node_lookup(self):
        assert small_doc().node(4).label == "d"

    def test_missing_node_raises(self):
        with pytest.raises(DocumentError):
            small_doc().node(99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DocumentError):
            doc(node(1, "a", node(1, "b")))

    def test_parent_pointers(self):
        d = small_doc()
        assert d.node(4).parent is d.node(2)
        assert d.node(1).parent is None

    def test_depth_convention_root_is_one(self):
        d = small_doc()
        assert d.node(1).depth() == 1
        assert d.node(4).depth() == 3

    def test_ancestors_or_self(self):
        d = small_doc()
        assert [n.node_id for n in d.node(4).ancestors_or_self()] == [4, 2, 1]

    def test_descendants_proper(self):
        d = small_doc()
        ids = {n.node_id for n in d.node(1).descendants()}
        assert ids == {2, 3, 4}

    def test_labels(self):
        assert small_doc().labels() == {"a", "b", "c", "d"}

    def test_nodes_with_label(self):
        assert [n.node_id for n in small_doc().nodes_with_label("b")] == [2]


class TestDerived:
    def test_subdocument_preserves_ids(self):
        sub = small_doc().subdocument(2)
        assert sub.node_ids() == frozenset({2, 4})
        assert sub.root.label == "b"

    def test_subdocument_is_a_copy(self):
        d = small_doc()
        sub = d.subdocument(2)
        sub.root.add_child(DocNode(99, "x"))
        assert not d.has_node(99)

    def test_map_nodes(self):
        mapped = small_doc().map_nodes(lambda n: (n.node_id + 10, n.label.upper()))
        assert mapped.node(11).label == "A"
        assert mapped.size() == 4


class TestEquality:
    def test_order_insensitive(self):
        d1 = doc(node(1, "a", node(2, "b"), node(3, "c")))
        d2 = doc(node(1, "a", node(3, "c"), node(2, "b")))
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_ids_matter_by_default(self):
        d1 = doc(node(1, "a", node(2, "b")))
        d2 = doc(node(1, "a", node(5, "b")))
        assert d1 != d2

    def test_shape_only_comparison(self):
        d1 = doc(node(1, "a", node(2, "b")))
        d2 = doc(node(7, "a", node(5, "b")))
        assert d1.canonical_key(with_ids=False) == d2.canonical_key(with_ids=False)
