"""Unit tests for the bulk store protocol (ISSUE-10).

Covers the tentpole mechanics the property suite can't pin down one by
one: write-behind buffering (flush ordering, crash-before-flush
durability — pending puts are lost, the file is never corrupt), chunked
``IN``-clause reads above SQLite's bound-parameter limit, the
single-probe ``reprobe`` counting contract, the uncounted-prefetch /
``record_probe`` accounting split, and the default per-key fallbacks
that keep third-party ``MemoStore`` subclasses working unchanged.
"""

import sqlite3
from fractions import Fraction

import pytest

from repro.store import InMemoryStore, MemoStore, SqliteStore


def key_of(i: int) -> tuple:
    return (f"digest{i}", f"fp{i}", None, None, "exact")


def dist_of(i: int) -> dict:
    return {0: Fraction(1, i + 2)}


class MinimalStore(MemoStore):
    """A third-party store implementing only the point protocol."""

    def __init__(self):
        super().__init__()
        self._data = {}

    def get(self, key):
        value = self._data.get(key)
        self._count_get(key, hit=value is not None)
        return value

    def put(self, key, distribution, weight=1):
        self._count_put(key)
        self._data[key] = distribution

    def contains(self, key):
        return key in self._data

    def clear(self):
        self._data.clear()

    def __len__(self):
        return len(self._data)


class TestDefaultFallbacks:
    def test_bulk_defaults_loop_over_point_methods(self):
        store = MinimalStore()
        store.put_many((key_of(i), dist_of(i), 1) for i in range(4))
        assert len(store) == 4
        got = store.get_many([key_of(1), key_of(3), key_of(9)])
        assert got == {key_of(1): dist_of(1), key_of(3): dist_of(3)}
        assert store.contains_many([key_of(0), key_of(9)]) == {key_of(0)}
        stats = store.stats()
        assert stats["bulk_probes"] == 3
        assert stats["bulk_probe_keys"] == 4 + 3 + 2
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_uncounted_prefetch_leaves_counters_alone(self):
        store = MinimalStore()
        store.put(key_of(0), dist_of(0))
        before = (store.hits, store.misses)
        store.get_many([key_of(0), key_of(7)], record=False)
        assert (store.hits, store.misses) == before
        # ...and record_probe supplies the per-use accounting afterwards.
        store.record_probe(key_of(0), hit=True)
        store.record_probe(key_of(7), hit=False)
        assert (store.hits, store.misses) == (before[0] + 1, before[1] + 1)

    def test_default_reprobe_counts_hits_not_misses(self):
        for store in (MinimalStore(), InMemoryStore()):
            assert store.reprobe(key_of(0)) is None
            assert store.misses == 0  # a reprobe miss is never re-counted
            store.put(key_of(0), dist_of(0))
            assert store.reprobe(key_of(0)) == dist_of(0)
            assert store.hits == 1


class TestWriteBehind:
    def test_flush_ordering_preserves_last_write_wins(self, tmp_path):
        # Re-puts of one key inside a single buffered batch must land in
        # put order: INSERT OR REPLACE makes the LAST buffered row win.
        path = tmp_path / "order.db"
        store = SqliteStore(path, write_behind=64)
        store.put(key_of(0), {0: Fraction(1, 3)}, 1)
        store.put(key_of(1), dist_of(1), 1)
        # Overwrite key 0 while both rows still sit in the buffer; the
        # presence-guard lives in the traversal, not the store, so a
        # direct re-put is legal and must not resurrect the old value.
        store.put(key_of(0), {0: Fraction(2, 3)}, 5)
        assert store.stats()["write_behind_pending"] == 3
        store.flush()
        assert store.stats()["write_behind_pending"] == 0
        assert store.flushes == 1
        store.close()
        reopened = SqliteStore(path)
        assert reopened.get(key_of(0)) == {0: Fraction(2, 3)}
        assert reopened.get(key_of(1)) == dist_of(1)
        assert reopened.stats()["weight"] == 5 + 1
        reopened.close()

    def test_threshold_drains_buffer_automatically(self, tmp_path):
        store = SqliteStore(tmp_path / "thresh.db", write_behind=3)
        for i in range(7):
            store.put(key_of(i), dist_of(i), 1)
        # 7 puts through a 3-deep buffer: two automatic drains, 1 left.
        assert store.flushes == 2
        assert store.stats()["write_behind_pending"] == 1
        store.close()  # close always drains the tail
        assert store.flushes == 3

    def test_crash_before_flush_loses_pending_but_never_corrupts(
        self, tmp_path
    ):
        path = tmp_path / "crash.db"
        durable = SqliteStore(path, write_behind=100)
        durable.put(key_of(0), dist_of(0), 1)
        durable.flush()
        crashing = SqliteStore(path, write_behind=100)
        crashing.put(key_of(1), dist_of(1), 1)
        crashing.put(key_of(2), dist_of(2), 1)
        # Simulate the crash: the connection dies with the buffer full —
        # nothing was ever sent to SQLite, so no partial transaction can
        # exist on disk.
        crashing._conn.close()
        crashing._conn = None
        survivor = SqliteStore(path)
        assert survivor.get(key_of(0)) == dist_of(0)   # durable put kept
        assert survivor.get(key_of(1)) is None          # pending put lost
        assert survivor.get(key_of(2)) is None
        assert not survivor.degraded                    # ...and not corrupt
        survivor.put(key_of(1), dist_of(1), 1)          # file still writable
        survivor.close()

    def test_put_many_is_one_statement_one_flush(self, tmp_path):
        from repro.obs import get_registry

        store = SqliteStore(tmp_path / "many.db")
        len(store)  # trigger the preload SELECT before measuring
        before = get_registry().snapshot()[
            "repro_store_sqlite_statements_total"
        ]
        store.put_many((key_of(i), dist_of(i), 1) for i in range(50))
        delta = (
            get_registry().snapshot()["repro_store_sqlite_statements_total"]
            - before
        )
        assert delta == 1  # one executemany for all 50 rows
        assert store.flushes == 1
        assert store.puts == 50
        store.close()


class TestChunkedReads:
    def test_get_many_above_the_parameter_limit(self, tmp_path):
        # 1200 keys × 5 bound parameters = 6000 ≫ SQLite's classic 999
        # ceiling: the read must chunk, and every row must come back.
        count = 1200
        path = tmp_path / "wide.db"
        store = SqliteStore(path, preload=False)
        store.put_many((key_of(i), dist_of(i), 1) for i in range(count))
        store.close()
        reopened = SqliteStore(path, preload=False)
        asked = [key_of(i) for i in range(count + 50)]  # 50 sure misses
        got = reopened.get_many(asked)
        assert len(got) == count
        assert got[key_of(0)] == dist_of(0)
        assert got[key_of(count - 1)] == dist_of(count - 1)
        assert reopened.hits == count
        assert reopened.misses == 50
        assert reopened.bulk_probe_keys == count + 50
        reopened.close()

    def test_chunked_read_repairs_undecodable_rows(self, tmp_path):
        path = tmp_path / "repair.db"
        store = SqliteStore(path, preload=False)
        store.put_many((key_of(i), dist_of(i), 1) for i in range(6))
        store.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE memo SET payload = 'garbage' WHERE structure = ?",
            ("digest3",),
        )
        conn.commit()
        conn.close()
        reopened = SqliteStore(path, preload=False)
        got = reopened.get_many([key_of(i) for i in range(6)])
        assert key_of(3) not in got and len(got) == 5
        # The broken row was dropped: contains agrees, so the next
        # computation's save repairs the entry instead of being skipped.
        assert not reopened.contains(key_of(3))
        assert len(reopened) == 5
        reopened.close()

    def test_contains_many_is_sql_free_in_lazy_mode(self, tmp_path):
        from repro.obs import get_registry

        path = tmp_path / "presence.db"
        store = SqliteStore(path, preload=False)
        store.put_many((key_of(i), dist_of(i), 1) for i in range(8))
        store.close()
        reopened = SqliteStore(path, preload=False)
        name = "repro_store_sqlite_statements_total"
        before = get_registry().snapshot()[name]
        present = reopened.contains_many(
            [key_of(i) for i in range(12)]
        )
        assert present == {key_of(i) for i in range(8)}
        assert reopened.contains(key_of(2)) and not reopened.contains(
            key_of(11)
        )
        assert get_registry().snapshot()[name] == before  # row map, no SQL
        reopened.close()


class TestCheapGauges:
    def test_len_and_stats_issue_no_sql_after_open(self, tmp_path):
        from repro.obs import get_registry

        path = tmp_path / "gauges.db"
        store = SqliteStore(path, preload=False)
        store.put_many((key_of(i), dist_of(i), i + 1) for i in range(5))
        name = "repro_store_sqlite_statements_total"
        before = get_registry().snapshot()[name]
        assert len(store) == 5
        stats = store.stats()
        assert stats["weight"] == sum(range(1, 6))
        assert stats["anchored_entries"] == 0
        assert get_registry().snapshot()[name] == before
        store.close()
        # One scan on reopen rebuilds the gauges, then they stay free.
        reopened = SqliteStore(path, preload=False)
        before = get_registry().snapshot()[name]
        assert len(reopened) == 5
        assert reopened.stats()["weight"] == sum(range(1, 6))
        assert get_registry().snapshot()[name] == before
        reopened.close()

    def test_sqlite_reprobe_single_statement(self, tmp_path):
        from repro.obs import get_registry

        path = tmp_path / "reprobe.db"
        store = SqliteStore(path, preload=False)
        store.put(key_of(0), dist_of(0), 1)
        store.close()
        reopened = SqliteStore(path, preload=False)
        name = "repro_store_sqlite_statements_total"
        before = get_registry().snapshot()[name]
        assert reopened.reprobe(key_of(9)) is None      # row map: no SQL
        assert get_registry().snapshot()[name] == before
        assert reopened.misses == 0
        assert reopened.reprobe(key_of(0)) == dist_of(0)
        assert get_registry().snapshot()[name] == before + 1  # one SELECT
        assert reopened.hits == 1
        reopened.close()
