"""Guard: the ``Id(n)`` marker literal lives only in ``views/view.py``.

Extensions are Id-free; the only production code allowed to spell the
marker label is the sanctioned legacy shim (``_marker_label`` /
``parse_marker_label`` in :mod:`repro.views.view`).  Any other
occurrence of the *quoted* literal ``"Id("`` / ``'Id('`` in ``src/``
means marker construction or label sniffing crept back in.

The match is on the quoted form on purpose: the bare text ``Id(`` also
appears in innocent prose ("the document node Id(s)"), while a quoted
occurrence is necessarily a string or f-string building or comparing
marker labels.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"
ALLOWED = {Path("repro") / "views" / "view.py"}


def test_marker_literal_only_in_view_shim():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative in ALLOWED:
            continue
        text = path.read_text(encoding="utf-8")
        if '"Id(' in text or "'Id(" in text:
            offenders.append(str(relative))
    assert not offenders, (
        "quoted Id( marker literal found outside the views/view.py shim "
        f"in: {offenders}"
    )


def test_shim_actually_contains_the_literal():
    # Keeps the guard honest: if the shim moves, ALLOWED must follow it.
    text = (SRC / "repro" / "views" / "view.py").read_text(encoding="utf-8")
    assert '"Id(' in text or "'Id(" in text
