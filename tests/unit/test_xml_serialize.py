"""Round-trip tests for the document text format."""

import pytest

from repro.errors import DocumentError
from repro.workloads import paper
from repro.xml import doc, node
from repro.xml.serialize import document_from_text, document_to_text


class TestRoundTrip:
    def test_small(self):
        d = doc(node(1, "a", node(2, "b"), node(3, "c", node(4, "d"))))
        assert document_from_text(document_to_text(d)) == d

    def test_paper_document(self):
        d = paper.d_per()
        assert document_from_text(document_to_text(d)) == d

    def test_labels_with_spaces_and_parens(self):
        d = doc(node(1, "doc(v1)", node(2, "Id(5)")))
        assert document_from_text(document_to_text(d)) == d

    def test_canonical_output_is_sorted(self):
        d1 = doc(node(1, "a", node(3, "c"), node(2, "b")))
        d2 = doc(node(1, "a", node(2, "b"), node(3, "c")))
        assert document_to_text(d1) == document_to_text(d2)


class TestErrors:
    def test_empty(self):
        with pytest.raises(DocumentError):
            document_from_text("   \n  ")

    def test_multiple_roots(self):
        with pytest.raises(DocumentError):
            document_from_text("[1] a\n[2] b\n")

    def test_orphan_depth(self):
        with pytest.raises(DocumentError):
            document_from_text("[1] a\n        [2] b\n")

    def test_bad_indent(self):
        with pytest.raises(DocumentError):
            document_from_text("[1] a\n [2] b\n")
