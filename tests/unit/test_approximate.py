"""Unit tests for the Monte-Carlo approximation layer."""

import random

import pytest

from repro.prob.approximate import (
    approximate_node_probability,
    approximate_query_answer,
    samples_for_guarantee,
)
from repro.workloads import paper


class TestSampleSize:
    def test_hoeffding_formula(self):
        assert samples_for_guarantee(0.1, 0.05) == 185

    def test_tighter_needs_more(self):
        assert samples_for_guarantee(0.01, 0.05) > samples_for_guarantee(0.1, 0.05)

    @pytest.mark.parametrize("eps,delta", [(0, 0.1), (1, 0.1), (0.1, 0), (0.1, 1)])
    def test_invalid_parameters(self, eps, delta):
        with pytest.raises(ValueError):
            samples_for_guarantee(eps, delta)


class TestEstimates:
    def test_node_probability_close(self, p_per):
        estimate = approximate_node_probability(
            p_per, paper.q_rbon(), 5, samples=3000, rng=random.Random(3)
        )
        assert abs(estimate - 0.675) < 0.05

    def test_query_answer_close(self, p_per):
        estimates = approximate_query_answer(
            p_per, paper.q_bon(), samples=3000, rng=random.Random(4)
        )
        assert set(estimates) == {5}
        assert abs(estimates[5] - 0.9) < 0.05

    def test_sure_results_are_exact(self, p_per):
        estimates = approximate_query_answer(
            p_per, paper.v2_bon(), samples=400, rng=random.Random(5)
        )
        assert estimates == {5: 1.0, 7: 1.0}

    def test_intersection_estimate(self, p_per):
        from repro.tp import parse_pattern

        estimates = approximate_query_answer(
            p_per,
            paper.q_rbon(),
            samples=3000,
            rng=random.Random(6),
            queries=[paper.v1_bon(),
                     parse_pattern("IT-personnel//person/bonus[laptop]")],
        )
        assert abs(estimates[5] - 0.675) < 0.05

    def test_impossible_query_never_sampled(self, p_per):
        from repro.tp import parse_pattern

        estimates = approximate_query_answer(
            p_per, parse_pattern("IT-personnel/bonus"), samples=200,
            rng=random.Random(7),
        )
        assert estimates == {}

    def test_stable_anchor_forms_accepted(self, p_per):
        # PatternNode and path anchor keys (the stable engine forms) feed
        # the same normalization: a redundant out-anchor leaves the
        # estimate bit-identical on the same world stream.
        q = paper.q_bon()
        plain = approximate_node_probability(
            p_per, q, 5, samples=200, rng=random.Random(3)
        )
        via_node = approximate_node_probability(
            p_per, q, 5, samples=200, rng=random.Random(3), anchors={q.out: 5}
        )
        via_path = approximate_node_probability(
            p_per, q, 5, samples=200, rng=random.Random(3),
            anchors={q.path_to(q.out): 5},
        )
        assert plain == via_node == via_path

    def test_conflicting_anchor_forces_zero(self, p_per):
        # Anchoring a non-output pattern node to an impossible document
        # node suppresses every match.
        q = paper.q_bon()
        laptop = q.out.children[0]
        estimate = approximate_node_probability(
            p_per, q, 5, samples=100, rng=random.Random(4),
            anchors={laptop: 1},
        )
        assert estimate == 0.0
