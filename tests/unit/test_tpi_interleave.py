"""Unit tests for TP∩ interleavings."""

import pytest

from repro.errors import IntersectionError
from repro.tp import contains, parse_pattern
from repro.tpi import interleavings, iter_interleavings
from repro.workloads.synthetic import adversarial_intersection


class TestBasics:
    def test_single_pattern(self):
        q = parse_pattern("a[x]/b")
        assert interleavings([q]) == [q]

    def test_forced_coalescing_by_child_edges(self):
        result = interleavings([parse_pattern("a[1]/b/c"), parse_pattern("a/b[2]/c")])
        assert [r.xpath() for r in result] == ["a[1]/b[2]/c"]

    def test_orderings_of_descendant_steps(self):
        result = interleavings(
            [parse_pattern("a//b//z"), parse_pattern("a//d//z")]
        )
        paths = {r.xpath() for r in result}
        assert paths == {"a//b//d//z", "a//d//b//z"}

    def test_coalescing_option_when_labels_match(self):
        result = interleavings([parse_pattern("a//b[1]//z"), parse_pattern("a//b[2]//z")])
        paths = {r.xpath() for r in result}
        # Coalesced, and both orders.
        assert "a//b[1][2]//z" in paths
        assert "a//b[1]//b[2]//z" in paths
        assert "a//b[2]//b[1]//z" in paths

    def test_root_label_mismatch_unsatisfiable(self):
        assert interleavings([parse_pattern("a/b"), parse_pattern("x/b")]) == []

    def test_out_label_mismatch_unsatisfiable(self):
        assert interleavings([parse_pattern("a/b"), parse_pattern("a/c")]) == []

    def test_incompatible_lengths_with_child_edges(self):
        # a/b ∩ a/x/b: out must coalesce, but /-edges force different depths.
        assert interleavings([parse_pattern("a/b"), parse_pattern("a/x/b")]) == []

    def test_roots_that_are_outputs(self):
        assert interleavings([parse_pattern("a"), parse_pattern("a")]) != []
        assert interleavings([parse_pattern("a"), parse_pattern("a/b")]) == []

    def test_predicates_travel_with_their_node(self):
        result = interleavings(
            [parse_pattern("a[p]//m[x]//z"), parse_pattern("a//m[y]//z")]
        )
        for candidate in result:
            assert candidate.root.label == "a"
            preds = {n.label for n in candidate.predicate_nodes()}
            assert "p" in preds and "x" in preds and "y" in preds


class TestSoundness:
    def test_each_interleaving_contained_in_components(self):
        components = [
            parse_pattern("a[1]//b/c//z"),
            parse_pattern("a//c[2]//z"),
        ]
        for candidate in interleavings(components):
            for component in components:
                assert contains(component, candidate)


class TestBlowup:
    def test_factorial_growth(self):
        counts = [len(interleavings(adversarial_intersection(k))) for k in (1, 2, 3, 4)]
        assert counts == [1, 2, 6, 24]

    def test_limit_guard(self):
        with pytest.raises(IntersectionError):
            interleavings(adversarial_intersection(4), limit=5)

    def test_lazy_iteration(self):
        iterator = iter_interleavings(adversarial_intersection(5))
        assert next(iterator) is not None  # no full materialization needed
