"""Unit tests for the TreePattern structure itself."""

import pytest

from repro.errors import PatternError
from repro.tp import Axis, PatternNode, TreePattern, parse_pattern
from repro.workloads import paper


class TestStructure:
    def test_main_branch_identification(self):
        q = parse_pattern("a[x]/b[y]//c")
        assert [n.label for n in q.main_branch()] == ["a", "b", "c"]
        assert q.main_branch_length() == 3

    def test_predicate_nodes(self):
        q = parse_pattern("a[x/w]/b[y]//c[z]")
        assert sorted(p.label for p in q.predicate_nodes()) == ["w", "x", "y", "z"]

    def test_mb_depth(self):
        q = paper.q_rbon()
        branch = q.main_branch()
        assert q.mb_depth(branch[0]) == 1
        assert q.mb_depth(q.out) == 3

    def test_mb_depth_of_predicate_raises(self):
        q = parse_pattern("a[x]/b")
        (pred,) = q.predicate_nodes()
        with pytest.raises(PatternError):
            q.mb_depth(pred)

    def test_out_not_in_tree_rejected(self):
        root = PatternNode("a")
        stray = PatternNode("b")
        with pytest.raises(PatternError):
            TreePattern(root, stray)

    def test_labels(self):
        q = paper.q_rbon()
        assert q.label() == "bonus"          # lbl(q) = label of out
        assert q.root_label() == "IT-personnel"

    def test_size(self):
        assert parse_pattern("a[b][c]/d").size() == 4


class TestCopying:
    def test_copy_is_deep(self):
        q = parse_pattern("a[b]/c")
        copy = q.copy()
        copy.out.add_child(PatternNode("new", Axis.CHILD))
        assert q.size() == 3 and copy.size() == 4

    def test_copy_preserves_out(self):
        q = paper.q_rbon()
        copy = q.copy()
        assert copy.out.label == q.out.label
        assert copy == q

    def test_map_labels(self):
        q = parse_pattern("a/b")
        upper = q.map_labels(str.upper)
        assert upper.xpath() == "A/B"
        assert q.xpath() == "a/b"


class TestCanonicalForm:
    def test_predicate_order_irrelevant(self):
        assert parse_pattern("a[b][c]/d") == parse_pattern("a[c][b]/d")

    def test_axis_matters(self):
        assert parse_pattern("a/b") != parse_pattern("a//b")

    def test_out_position_matters(self):
        assert parse_pattern("a/b[c]") != parse_pattern("a[b/c]")

    def test_hashable(self):
        patterns = {parse_pattern("a/b"), parse_pattern("a/b"), parse_pattern("a//b")}
        assert len(patterns) == 2


class TestRendering:
    @pytest.mark.parametrize("expr,expected", [
        ("a/b", "a/b"),
        ("a[name/Rick]/b", "a[name/Rick]/b"),
        ("a[.//c]/b", "a[.//c]/b"),
        ("a[b[x][y]]/c", "a[b[x][y]]/c"),
    ])
    def test_xpath_stability(self, expr, expected):
        assert parse_pattern(expr).xpath() == expected

    def test_repr_contains_xpath(self):
        assert "a/b" in repr(parse_pattern("a/b"))
