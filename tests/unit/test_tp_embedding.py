"""Unit tests for deterministic TP evaluation (embeddings)."""

from repro.tp import parse_pattern
from repro.tp.embedding import evaluate, find_embeddings, has_embedding
from repro.workloads import paper
from repro.xml import doc, node


class TestEvaluate:
    def test_example5(self, d_per):
        assert evaluate(paper.q_rbon(), d_per) == {5}
        assert evaluate(paper.q_bon(), d_per) == {5}
        assert evaluate(paper.v1_bon(), d_per) == {5}
        assert evaluate(paper.v2_bon(), d_per) == {5, 7}

    def test_root_label_mismatch(self, d_per):
        assert evaluate(parse_pattern("other//person"), d_per) == set()

    def test_descendant_is_proper(self):
        d = doc(node(1, "a", node(2, "b")))
        assert evaluate(parse_pattern("a//a"), d) == set()
        assert evaluate(parse_pattern("a//b"), d) == {2}

    def test_descendant_skips_levels(self):
        d = doc(node(1, "a", node(2, "x", node(3, "b"))))
        assert evaluate(parse_pattern("a//b"), d) == {3}

    def test_child_does_not_skip(self):
        d = doc(node(1, "a", node(2, "x", node(3, "b"))))
        assert evaluate(parse_pattern("a/b"), d) == set()

    def test_predicate_filters(self):
        d = doc(node(1, "a",
                     node(2, "b", node(3, "c")),
                     node(4, "b")))
        assert evaluate(parse_pattern("a/b[c]"), d) == {2}
        assert evaluate(parse_pattern("a/b"), d) == {2, 4}

    def test_predicate_on_output(self, d_per):
        q = parse_pattern("IT-personnel//bonus[pda/50]")
        assert evaluate(q, d_per) == {5}

    def test_multiple_matches_same_node_deduplicated(self):
        d = doc(node(1, "a", node(2, "b", node(3, "c"), node(4, "c"))))
        assert evaluate(parse_pattern("a/b[c]"), d) == {2}


class TestHasEmbedding:
    def test_boolean(self, d_per):
        assert has_embedding(paper.q_rbon(), d_per)
        assert not has_embedding(parse_pattern("IT-personnel/bonus"), d_per)

    def test_anchored(self, d_per):
        q = paper.v2_bon()
        assert has_embedding(q, d_per, {id(q.out): 7})
        assert not has_embedding(q, d_per, {id(q.out): 4})

    def test_anchor_on_inner_node(self, d_per):
        q = paper.q_bon()
        person = q.main_branch()[1]
        assert has_embedding(q, d_per, {id(person): 2})
        assert not has_embedding(q, d_per, {id(person): 3})


class TestFindEmbeddings:
    def test_count(self):
        d = doc(node(1, "a", node(2, "b"), node(3, "b")))
        embeddings = find_embeddings(parse_pattern("a/b"), d)
        assert len(embeddings) == 2

    def test_mapping_contents(self):
        d = doc(node(1, "a", node(2, "b", node(3, "c"))))
        q = parse_pattern("a/b[c]")
        (embedding,) = find_embeddings(q, d)
        assert set(embedding.values()) == {1, 2, 3}

    def test_descendant_multiplicity(self):
        d = doc(node(1, "a", node(2, "b", node(3, "b"))))
        assert len(find_embeddings(parse_pattern("a//b"), d)) == 2

    def test_no_embedding(self):
        d = doc(node(1, "a"))
        assert find_embeddings(parse_pattern("a/b"), d) == []
