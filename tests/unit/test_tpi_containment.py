"""Unit tests for TP∩ / TP containment, equivalence, union-freeness."""

from repro.tp import parse_pattern
from repro.tpi import (
    tp_contained_in_tpi,
    tpi_contained_in_tp,
    tpi_equivalent_tp,
    tpi_satisfiable,
    union_free_interleaving,
)
from repro.workloads import paper


class TestSatisfiability:
    def test_satisfiable(self):
        assert tpi_satisfiable([parse_pattern("a//b"), parse_pattern("a//b[c]")])

    def test_unsatisfiable_label_clash(self):
        assert not tpi_satisfiable([parse_pattern("a/b"), parse_pattern("a/c")])

    def test_unsatisfiable_depth_clash(self):
        assert not tpi_satisfiable([parse_pattern("a/b"), parse_pattern("a/a/b")])


class TestContainment:
    def test_example16_intersection_rewrites_query(self):
        q = paper.example16_query()
        v1, v2, v3, v4 = paper.example16_views()
        assert tpi_equivalent_tp([v1, v2], q)
        assert tpi_equivalent_tp([v1, v2, v3, v4], q)

    def test_intersection_weaker_than_query(self):
        q = paper.example16_query()
        _, v2, v3, v4 = paper.example16_views()
        # v2 ∩ v3 covers predicates 1,2,3 → ≡ q; v3 ∩ v4 misses predicate 3.
        assert tpi_equivalent_tp([v2, v3], q)
        assert not tpi_equivalent_tp([v3, v4], q)

    def test_query_contained_in_intersection(self):
        q = paper.q_rbon()
        assert tp_contained_in_tpi(q, [paper.v1_bon(), paper.v2_bon()])
        assert not tp_contained_in_tpi(paper.v2_bon(), [q])

    def test_intersection_contained_in_tp(self):
        patterns = [parse_pattern("a[1]/b/c"), parse_pattern("a/b[2]/c")]
        assert tpi_contained_in_tp(patterns, parse_pattern("a[1]/b[2]/c"))
        assert tpi_contained_in_tp(patterns, parse_pattern("a/b/c"))
        assert not tpi_contained_in_tp(patterns, parse_pattern("a/b[3]/c"))

    def test_descendant_intersection_not_contained(self):
        # a//b//z ∩ a//d//z has interleavings in both orders; a//b//d//z
        # contains only one of them.
        patterns = [parse_pattern("a//b//z"), parse_pattern("a//d//z")]
        assert not tpi_contained_in_tp(patterns, parse_pattern("a//b//d//z"))


class TestUnionFree:
    def test_child_forced_intersection_is_union_free(self):
        patterns = [parse_pattern("a[1]/b/c"), parse_pattern("a/b[2]/c")]
        dominant = union_free_interleaving(patterns)
        assert dominant == parse_pattern("a[1]/b[2]/c")

    def test_symmetric_descendants_not_union_free(self):
        patterns = [parse_pattern("a//b//z"), parse_pattern("a//d//z")]
        assert union_free_interleaving(patterns) is None

    def test_containment_collapse_is_union_free(self):
        # a//b[x]//z ∩ a//b//z: the coalesced interleaving dominates.
        patterns = [parse_pattern("a//b[x]/z"), parse_pattern("a//b/z")]
        dominant = union_free_interleaving(patterns)
        assert dominant is not None
